"""Automated performance calibration (Section VIII-A4, Fig. 10).

The paper tunes the SAM-on-DAM simulator's timing parameters (e.g. the
pipeline-bubble cycles charged after control tokens, exposed through
``time.incr_cycles(x)``) to match RTL simulation traces, using OpenTuner
over ~3000 iterations to reach sub-cycle average error.

This package reproduces that loop with a self-contained autotuner
(random search + hill climbing + simulated annealing — the standard
ensemble OpenTuner itself coordinates):

* :class:`~repro.calibrate.problem.SamTimingProblem` — runs a SAM kernel
  under candidate :class:`~repro.sam.primitives.base.TimingParams` and
  scores the cycle error against reference traces produced by a
  hidden-parameter run (the "RTL simulation" stand-in).
* :class:`~repro.calibrate.tuner.Autotuner` — the search loop, recording
  best-error-so-far per iteration (the Fig. 10 series).
"""

from .problem import SamTimingProblem, make_reference_traces
from .tuner import Autotuner, IntParameter, TuningResult

__all__ = [
    "Autotuner",
    "IntParameter",
    "TuningResult",
    "SamTimingProblem",
    "make_reference_traces",
]
