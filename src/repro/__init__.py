"""repro — a Python reproduction of the Dataflow Abstract Machine (DAM).

DAM (ISCA 2024) is a parallel simulator framework for dataflow systems
built on three ideas: a CSP-with-time (CSPT) programming interface,
asynchronous distributed time with pairwise synchronization, and
time-bridging channels.  This package reimplements the framework and every
substrate its evaluation depends on — see DESIGN.md for the inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import Context, IncrCycles, ProgramBuilder

    class Doubler(Context):
        def __init__(self, inp, out):
            super().__init__()
            self.inp, self.out = inp, out
            self.register(inp, out)

        def run(self):
            while True:
                value = yield self.inp.dequeue()
                yield IncrCycles(1)
                yield self.out.enqueue(2 * value)

See ``examples/quickstart.py`` for a complete runnable program.
"""

from .core import (
    INFINITY,
    AdvanceTo,
    Channel,
    ChannelClosed,
    ChannelElement,
    Context,
    DamError,
    DeadlockError,
    Dequeue,
    Enqueue,
    FairPolicy,
    FifoPolicy,
    FunctionContext,
    GraphConstructionError,
    IncrCycles,
    Peek,
    PartitionPlan,
    ProcessExecutor,
    Program,
    ProgramBuilder,
    Receiver,
    RunSummary,
    Sender,
    SequentialExecutor,
    SimulationError,
    ThreadedExecutor,
    Time,
    TimeCell,
    ViewTime,
    WaitUntil,
    channel_weights,
    make_channel,
    peak_simulated_occupancy,
    plan_partition,
)
from .obs import (
    MetricsRegistry,
    Observability,
    StallReport,
    TraceCollector,
    TraceEvent,
)

__version__ = "1.0.0"

__all__ = [
    "INFINITY",
    "AdvanceTo",
    "Channel",
    "ChannelClosed",
    "ChannelElement",
    "Context",
    "DamError",
    "DeadlockError",
    "Dequeue",
    "Enqueue",
    "FairPolicy",
    "FifoPolicy",
    "FunctionContext",
    "GraphConstructionError",
    "IncrCycles",
    "MetricsRegistry",
    "Observability",
    "PartitionPlan",
    "Peek",
    "ProcessExecutor",
    "Program",
    "ProgramBuilder",
    "Receiver",
    "RunSummary",
    "Sender",
    "SequentialExecutor",
    "SimulationError",
    "StallReport",
    "ThreadedExecutor",
    "Time",
    "TimeCell",
    "TraceCollector",
    "TraceEvent",
    "ViewTime",
    "WaitUntil",
    "channel_weights",
    "make_channel",
    "peak_simulated_occupancy",
    "plan_partition",
    "__version__",
]
