"""SpaccV1: the level-1 sparse accumulator.

Accumulates (coordinate, value) pairs across the ``S0``-separated
subfibers of an outer group, merging duplicate coordinates by addition; at
each outer boundary (``Stop(k >= 1)``) it emits the merged fiber in
coordinate-sorted order followed by ``Stop(k - 1)``.

This is the accumulator behind Gustavson-style products: for
``O(i, :) = sum_j P(i, j) * V(j, :)``, the scaled rows of ``V`` arrive as
consecutive subfibers and the spacc merges them into one output row per
``i``.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class SpaccV1(SamContext):
    """Merge subfibers: (crd, val) streams in, one merged fiber out."""

    def __init__(
        self,
        in_crd: Receiver,
        in_val: Receiver,
        out_crd: Sender,
        out_val: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.in_val = in_val
        self.out_crd = out_crd
        self.out_val = out_val
        self.register(in_crd, in_val, out_crd, out_val)

    def run(self):
        accumulator: dict[int, float] = {}
        while True:
            crd = yield self.in_crd.dequeue()
            if crd is DONE:
                val = yield self.in_val.dequeue()
                assert val is DONE, f"{self.name}: crd done before val done"
                yield self.out_crd.enqueue(DONE)
                yield self.out_val.enqueue(DONE)
                return
            if isinstance(crd, Stop):
                val = yield self.in_val.dequeue()
                assert crd == val, (
                    f"{self.name}: misaligned stops {crd!r} vs {val!r}"
                )
                if crd.level == 0:
                    # Subfiber boundary: keep accumulating across it.
                    yield self.tick_control()
                    continue
                # Outer boundary: flush the merged fiber.
                for coord in sorted(accumulator):
                    yield self.out_crd.enqueue(coord)
                    yield self.out_val.enqueue(accumulator[coord])
                    yield self.tick()
                accumulator.clear()
                boundary = Stop(crd.level - 1)
                yield self.out_crd.enqueue(boundary)
                yield self.out_val.enqueue(boundary)
                yield self.tick_control()
            else:
                val = yield self.in_val.dequeue()
                assert not isinstance(val, (Stop, type(DONE))), (
                    f"{self.name}: crd payload paired with control {val!r}"
                )
                accumulator[crd] = accumulator.get(crd, 0.0) + val
                yield self.tick()
