"""Dense numpy reference kernels: the ground truth for SAM graph tests."""

from __future__ import annotations

import numpy as np


def mmadd(b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Elementwise matrix addition."""
    return b + c


def spmspm(b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Matrix multiplication X(i, j) = sum_k B(i, k) * C(k, j)."""
    return b @ c


def sddmm(s: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sampled dense-dense matmul: X = S .* (A @ B^T).

    ``S`` is the sparse sampling matrix (shape i x j); ``A`` is i x k and
    ``B`` is j x k, so the sampled dot is over the shared k dimension.
    """
    return s * (a @ b.T)


def masked_softmax(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Row softmax over the *unmasked* entries only (masked entries -> 0).

    This matches the streaming sparse-attention graph, which never
    materializes masked positions: exp() runs only on surviving scores and
    each row normalizes over the surviving sum.  Fully masked rows yield
    all-zero rows.
    """
    exp = np.exp(scores) * (mask != 0)
    sums = exp.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(sums > 0, exp / np.where(sums > 0, sums, 1.0), 0.0)
    return out


def sparse_mha_head(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """One attention head with a sparsity mask on the score matrix.

    ``q, k, v`` are (N, d); ``mask`` is (N, N) with nonzero = keep.
    Scores are scaled by 1/sqrt(d) as in standard attention.
    """
    d = q.shape[-1]
    scores = (q @ k.T) / np.sqrt(d) * (mask != 0)
    p = masked_softmax(scores, mask)
    return p @ v


def sparse_mha(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Batched sparse MHA: inputs (H, N, d), mask (H, N, N)."""
    return np.stack(
        [
            sparse_mha_head(q[h], k[h], v[h], mask[h])
            for h in range(q.shape[0])
        ]
    )
