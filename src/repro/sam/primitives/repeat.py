"""Repeat and RepeatSigGen: SAM's outer-loop replication primitives.

``RepeatSigGen`` turns a coordinate stream into a repeat-signal stream:
one ``R`` token per coordinate, control tokens passed through.

``Repeat`` replicates each input reference according to one repeat-signal
group: every ``R`` re-emits the current reference; a ``Stop(k)`` ends the
group (emitted through) and advances to the next reference — additionally
consuming the input reference stream's own ``Stop(k - 1)`` when ``k >= 1``
(the signal stream is one level deeper than the reference stream).

This is the primitive whose two implementations the paper's Fig. 7
compares; the cycle-based counterpart lives in
:mod:`repro.samlegacy.primitives.repeat`.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import DONE, REPEAT, Stop
from .base import SamContext, TimingParams


class RepeatSigGen(SamContext):
    """Coordinates in, repeat signals out (one ``R`` per coordinate)."""

    checkpoint_attrs = ("_token",)

    def __init__(
        self,
        in_crd: Receiver,
        out_sig: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.out_sig = out_sig
        self._token = UNSET
        self.register(in_crd, out_sig)

    def run(self):
        deq = self.in_crd.dequeue()
        enq = self.out_sig.enqueue(None)
        step = FusedOps(enq, self.tick(), deq)
        step_control = FusedOps(enq, self.tick_control(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                enq.data = DONE
                yield enq
                return
            if token.__class__ is Stop:
                enq.data = token
                self._token = (yield step_control)[2]
            else:
                enq.data = REPEAT
                self._token = (yield step)[2]


class Repeat(SamContext):
    """Replicate references per repeat-signal group (see module docs)."""

    checkpoint_attrs = ("_ref", "_signal", "_matching", "_flushed")

    def __init__(
        self,
        in_ref: Receiver,
        in_sig: Receiver,
        out_ref: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_ref = in_ref
        self.in_sig = in_sig
        self.out_ref = out_ref
        self._ref = UNSET
        self._signal = UNSET  # UNSET = not yet pulled for the current ref
        self._matching = UNSET  # the consumed ref-stream stop, once pulled
        self._flushed = False  # the level-0 group boundary was emitted
        self.register(in_ref, in_sig, out_ref)

    def run(self):
        deq_ref = self.in_ref.dequeue()
        deq_sig = self.in_sig.dequeue()
        enq = self.out_ref.enqueue(None)
        # Hot path: emit the replicated ref, tick, pull the next signal.
        emit_sig = FusedOps(enq, self.tick(), deq_sig)
        stop_flush = FusedOps(enq, self.tick_control())
        stop_pull = FusedOps(enq, self.tick_control(), deq_ref)
        if self._ref is UNSET:
            self._ref = yield deq_ref
        while True:
            ref = self._ref
            if ref is DONE:
                if self._signal is UNSET:
                    self._signal = yield deq_sig
                assert self._signal is DONE, (
                    f"{self.name}: ref stream done but signal stream sent "
                    f"{self._signal!r}"
                )
                enq.data = DONE
                yield enq
                return
            if ref.__class__ is Stop:
                # An empty reference fiber: the signal stream presents the
                # matching one-deeper stop; consume the pair and pass the
                # deeper stop through.
                if self._signal is UNSET:
                    self._signal = yield deq_sig
                signal = self._signal
                assert isinstance(signal, Stop) and signal.level == ref.level + 1, (
                    f"{self.name}: ref stop {ref!r} paired with signal "
                    f"{signal!r} (expected Stop({ref.level + 1}))"
                )
                enq.data = signal
                res = yield stop_pull
                self._ref = res[2]
                self._signal = UNSET
                continue
            # Replicate this ref for one signal group.
            if self._signal is UNSET:
                self._signal = yield deq_sig
            while self._signal is REPEAT:
                enq.data = ref
                res = yield emit_sig
                self._signal = res[2]
            signal = self._signal
            assert isinstance(signal, Stop), (
                f"{self.name}: signal stream ended mid-group with "
                f"{signal!r}"
            )
            enq.data = signal
            if signal.level >= 1:
                # The group closed outer levels too: consume the ref
                # stream's matching (one-shallower) stop.
                if self._matching is UNSET:
                    res = yield stop_pull
                    self._matching = res[2]
                matching = self._matching
                assert (
                    isinstance(matching, Stop)
                    and matching.level == signal.level - 1
                ), (
                    f"{self.name}: expected ref-stream Stop("
                    f"{signal.level - 1}), got {matching!r}"
                )
                res = yield deq_ref
                self._ref = res
                self._signal = UNSET
                self._matching = UNSET
            else:
                if not self._flushed:
                    yield stop_flush
                    self._flushed = True
                res = yield deq_ref
                self._ref = res
                self._signal = UNSET
                self._flushed = False
