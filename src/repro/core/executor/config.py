"""Typed run configuration shared by every executor.

:class:`RunConfig` replaces the historical ad-hoc ``**kwargs`` surface of
:meth:`repro.core.program.Program.run`: one frozen dataclass carries every
tunable any executor understands, and each executor receives exactly the
subset its constructor declares (:meth:`RunConfig.kwargs_for` filters by
signature).  That subsetting is what makes one config portable across
runtimes — ``RunConfig(workers=4)`` is honored by the process executor
and silently irrelevant to the sequential one, so the same config can be
handed to ``Program.run(executor="auto")`` without knowing which runtime
will win.

Fields default to ``None`` (= "use the executor's own default"), so a
config only ever *overrides* what the caller explicitly set.  Unknown or
experimental knobs travel in ``extra`` and are passed through verbatim —
those are validated by the target constructor, exactly like the old
kwargs form.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, field
from typing import Any, Optional

#: RunConfig fields that are configuration, not payload (``extra`` is
#: special-cased everywhere).
_CONFIG_FIELDS: Optional[frozenset] = None

#: Fields interpreted by :meth:`Program.run` itself, never forwarded to an
#: executor constructor (the retry ladder re-runs whole executions; no
#: executor could honour it from the inside).
_RUN_ONLY_FIELDS = frozenset({"fallback"})


def _config_fields() -> frozenset:
    global _CONFIG_FIELDS
    if _CONFIG_FIELDS is None:
        _CONFIG_FIELDS = frozenset(
            f.name for f in dataclasses.fields(RunConfig) if f.name != "extra"
        )
    return _CONFIG_FIELDS


@dataclass(frozen=True)
class RunConfig:
    """Executor-independent run configuration.

    Parameters
    ----------
    workers:
        Worker processes (process executor) or a hint for future
        runtimes.
    policy:
        Scheduling policy name or instance for cooperative schedulers.
    fast_path:
        Enable the sequential executor's inline fast loop.
    max_ops:
        Safety valve: abort after this many operations.
    obs:
        An :class:`repro.obs.Observability` collecting trace/metrics.
    steal:
        Allow idle workers to claim (steal) cold clusters planned for
        other workers (process executor; default on).
    pin_workers:
        Pin workers/threads to CPUs via ``os.sched_setaffinity``,
        keeping shuttle peers on the same package (default off).
    deadlock_grace:
        Seconds of global stillness before the deadlock watchdog fires.
    poll_interval:
        Polling cadence for parked workers/threads.
    timeslice:
        Forced timeslice for worker-side cooperative scheduling.
    shuttle:
        ``"shm"`` or ``"pipe"`` cut-channel transport.
    weights / pins / balance:
        Partitioner inputs (see :func:`~repro.core.executor.partition.plan_partition`).
    deadline_s:
        Wall-clock budget for the run.  Every executor aborts cleanly into
        :class:`~repro.core.errors.RunTimeoutError` (carrying a partial
        summary and a stall report) once the budget is exhausted.
    fallback:
        Retry ladder for non-deterministic host failures (worker crash,
        deadline overrun — never ``DeadlockError``/``SimulationError``).
        A name, a sequence of names, or ``True`` for the default ladder
        ``process → threaded → sequential`` below the current executor.
        Consumed by :meth:`Program.run`, never by executors.
    faults:
        A :class:`~repro.core.faults.FaultPlan` of injected failures for
        chaos testing.
    metrics_interval_s:
        Enable live metric streaming: every this many wall-clock seconds
        a read-only sampler snapshots context clocks, op counters, and
        the metrics registry (see :class:`repro.obs.stream.MetricsSampler`).
        Sampling never perturbs simulated results.
    metrics_sink:
        Where streamed samples go: a callable invoked per sample, or a
        path appended to as JSON lines.  Samples are always also kept on
        ``obs.metrics_samples`` when an ``obs`` is attached.
    superblocks:
        Superblock compilation of cold clusters (DESIGN.md §15):
        ``"on"``/``True`` compiles every multi-context cold cluster into
        a straight-line driver, ``"off"``/``False`` disables it, and
        ``"auto"`` (executor default) compiles clusters the planner
        considers worth it (``plan_clusters`` + observed channel
        weights).  Results, traces, and profiles are bit-identical in
        every mode.
    extra:
        Anything else, passed through to the executor constructor
        verbatim (and validated there).
    """

    workers: Optional[int] = None
    policy: Any = None
    fast_path: Optional[bool] = None
    max_ops: Optional[int] = None
    obs: Any = None
    steal: Optional[bool] = None
    pin_workers: Optional[bool] = None
    deadlock_grace: Optional[float] = None
    poll_interval: Optional[float] = None
    timeslice: Optional[int] = None
    shuttle: Optional[str] = None
    weights: Optional[dict] = None
    pins: Optional[dict] = None
    balance: Optional[float] = None
    deadline_s: Optional[float] = None
    fallback: Any = None
    faults: Any = None
    metrics_interval_s: Optional[float] = None
    metrics_sink: Any = None
    superblocks: Any = None
    extra: dict = field(default_factory=dict)

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied; unknown keys land in ``extra``."""
        known = {k: v for k, v in changes.items() if k in _config_fields()}
        unknown = {k: v for k, v in changes.items() if k not in _config_fields()}
        config = dataclasses.replace(self, **known) if known else self
        if unknown:
            merged = dict(config.extra)
            merged.update(unknown)
            config = dataclasses.replace(config, extra=merged)
        return config

    def kwargs_for(self, executor_cls: type) -> dict[str, Any]:
        """The constructor kwargs of this config that ``executor_cls``
        accepts.

        Fields left at ``None`` are omitted (the executor default wins);
        set fields the constructor does not declare are dropped — that is
        the portability contract.  ``extra`` entries are never dropped:
        they are passed through so a typo fails loudly in the
        constructor, matching the legacy kwargs behavior.
        """
        params = inspect.signature(executor_cls.__init__).parameters
        accepts_any = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        )
        kwargs: dict[str, Any] = {}
        for name in _config_fields():
            if name in _RUN_ONLY_FIELDS:
                continue
            value = getattr(self, name)
            if value is None:
                continue
            if accepts_any or name in params:
                kwargs[name] = value
        kwargs.update(self.extra)
        return kwargs
