"""Core-loop microbenchmark: ops/sec through the sequential executor.

Unlike the paper-figure benchmarks (which sweep simulated configurations),
this file tracks the *simulator's own* hot path: how many context
operations per second the core scheduler/channel machinery sustains.  It
is the repo's perf trajectory anchor — ``results/BENCH_core.json`` records
the committed numbers plus the pre-fast-path baseline, and CI's
``--smoke`` mode fails when the current tree regresses by more than 3x
(an order-of-magnitude core-loop regression, not benchmark noise).

Four workloads, chosen to stress distinct parts of the core loop:

* ``deep_pipeline`` — a long chain of forwarding stages over bounded
  channels; nearly every op is a non-blocking dequeue/enqueue/IncrCycles,
  the case the inline fast path (fused ops + channel flavors) targets.
* ``tiny_ring`` — one token circulating a ring of capacity-1 channels;
  almost every dequeue blocks first, stressing the park/wake machinery.
* ``wide_diamond`` — fan-out/fan-in over capacity-1 arms; the
  multi-endpoint broadcast/join steps are the adversarial case for
  superblock peer-to-peer inlining (DESIGN.md §15), bailing out far
  more often than a ring or pipeline.
* ``spmspm`` — the Gustavson SpMSpM SAM kernel: the end-to-end mix of
  primitive contexts a real workload produces.

The full run and the smoke gate additionally measure each workload as an
interleaved ``superblocks`` on/off pair (same tree, alternating modes),
recording the pairwise speedup; CI asserts superblocks-on stays within
tolerance of superblocks-off.

Usage (from ``benchmarks/``)::

    PYTHONPATH=../src python bench_core_ops.py                  # full run
    PYTHONPATH=../src python bench_core_ops.py --smoke          # CI gate
    PYTHONPATH=../src python bench_core_ops.py --save-baseline b.json
    PYTHONPATH=../src python bench_core_ops.py --baseline-file b.json

The full run writes ``results/BENCH_core.json`` with both the current
numbers and the baseline (taken from ``--baseline-file``, else preserved
from the existing JSON, else the current run).
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from conftest import RESULTS_DIR, report_json

from repro.bench import TextTable
from repro.core import FunctionContext, IncrCycles, ProgramBuilder, SequentialExecutor
from repro.sam import CsfTensor
from repro.sam.graphs import build_spmspm
from repro.sam.tensor import random_dense

try:  # the inline fast path (this PR); absent on the pre-PR baseline tree
    from repro.core.ops import FusedOps
except ImportError:  # pragma: no cover - baseline-capture path
    FusedOps = None

try:  # superblock compilation; absent on pre-superblock trees
    from repro.core.executor.superblock import cold_cluster_count
except ImportError:  # pragma: no cover - baseline-capture path
    cold_cluster_count = None


# ----------------------------------------------------------------------
# Workloads.
# ----------------------------------------------------------------------


def build_deep_pipeline(stages: int = 16, tokens: int = 2000, capacity: int = 8):
    """A chain of forwarding stages: the non-blocking-op fast path."""
    builder = ProgramBuilder()
    links = [
        builder.bounded(capacity, name=f"link{i}") for i in range(stages + 1)
    ]

    def source(snd=links[0][0], n=tokens):
        if FusedOps is not None:
            def body():
                enq = snd.enqueue(None)
                step = FusedOps(enq, IncrCycles(1))
                for i in range(n):
                    enq.data = i
                    yield step
        else:
            def body():
                for i in range(n):
                    yield snd.enqueue(i)
                    yield IncrCycles(1)

        return body

    def stage(rcv, snd):
        if FusedOps is not None:
            def body():
                deq = rcv.dequeue()
                enq = snd.enqueue(None)
                step = FusedOps(enq, IncrCycles(1), deq)
                value = yield deq
                while True:
                    enq.data = value
                    value = (yield step)[2]
        else:
            def body():
                while True:
                    value = yield rcv.dequeue()
                    yield snd.enqueue(value)
                    yield IncrCycles(1)

        return body

    def sink(rcv=links[-1][1]):
        def body():
            deq = rcv.dequeue()
            while True:
                yield deq

        return body

    builder.add(FunctionContext(source(), handles=[links[0][0]], name="src"))
    for index in range(stages):
        rcv = links[index][1]
        snd = links[index + 1][0]
        builder.add(
            FunctionContext(
                stage(rcv, snd), handles=[rcv, snd], name=f"stage{index}"
            )
        )
    builder.add(FunctionContext(sink(), handles=[links[-1][1]], name="sink"))
    return builder.build()


def build_tiny_ring(nodes: int = 4, laps: int = 1500):
    """One token around a capacity-1 ring: the park/wake slow path."""
    builder = ProgramBuilder()
    links = [builder.bounded(1, name=f"hop{i}") for i in range(nodes)]

    def head(rcv=links[-1][1], snd=links[0][0], n=laps):
        if FusedOps is not None:
            def body():
                deq = rcv.dequeue()
                enq = snd.enqueue(None)
                step = FusedOps(enq, IncrCycles(1))
                yield snd.enqueue(0)
                for _ in range(n):
                    value = yield deq
                    enq.data = value + 1
                    yield step
        else:
            def body():
                yield snd.enqueue(0)
                for _ in range(n):
                    value = yield rcv.dequeue()
                    yield snd.enqueue(value + 1)
                    yield IncrCycles(1)

        return body

    def node(rcv, snd):
        if FusedOps is not None:
            def body():
                deq = rcv.dequeue()
                enq = snd.enqueue(None)
                step = FusedOps(enq, IncrCycles(1), deq)
                value = yield deq
                while True:
                    enq.data = value + 1
                    value = (yield step)[2]
        else:
            def body():
                while True:
                    value = yield rcv.dequeue()
                    yield snd.enqueue(value + 1)
                    yield IncrCycles(1)

        return body

    builder.add(
        FunctionContext(head(), handles=[links[-1][1], links[0][0]], name="ring0")
    )
    for index in range(1, nodes):
        rcv = links[index - 1][1]
        snd = links[index][0]
        builder.add(
            FunctionContext(
                node(rcv, snd), handles=[rcv, snd], name=f"ring{index}"
            )
        )
    return builder.build()


def build_wide_diamond(width: int = 4, depth: int = 2, tokens: int = 600):
    """Fan-out/fan-in over capacity-1 arms: park/wake-delivery dense.

    A source broadcasts each token across ``width`` parallel arms of
    ``depth`` forwarding stages, all over capacity-1 channels, and a
    sink joins them back.  The whole diamond is one cold cluster, but
    the multi-endpoint fan-out/fan-in steps stress the superblock
    driver's bail-out path far harder than a ring or pipeline does —
    this is the adversarial leg of the paired superblock comparison,
    expected to sit near 1.0x rather than show the ring's speedup."""
    builder = ProgramBuilder()
    entries = [builder.bounded(1, name=f"fan{w}") for w in range(width)]
    exits = [builder.bounded(1, name=f"join{w}") for w in range(width)]
    arm_links = [
        [builder.bounded(1, name=f"arm{w}_{d}") for d in range(depth - 1)]
        for w in range(width)
    ]

    def source(senders, n=tokens):
        if FusedOps is not None:
            def body():
                enqs = [snd.enqueue(None) for snd in senders]
                step = FusedOps(*enqs, IncrCycles(1))
                for i in range(n):
                    for enq in enqs:
                        enq.data = i
                    yield step
        else:
            def body():
                for i in range(n):
                    for snd in senders:
                        yield snd.enqueue(i)
                    yield IncrCycles(1)

        return body

    def stage(rcv, snd):
        if FusedOps is not None:
            def body():
                deq = rcv.dequeue()
                enq = snd.enqueue(None)
                step = FusedOps(enq, IncrCycles(1), deq)
                value = yield deq
                while True:
                    enq.data = value + 1
                    value = (yield step)[2]
        else:
            def body():
                while True:
                    value = yield rcv.dequeue()
                    yield snd.enqueue(value + 1)
                    yield IncrCycles(1)

        return body

    def sink(receivers):
        if FusedOps is not None:
            def body():
                step = FusedOps(
                    *[rcv.dequeue() for rcv in receivers], IncrCycles(1)
                )
                while True:
                    yield step
        else:
            def body():
                while True:
                    for rcv in receivers:
                        yield rcv.dequeue()
                    yield IncrCycles(1)

        return body

    fan_senders = [snd for snd, _ in entries]
    builder.add(
        FunctionContext(source(fan_senders), handles=fan_senders, name="fan")
    )
    for w in range(width):
        hops = (
            [entries[w][1]]
            + [end for link in arm_links[w] for end in link]
            + [exits[w][0]]
        )
        # hops = [rcv0, snd1, rcv1, snd2, rcv2, ...]: stage d forwards
        # hops[2d] -> hops[2d+1].
        for d in range(depth):
            rcv, snd = hops[2 * d], hops[2 * d + 1]
            builder.add(
                FunctionContext(
                    stage(rcv, snd), handles=[rcv, snd], name=f"arm{w}s{d}"
                )
            )
    join_receivers = [rcv for _, rcv in exits]
    builder.add(
        FunctionContext(sink(join_receivers), handles=join_receivers, name="join")
    )
    return builder.build()


def build_spmspm_program(size: int = 8, density: float = 0.4, depth: int = 4):
    """The Gustavson SpMSpM kernel: a realistic primitive mix."""
    b = random_dense(size, size, density=density, seed=101)
    ct = random_dense(size, size, density=density, seed=102)
    kernel = build_spmspm(
        CsfTensor.from_dense(b, "cc"),
        CsfTensor.from_dense(ct, "cc"),
        depth=depth,
    )
    return kernel.program


_FULL = {
    "deep_pipeline": lambda: build_deep_pipeline(stages=16, tokens=2000),
    "tiny_ring": lambda: build_tiny_ring(nodes=4, laps=1500),
    "wide_diamond": lambda: build_wide_diamond(width=2, depth=4, tokens=1200),
    # Saturation-regime instance: large enough (~150k ops) that steady-state
    # primitive streaming dominates over program build/teardown and the
    # short prefix before the pipeline fills, which tiny instances overweigh.
    "spmspm": lambda: build_spmspm_program(size=32, density=0.2, depth=16),
}

_SMOKE = {
    "deep_pipeline": lambda: build_deep_pipeline(stages=8, tokens=400),
    "tiny_ring": lambda: build_tiny_ring(nodes=4, laps=300),
    "wide_diamond": lambda: build_wide_diamond(width=2, depth=4, tokens=250),
    "spmspm": lambda: build_spmspm_program(size=6),
}


# ----------------------------------------------------------------------
# Measurement.
# ----------------------------------------------------------------------


def measure(build, repeats: int = 3, **executor_kwargs) -> dict:
    """Best-of-N ops/sec for one workload under the sequential executor."""
    best = None
    for _ in range(repeats):
        program = build()
        executor = SequentialExecutor(**executor_kwargs)
        start = time.perf_counter()
        summary = executor.execute(program)
        seconds = time.perf_counter() - start
        sample = {
            "ops": summary.ops_executed,
            "seconds": seconds,
            "ops_per_sec": summary.ops_executed / seconds,
            "elapsed_cycles": summary.elapsed_cycles,
        }
        if best is None or sample["ops_per_sec"] > best["ops_per_sec"]:
            best = sample
    return best


def run_workloads(workloads: dict, repeats: int = 3) -> dict:
    return {
        name: measure(build, repeats=repeats)
        for name, build in workloads.items()
    }


def measure_superblock_pair(build, repeats: int = 3) -> dict:
    """Best-of-N ops/sec with superblocks off vs on, *interleaved*: each
    repetition runs one off leg then one on leg back to back, so both
    modes see the same machine state (frequency, cache, background
    noise) and the pairwise speedup is meaningful."""
    best = {"off": None, "on": None}
    for _ in range(repeats):
        for mode in ("off", "on"):
            program = build()
            executor = SequentialExecutor(superblocks=mode)
            start = time.perf_counter()
            summary = executor.execute(program)
            seconds = time.perf_counter() - start
            rate = summary.ops_executed / seconds
            if best[mode] is None or rate > best[mode]:
                best[mode] = rate
    return {
        "off_ops_per_sec": best["off"],
        "on_ops_per_sec": best["on"],
        "speedup": best["on"] / best["off"],
    }


def run_superblock_pairs(workloads: dict, repeats: int = 3) -> dict:
    return {
        name: measure_superblock_pair(build, repeats=repeats)
        for name, build in workloads.items()
    }


def render_superblock_table(pairs: dict) -> str:
    table = TextTable(
        ["workload", "off_ops_per_sec", "on_ops_per_sec", "speedup"],
        title="Superblock compilation, paired off/on legs (sequential)",
    )
    for name, row in sorted(pairs.items()):
        table.add_row(
            name,
            round(row["off_ops_per_sec"]),
            round(row["on_ops_per_sec"]),
            f"{row['speedup']:.3f}x",
        )
    return table.render()


def profile_workloads(workloads: dict) -> dict:
    """Critical-path profiles for every workload (simulated time only).

    Profiles derive from the merged trace, so unlike the ops/sec numbers
    they are bit-stable across machines: the checked-in baseline diffs
    exactly unless the simulator's timing semantics change.
    """
    from repro.obs import Observability

    profiles = {}
    for name, build in workloads.items():
        program = build()
        obs = Observability(capture_payloads=False, metrics=False)
        SequentialExecutor(obs=obs).execute(program)
        profiles[name] = obs.profile_report.to_dict()
    return profiles


def render_profiles(profiles: dict) -> str:
    table = TextTable(
        ["workload", "finish_time", "compute", "blocked_deq", "blocked_enq",
         "overhead"],
        title="Critical-path attribution (simulated cycles)",
    )
    for name, profile in sorted(profiles.items()):
        path = profile["critical_path"]["by_category"]
        table.add_row(
            name,
            profile["finish_time"],
            path.get("compute", 0),
            path.get("blocked_on_dequeue", 0),
            path.get("blocked_on_enqueue", 0),
            path.get("overhead", 0),
        )
    return table.render()


def write_profile(path: str, profiles: dict) -> None:
    """Write the profile artifact: all workload sections, plus a top-level
    ``profile`` key (the spmspm section) so ``python -m repro.obs diff``
    can consume the file directly."""
    payload = {
        "schema": 1,
        "env": env_info(),
        "profile": profiles["spmspm"],
        "workloads": profiles,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote profile to {path}")


def env_info() -> dict:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        if dirty:
            rev += "+dirty"
    except Exception:  # noqa: BLE001 - not a git checkout / git missing
        rev = "unknown"
    info = {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "git_rev": rev,
        "fused_ops_available": FusedOps is not None,
        "superblocks": cold_cluster_count is not None,
    }
    if cold_cluster_count is not None:
        info["cold_clusters"] = _cold_clusters()
    return info


_COLD_CLUSTERS: dict | None = None


def _cold_clusters() -> dict:
    """Multi-member cold-cluster count per full workload (cached: the
    env block appears several times per payload)."""
    global _COLD_CLUSTERS
    if _COLD_CLUSTERS is None:
        _COLD_CLUSTERS = {
            name: cold_cluster_count(build()) for name, build in _FULL.items()
        }
    return _COLD_CLUSTERS


def render_table(current: dict, baseline: dict | None) -> str:
    table = TextTable(
        ["workload", "ops", "ops_per_sec", "baseline_ops_per_sec", "speedup"],
        title="Core-loop microbenchmark (sequential executor)",
    )
    for name, row in sorted(current.items()):
        base = (baseline or {}).get(name)
        base_rate = base["ops_per_sec"] if base else None
        speedup = row["ops_per_sec"] / base_rate if base_rate else None
        table.add_row(
            name,
            row["ops"],
            round(row["ops_per_sec"]),
            round(base_rate) if base_rate else "-",
            f"{speedup:.2f}x" if speedup else "-",
        )
    return table.render()


# ----------------------------------------------------------------------
# Entry points.
# ----------------------------------------------------------------------


def load_committed() -> dict | None:
    path = RESULTS_DIR / "BENCH_core.json"
    if path.exists():
        return json.loads(path.read_text())
    return None


def smoke(repeats: int = 2, tolerance: float = 3.0,
          profile_out: str | None = None) -> int:
    """CI gate: current ops/sec must be within ``tolerance`` (3x) of the
    committed numbers — generous enough to ignore machine variation,
    tight enough to catch an order-of-magnitude core-loop regression."""
    committed = load_committed()
    if committed is None:
        print("no committed BENCH_core.json; nothing to compare against")
        return 1
    current = run_workloads(_SMOKE, repeats=repeats)
    reference = committed["workloads"]
    print(render_table(current, reference))
    failures = []
    for name, row in current.items():
        ref = reference.get(name)
        if ref is None:
            continue
        floor = ref["ops_per_sec"] / tolerance
        status = "ok" if row["ops_per_sec"] >= floor else "REGRESSION"
        print(
            f"{name}: {row['ops_per_sec']:.0f} ops/s vs committed "
            f"{ref['ops_per_sec']:.0f} (floor {floor:.0f}) -> {status}"
        )
        if row["ops_per_sec"] < floor:
            failures.append(name)
    if cold_cluster_count is not None:
        # Paired superblock legs: on must stay within tolerance of off.
        # A small deficit on stream-dominated shapes is machine noise /
        # scratch-cell overhead, not a regression — the win is asserted
        # on the park-heavy workloads by the committed full run.
        pairs = run_superblock_pairs(_SMOKE, repeats=max(2, repeats))
        print(render_superblock_table(pairs))
        sb_floor = 1.0 / tolerance
        for name, row in pairs.items():
            if row["speedup"] < sb_floor:
                print(
                    f"{name}: superblocks-on is {row['speedup']:.2f}x of "
                    f"off (floor {sb_floor:.2f}x) -> REGRESSION"
                )
                failures.append(f"{name}(superblocks)")
    profiles = profile_workloads(_SMOKE)
    print(render_profiles(profiles))
    if profile_out:
        write_profile(profile_out, profiles)
    if failures:
        print(f"core-loop regression (> {tolerance}x) on: {', '.join(failures)}")
        return 1
    return 0


def full_run(repeats: int, baseline_file: str | None) -> dict:
    current = run_workloads(_FULL, repeats=repeats)
    superblock_pairs = (
        run_superblock_pairs(_FULL, repeats=repeats)
        if cold_cluster_count is not None
        else None
    )
    if baseline_file:
        baseline_payload = json.loads(Path(baseline_file).read_text())
        baseline = baseline_payload["workloads"]
        baseline_env = baseline_payload.get("env")
    else:
        committed = load_committed()
        if committed is not None and "baseline" in committed:
            baseline = committed["baseline"]["workloads"]
            baseline_env = committed["baseline"].get("env")
        else:
            baseline = current
            baseline_env = env_info()
    payload = {
        "schema": 1,
        "env": env_info(),
        "workloads": current,
        "baseline": {"workloads": baseline, "env": baseline_env},
        "speedup_vs_baseline": {
            name: current[name]["ops_per_sec"] / baseline[name]["ops_per_sec"]
            for name in current
            if name in baseline
        },
    }
    if superblock_pairs is not None:
        payload["superblocks"] = superblock_pairs
    print(render_table(current, baseline))
    if superblock_pairs is not None:
        print(render_superblock_table(superblock_pairs))
    print(render_profiles(profile_workloads(_FULL)))
    return payload


# Collected by ``pytest benchmarks/`` (not tier-1): a fast sanity pass
# that the committed trajectory point is honest on this tree.
def test_core_ops_tracks_committed_baseline():
    committed = load_committed()
    current = run_workloads(_SMOKE, repeats=1)
    for name, row in current.items():
        assert row["ops"] > 0 and row["ops_per_sec"] > 0
    if committed is not None:
        for name, ref in committed["workloads"].items():
            # Same 3x tolerance as the CI smoke gate.
            assert current[name]["ops_per_sec"] >= ref["ops_per_sec"] / 3.0, (
                f"{name}: core loop regressed by more than 3x vs committed"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small configs, compare against committed results (CI gate)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N repetitions"
    )
    parser.add_argument(
        "--save-baseline", metavar="PATH", default=None,
        help="run and save raw numbers to PATH (no BENCH_core.json write)",
    )
    parser.add_argument(
        "--baseline-file", metavar="PATH", default=None,
        help="embed the numbers saved at PATH as the baseline",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="write critical-path profiles (repro.obs diff compatible)",
    )
    args = parser.parse_args()

    if args.smoke:
        sys.exit(
            smoke(repeats=max(1, args.repeats - 1),
                  profile_out=args.profile_out)
        )

    if args.save_baseline:
        current = run_workloads(_FULL, repeats=args.repeats)
        payload = {"workloads": current, "env": env_info()}
        Path(args.save_baseline).write_text(json.dumps(payload, indent=2) + "\n")
        print(render_table(current, None))
        print(f"baseline saved to {args.save_baseline}")
        return

    payload = full_run(args.repeats, args.baseline_file)
    path = report_json("BENCH_core", payload)
    print(f"wrote {path}")
    if args.profile_out:
        write_profile(args.profile_out, profile_workloads(_FULL))


if __name__ == "__main__":
    main()
