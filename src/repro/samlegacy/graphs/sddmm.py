"""Legacy SDDMM: X = S .* (A @ B^T) on the cycle simulator."""

from __future__ import annotations

import numpy as np

from ...sam.tensor import CsfTensor, DenseLevel
from ..primitives import (
    LegacyArrayVals,
    LegacyBinaryAlu,
    LegacyCrdHold,
    LegacyFiberLookup,
    LegacyFiberWrite,
    LegacyReduce,
    LegacyRootSource,
    LegacyStreamSink,
    LegacyValsWrite,
)
from .common import DEFAULT_LEGACY_DEPTH, LegacyGraphBuilder, LegacyKernelGraph


def build_legacy_sddmm(
    s: CsfTensor,
    a_dense: np.ndarray,
    b_dense: np.ndarray,
    depth: int | None = DEFAULT_LEGACY_DEPTH,
    ii: int = 1,
) -> LegacyKernelGraph:
    """The cycle-based mirror of :func:`repro.sam.graphs.build_sddmm`."""
    if a_dense.shape[0] != s.shape[0] or b_dense.shape[0] != s.shape[1]:
        raise ValueError(
            f"shape mismatch: S {s.shape}, A {a_dense.shape}, B {b_dense.shape}"
        )
    if a_dense.shape[1] != b_dense.shape[1]:
        raise ValueError("A and B must share the k dimension")
    k_size = a_dense.shape[1]
    g = LegacyGraphBuilder(depth=depth)

    root = g.ch("rootS")
    g.add(LegacyRootSource(root, name="rootS", ii=ii))
    csi, rsi = g.ch("cSi"), g.ch("rSi")
    g.add(LegacyFiberLookup(s.level(0), root, csi, rsi, name="scanSi", ii=ii))
    csj, rsj = g.ch("cSj"), g.ch("rSj")
    g.add(LegacyFiberLookup(s.level(1), rsi, csj, rsj, name="scanSj", ii=ii))

    csi_out, csi_hold = g.fanout(csi, 2, "cSi")
    csj_out, csj_hold, csj_bref = g.fanout(csj, 3, "cSj")

    vs = g.ch("vS")
    g.add(LegacyArrayVals(s.vals, rsj, vs, name="arrayS", ii=ii))

    hi = g.ch("held_i")
    g.add(LegacyCrdHold(csi_hold, csj_hold, hi, name="holdI", ii=ii))

    cak, rak = g.ch("cAk"), g.ch("rAk")
    g.add(LegacyFiberLookup(DenseLevel(k_size), hi, cak, rak, name="scanAk", ii=ii))
    cbk, rbk = g.ch("cBk"), g.ch("rBk")
    g.add(LegacyFiberLookup(DenseLevel(k_size), csj_bref, cbk, rbk, name="scanBk", ii=ii))
    g.add(LegacyStreamSink(cak, name="sink_cAk", ii=ii))
    g.add(LegacyStreamSink(cbk, name="sink_cBk", ii=ii))

    va, vb = g.ch("vA"), g.ch("vB")
    g.add(LegacyArrayVals(np.asarray(a_dense).reshape(-1), rak, va, name="arrayA", ii=ii))
    g.add(LegacyArrayVals(np.asarray(b_dense).reshape(-1), rbk, vb, name="arrayB", ii=ii))

    vm = g.ch("vMulK")
    g.add(LegacyBinaryAlu(va, vb, vm, lambda x, y: x * y, name="mulK", ii=ii))
    vd = g.ch("vDot")
    g.add(LegacyReduce(vm, vd, suppress_uninhabited=True, name="reduceK", ii=ii))
    vx = g.ch("vX")
    g.add(LegacyBinaryAlu(vd, vs, vx, lambda x, y: x * y, name="sampleMul", ii=ii))

    fw_i = g.add(LegacyFiberWrite(csi_out, name="write_i", ii=ii))
    fw_j = g.add(LegacyFiberWrite(csj_out, name="write_j", ii=ii))
    vw = g.add(LegacyValsWrite(vx, name="write_vals", ii=ii))

    return LegacyKernelGraph(g.engine, [fw_i, fw_j], vw, s.shape)
