"""Table III — context counts per SAM application.

Paper: per-application context usage for MMAdd, SpMSpM, SDDMM, and MHA,
with the parallel MHA sweep surpassing two thousand contexts/threads at a
parallelization factor of 64.

Reproduction: graph sizes are structural (independent of data scale), so
these counts are directly comparable in spirit: each kernel's context and
channel totals, and the parallel-MHA context growth.
"""

import numpy as np
from conftest import report

from repro.bench import TextTable
from repro.sam import CsfTensor
from repro.sam.graphs import build_mmadd, build_sddmm, build_sparse_mha, build_spmspm
from repro.sam.graphs.mha import build_parallel_mha
from repro.sam.tensor import random_dense


def mha_inputs(heads, seq_len=8, d=4, seed=0):
    rng = np.random.default_rng(seed)
    mask = (rng.random((heads, seq_len, seq_len)) < 0.4).astype(float)
    for h in range(heads):
        np.fill_diagonal(mask[h], 1.0)
    return (
        mask,
        rng.standard_normal((heads, seq_len, d)),
        rng.standard_normal((heads, seq_len, d)),
        rng.standard_normal((heads, seq_len, d)),
    )


def build_kernels():
    a = random_dense(8, 8, density=0.5, seed=1)
    b = random_dense(8, 8, density=0.5, seed=2)
    mmadd = build_mmadd(CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc"))
    spmspm = build_spmspm(
        CsfTensor.from_dense(random_dense(8, 8, density=0.1, seed=3), "cc"),
        CsfTensor.from_dense(random_dense(8, 8, density=0.1, seed=4), "cc"),
    )
    sddmm = build_sddmm(
        CsfTensor.from_dense(random_dense(8, 8, density=0.3, seed=5), "cc"),
        random_dense(8, 4, density=1.0, seed=6),
        random_dense(8, 4, density=1.0, seed=7),
    )
    mask, q, k, v = mha_inputs(heads=2)
    mha = build_sparse_mha(CsfTensor.from_dense(mask, "dcc"), q, k, v)
    return {"MMAdd": mmadd, "SpMSpM": spmspm, "SDDMM": sddmm, "Sparse MHA": mha}


def test_table3_context_counts(benchmark):
    kernels = benchmark.pedantic(build_kernels, rounds=1, iterations=1)
    table = TextTable(
        ["application", "contexts", "channels"],
        title="Table III: context usage per SAM application",
    )
    for name, kernel in kernels.items():
        table.add_row(name, kernel.context_count, kernel.channel_count)

    mask, q, k, v = mha_inputs(heads=64)
    for parallelism in [1, 16, 64]:
        parallel = build_parallel_mha(mask, q, k, v, parallelism=parallelism)
        table.add_row(
            f"Parallel MHA (p={parallelism})",
            parallel.context_count,
            parallel.channel_count,
        )
        if parallelism == 64:
            # The paper: "contexts/threads ... surpasses two thousand".
            assert parallel.context_count > 2000
    report("table3_contexts", table.render())
