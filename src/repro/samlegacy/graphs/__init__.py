"""Legacy (cycle-based) SAM kernel graphs."""

from .common import LegacyKernelGraph
from .mha import build_legacy_sparse_mha
from .mmadd import build_legacy_mmadd
from .sddmm import build_legacy_sddmm
from .spmspm import build_legacy_spmspm

__all__ = [
    "LegacyKernelGraph",
    "build_legacy_mmadd",
    "build_legacy_spmspm",
    "build_legacy_sddmm",
    "build_legacy_sparse_mha",
]
