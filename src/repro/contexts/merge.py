"""The paper's merge unit (Listing 1).

A two-input merge that repeatedly emits the smaller head of its two sorted
input streams.  It is the paper's running example of the CSPT interface:
two peeks align the inputs, a conditional dequeue consumes the winner, the
initiation interval is charged locally, and the six-cycle pipeline latency
lives on the output channel's visibility stamp.
"""

from __future__ import annotations

from ..core.channel import Receiver, Sender
from ..core.context import Context
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from ..core.time import Time


class Merge(Context):
    """Emit the pairwise minimum-first merge of two sorted streams.

    ``ii`` is the initiation interval (2 in the paper's listing).  The
    listing's 6-cycle latency is modeled by constructing the output channel
    with ``latency=6``.  When one input closes, the other is drained
    through unchanged; when both close, the merge finishes (closing its
    output).
    """

    def __init__(
        self,
        a: Receiver,
        b: Receiver,
        out: Sender,
        ii: Time = 2,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.a = a
        self.b = b
        self.out = out
        self.ii = ii
        self.register(a, b, out)

    def run(self):
        a_open = True
        b_open = True
        while a_open and b_open:
            try:
                x = yield self.a.peek()
            except ChannelClosed:
                a_open = False
                break
            try:
                y = yield self.b.peek()
            except ChannelClosed:
                b_open = False
                break
            if x <= y:
                yield self.a.dequeue()
                winner = x
            else:
                yield self.b.dequeue()
                winner = y
            yield IncrCycles(self.ii)
            yield self.out.enqueue(winner)
        survivor = self.a if a_open else self.b
        try:
            while True:
                value = yield survivor.dequeue()
                yield IncrCycles(self.ii)
                yield self.out.enqueue(value)
        except ChannelClosed:
            return
