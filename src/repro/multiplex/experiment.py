"""The Fig. 12 harness: real time-per-batch across vGPU/pGPU configs.

For each configuration, ``virtual`` virtual devices (each its own DAM
context) share ``physical`` lock-guarded compute devices.  Each virtual
device processes ``batches`` full batches of the synthetic model; the
recorded per-batch wall-clock times give the mean and standard deviation
the paper reports.  The threaded executor is required — the physical
compute (numpy matmuls) releases the GIL, so multiplexing contention is
real.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contexts import Collector
from ..core.program import ProgramBuilder
from .device import DevicePool, PhysicalDevice
from .virtual import VirtualDevice


@dataclass
class MultiplexResult:
    """One Fig. 12 bar: a (virtual, physical) configuration's timing."""

    virtual: int
    physical: int
    mean_seconds: float
    std_seconds: float
    samples: int
    device_loads: int

    def label(self) -> str:
        return f"{self.virtual}v/{self.physical}p"


def run_multiplex_experiment(
    virtual: int,
    physical: int,
    batches: int = 8,
    batch_size: int = 64,
    work_dim: int = 128,
    shared_task: bool = False,
    seed: int = 0,
) -> MultiplexResult:
    """Run one (virtual, physical) configuration and aggregate timings.

    ``shared_task=True`` gives every virtual device the same task id, so
    reacquiring the same physical device skips the stash/load — the case
    the unfair lock optimizes.
    """
    from ..contexts import IterableSource

    rng = np.random.default_rng(seed)
    devices = [PhysicalDevice(i, work_dim=work_dim, seed=seed) for i in range(physical)]
    pool = DevicePool(devices)

    builder = ProgramBuilder()
    vdevs: list[VirtualDevice] = []
    for index in range(virtual):
        payload = [
            rng.standard_normal((batch_size, work_dim)) for _ in range(batches)
        ]
        s_in, r_in = builder.bounded(2, name=f"batches{index}")
        s_out, r_out = builder.bounded(2, name=f"results{index}")
        builder.add(IterableSource(s_in, payload, ii=1, name=f"feed{index}"))
        vdev = VirtualDevice(
            r_in,
            s_out,
            pool,
            task_id=0 if shared_task else index,
            name=f"vdev{index}",
        )
        builder.add(vdev)
        vdevs.append(vdev)
        builder.add(Collector(r_out, name=f"collect{index}"))

    builder.build().run(executor="threaded")
    samples = np.array([t for vdev in vdevs for t in vdev.batch_seconds])
    return MultiplexResult(
        virtual=virtual,
        physical=physical,
        mean_seconds=float(samples.mean()),
        std_seconds=float(samples.std()),
        samples=len(samples),
        device_loads=sum(device.loads for device in devices),
    )
