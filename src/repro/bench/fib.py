"""The per-node work function of the DAM-vs-SST microbenchmark.

The paper varies per-node work by computing the {16, 20}th Fibonacci number
"using the naive exponential method" inside every tree node, and creates
imbalance by adding 4 to the index for the first tree (a ~16x work
increase, since naive Fibonacci cost grows by the golden ratio per index).
The same function is used for both engines, mirroring the paper's use of a
single C++ implementation for both systems.
"""

from __future__ import annotations


def fib(n: int) -> int:
    """Naive exponential-time Fibonacci (deliberately unmemoized work)."""
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
