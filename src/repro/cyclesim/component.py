"""Cycle-driven components.

Each component's :meth:`tick` is invoked every cycle, and must manually
manage all inter-cycle state — initiation-interval countdowns, partially
consumed inputs, completion flags.  This is the state-machine style the
paper's Fig. 7 contrasts against CSPT (where the Python generator's program
counter *is* the state).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Sequence

from .channel import CycleChannel

_ids = itertools.count()


class CycleComponent:
    """Base class: override :meth:`tick`; set ``self.finished`` when done."""

    def __init__(self, name: str | None = None):
        self.id = next(_ids)
        self.name = name or f"{type(self).__name__}{self.id}"
        self.finished = False

    def tick(self, cycle: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class CycleSource(CycleComponent):
    """Emits an iterable, one element per ``ii`` cycles."""

    def __init__(
        self,
        out: CycleChannel,
        items: Iterable[Any],
        ii: int = 1,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.out = out
        self._iter = iter(items)
        self._next: Any = self._advance()
        self.ii = ii
        self._cooldown = 0

    def _advance(self) -> Any:
        try:
            return next(self._iter)
        except StopIteration:
            self.finished = True
            return None

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.out.can_push():
            self.out.push(self._next)
            self._next = self._advance()
            self._cooldown = self.ii - 1


class CycleUnaryOp(CycleComponent):
    """Applies ``fn`` elementwise with an II countdown state machine."""

    def __init__(
        self,
        inp: CycleChannel,
        out: CycleChannel,
        fn: Callable[[Any], Any],
        ii: int = 1,
        upstream: Sequence[CycleComponent] = (),
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.inp = inp
        self.out = out
        self.fn = fn
        self.ii = ii
        self._cooldown = 0
        self.upstream = list(upstream)

    def _input_exhausted(self) -> bool:
        return (
            all(component.finished for component in self.upstream)
            and self.inp.idle()
        )

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.inp.can_pop() and self.out.can_push():
            self.out.push(self.fn(self.inp.pop()))
            self._cooldown = self.ii - 1
        elif self._input_exhausted():
            self.finished = True


class CycleBinaryOp(CycleComponent):
    """Applies ``fn`` to aligned pairs; fires only with both inputs ready."""

    def __init__(
        self,
        left: CycleChannel,
        right: CycleChannel,
        out: CycleChannel,
        fn: Callable[[Any, Any], Any],
        ii: int = 1,
        upstream: Sequence[CycleComponent] = (),
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.left = left
        self.right = right
        self.out = out
        self.fn = fn
        self.ii = ii
        self._cooldown = 0
        self.upstream = list(upstream)

    def _input_exhausted(self) -> bool:
        return (
            all(component.finished for component in self.upstream)
            and self.left.idle()
            and self.right.idle()
        )

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.left.can_pop() and self.right.can_pop() and self.out.can_push():
            self.out.push(self.fn(self.left.pop(), self.right.pop()))
            self._cooldown = self.ii - 1
        elif self._input_exhausted():
            self.finished = True


class CycleSink(CycleComponent):
    """Drains a channel into ``self.values``; finishes when upstream does."""

    def __init__(
        self,
        inp: CycleChannel,
        ii: int = 1,
        upstream: Sequence[CycleComponent] = (),
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.inp = inp
        self.ii = ii
        self._cooldown = 0
        self.upstream = list(upstream)
        self.values: list[Any] = []

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.inp.can_pop():
            self.values.append(self.inp.pop())
            self._cooldown = self.ii - 1
        elif all(component.finished for component in self.upstream) and self.inp.idle():
            self.finished = True
