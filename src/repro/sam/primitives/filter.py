"""Value filtering: the compression companion of CrdDrop.

``ValDrop`` removes exact-zero payloads from a value stream, passing
control tokens through.  Paired with
:class:`~repro.sam.primitives.crd.CrdDrop` on the matching coordinate
stream, it compresses away the zero results that reductions over empty
intersections produce.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class ValDrop(SamContext):
    """Forward non-zero payloads and all control tokens."""

    checkpoint_attrs = ("_token",)

    def __init__(
        self,
        in_val: Receiver,
        out_val: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.out_val = out_val
        self._token = UNSET
        self.register(in_val, out_val)

    def run(self):
        deq = self.in_val.dequeue()
        enq = self.out_val.enqueue(None)
        step = FusedOps(enq, self.tick(), deq)
        step_control = FusedOps(enq, self.tick_control(), deq)
        skip = FusedOps(self.tick(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                enq.data = DONE
                yield enq
                return
            if token.__class__ is Stop:
                enq.data = token
                self._token = (yield step_control)[2]
            elif token != 0.0:
                enq.data = token
                self._token = (yield step)[2]
            else:
                self._token = (yield skip)[1]
