"""Per-tenant admission policies and budget accounting.

A tenant is a named slice of the server's capacity: a cap on concurrent
runs, a per-run wall-clock deadline ceiling, a default retry ladder, and
optionally a cumulative run-seconds budget.  The ledger is the single
authority on "may this request run now" — the server consults it before
touching the pool, and charges wall-clock seconds back after each run.

Policies *clamp* request configs rather than replacing them: a request
asking for a 2 s deadline under a 10 s tenant ceiling keeps its 2 s; a
request asking for 60 s is clamped down to 10.  The request's
``fallback`` wins over the tenant default when set.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..core.executor.config import RunConfig
from .errors import TenantBudgetError

_POLICY_FIELDS = ("max_in_flight", "deadline_s", "fallback", "run_budget_s")


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant.

    ``max_in_flight`` bounds concurrent runs; ``deadline_s`` is a
    per-run wall-clock ceiling (clamped onto every request's
    ``RunConfig``); ``fallback`` is the default retry ladder applied
    when a request sets none; ``run_budget_s`` is a cumulative
    wall-clock budget — once spent, further requests are rejected with
    :class:`TenantBudgetError` until the ledger is reset.
    """

    name: str = "default"
    max_in_flight: int = 8
    deadline_s: Optional[float] = None
    fallback: Any = None
    run_budget_s: Optional[float] = None

    @classmethod
    def from_dict(cls, name: str, data: dict[str, Any]) -> "TenantPolicy":
        unknown = sorted(set(data) - set(_POLICY_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown TenantPolicy field(s) {', '.join(map(repr, unknown))} "
                f"for tenant {name!r}; valid fields: {', '.join(_POLICY_FIELDS)}"
            )
        return cls(name=name, **data)

    def clamp(self, config: RunConfig) -> RunConfig:
        """The request config with this tenant's limits applied."""
        changes: dict[str, Any] = {}
        if self.deadline_s is not None:
            if config.deadline_s is None or config.deadline_s > self.deadline_s:
                changes["deadline_s"] = self.deadline_s
        if self.fallback is not None and config.fallback is None:
            changes["fallback"] = self.fallback
        return config.replace(**changes) if changes else config


@dataclass
class _TenantState:
    in_flight: int = 0
    admitted: int = 0
    rejected: int = 0
    spent_s: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class TenantLedger:
    """Thread-safe admission and budget accounting across tenants.

    Unknown tenants get a copy of the default policy — multi-tenancy is
    opt-in hardening, not a registration ceremony.
    """

    def __init__(
        self,
        policies: Optional[dict[str, TenantPolicy]] = None,
        default: Optional[TenantPolicy] = None,
    ):
        self._policies = dict(policies or {})
        self._default = default or TenantPolicy()
        self._states: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def policy(self, tenant: str) -> TenantPolicy:
        known = self._policies.get(tenant)
        if known is not None:
            return known
        return replace(self._default, name=tenant)

    def _state(self, tenant: str) -> _TenantState:
        with self._lock:
            state = self._states.get(tenant)
            if state is None:
                state = self._states[tenant] = _TenantState()
            return state

    def admit(self, tenant: str) -> TenantPolicy:
        """Admit one request for ``tenant`` or raise
        :class:`TenantBudgetError`; every admit must be paired with a
        :meth:`release`."""
        policy = self.policy(tenant)
        state = self._state(tenant)
        with state.lock:
            if state.in_flight >= policy.max_in_flight:
                state.rejected += 1
                raise TenantBudgetError(
                    tenant,
                    "too many runs in flight",
                    depth=state.in_flight,
                    limit=policy.max_in_flight,
                )
            if (
                policy.run_budget_s is not None
                and state.spent_s >= policy.run_budget_s
            ):
                state.rejected += 1
                raise TenantBudgetError(
                    tenant,
                    f"run-seconds budget exhausted "
                    f"({state.spent_s:.3f}s of {policy.run_budget_s}s spent)",
                )
            state.in_flight += 1
            state.admitted += 1
        return policy

    def release(self, tenant: str, seconds: float = 0.0) -> None:
        """Return an admitted slot, charging ``seconds`` of wall clock."""
        state = self._state(tenant)
        with state.lock:
            state.in_flight = max(0, state.in_flight - 1)
            state.spent_s += max(0.0, seconds)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            items = list(self._states.items())
        out: dict[str, Any] = {}
        for tenant, state in items:
            policy = self.policy(tenant)
            with state.lock:
                out[tenant] = {
                    "in_flight": state.in_flight,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "spent_s": state.spent_s,
                    "max_in_flight": policy.max_in_flight,
                    "deadline_s": policy.deadline_s,
                    "run_budget_s": policy.run_budget_s,
                }
        return out
