"""Cross-executor determinism on full SAM kernels.

The paper's exactness claim at application scale: the same SAM kernel
graph, executed on the cooperative executor (every policy), on the
threaded executor, and on the process executor at every worker count,
yields identical outputs, identical simulated cycle counts, identical
per-context finish times, and identical channel statistics.
"""

import numpy as np
import pytest

from repro.core import FairPolicy, SequentialExecutor
from repro.sam import CsfTensor
from repro.sam.graphs import (
    build_mmadd,
    build_sddmm,
    build_sparse_mha,
    build_spmspm,
)
from repro.sam.primitives import TimingParams
from repro.sam.tensor import random_dense


def mmadd_kernel():
    a = random_dense(6, 6, density=0.5, seed=21)
    b = random_dense(6, 6, density=0.5, seed=22)
    return build_mmadd(
        CsfTensor.from_dense(a, "cc"),
        CsfTensor.from_dense(b, "cc"),
        depth=3,
        timing=TimingParams(ii=2, stop_bubble=1),
    )


class TestKernelDeterminism:
    def test_mmadd_policies_and_threads_agree(self):
        outcomes = []
        for run_kind in ["fifo", "fair", "threaded"]:
            kernel = mmadd_kernel()
            if run_kind == "threaded":
                summary = kernel.run(executor="threaded")
            elif run_kind == "fair":
                summary = SequentialExecutor(
                    policy=FairPolicy(timeslice=3)
                ).execute(kernel.program)
                kernel.summary = summary
            else:
                summary = kernel.run()
            outcomes.append(
                (summary.elapsed_cycles, kernel.result_dense().tobytes())
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_spmspm_threaded_matches_sequential(self):
        b = random_dense(6, 6, density=0.3, seed=23)
        ct = random_dense(6, 6, density=0.3, seed=24)

        def build():
            return build_spmspm(
                CsfTensor.from_dense(b, "cc"),
                CsfTensor.from_dense(ct, "cc"),
                depth=4,
            )

        seq = build()
        s_seq = seq.run()
        thr = build()
        s_thr = thr.run(executor="threaded")
        assert np.allclose(seq.result_dense(), thr.result_dense())
        assert s_seq.elapsed_cycles == s_thr.elapsed_cycles

    def test_mha_threaded_matches_sequential(self):
        rng = np.random.default_rng(3)
        H, N, d = 2, 6, 3
        mask = (rng.random((H, N, N)) < 0.5).astype(float)
        for h in range(H):
            np.fill_diagonal(mask[h], 1.0)
        q = rng.standard_normal((H, N, d))
        k = rng.standard_normal((H, N, d))
        v = rng.standard_normal((H, N, d))

        def build():
            return build_sparse_mha(
                CsfTensor.from_dense(mask, "dcc"), q, k, v, depth=6,
                softmax_depth=32,
            )

        seq = build()
        s_seq = seq.run()
        thr = build()
        s_thr = thr.run(executor="threaded")
        assert np.allclose(seq.result_dense(), thr.result_dense())
        assert s_seq.elapsed_cycles == s_thr.elapsed_cycles


# ----------------------------------------------------------------------
# The full matrix: every executor, every worker count, three kernels.
# ----------------------------------------------------------------------


def _build_spmspm_kernel():
    b = random_dense(6, 6, density=0.3, seed=23)
    ct = random_dense(6, 6, density=0.3, seed=24)
    return build_spmspm(
        CsfTensor.from_dense(b, "cc"),
        CsfTensor.from_dense(ct, "cc"),
        depth=4,
    )


def _build_sddmm_kernel():
    rng = np.random.default_rng(31)
    s = random_dense(6, 6, density=0.4, seed=30)
    a = rng.standard_normal((6, 4))
    b = rng.standard_normal((6, 4))
    return build_sddmm(
        CsfTensor.from_dense(s, "cc"), a, b, depth=4,
        timing=TimingParams(ii=2),
    )


def _build_mha_kernel():
    rng = np.random.default_rng(3)
    H, N, d = 2, 5, 3
    mask = (rng.random((H, N, N)) < 0.5).astype(float)
    for h in range(H):
        np.fill_diagonal(mask[h], 1.0)
    q = rng.standard_normal((H, N, d))
    k = rng.standard_normal((H, N, d))
    v = rng.standard_normal((H, N, d))
    return build_sparse_mha(
        CsfTensor.from_dense(mask, "dcc"), q, k, v, depth=6, softmax_depth=32,
    )


_KERNELS = {
    "spmspm": _build_spmspm_kernel,
    "sddmm": _build_sddmm_kernel,
    "mha": _build_mha_kernel,
}


def _signature(kernel, summary):
    """Everything that must be executor-independent about a run.

    (``max_real_occupancy`` is deliberately absent: it measures real
    queue depth, which legitimately varies with scheduling order.)
    """
    channel_stats = tuple(
        (ch.name, ch.stats.enqueues, ch.stats.dequeues, ch.stats.peeks)
        for ch in kernel.program.channels
    )
    return {
        "elapsed": summary.elapsed_cycles,
        "context_times": summary.context_times,
        "channels": channel_stats,
        "result": kernel.result_dense().tobytes(),
    }


class TestExecutorMatrix:
    """sequential × threaded × process(1..4 workers), three SAM kernels.

    Simulated results — cycle counts, per-context finish times, channel
    traffic statistics, and the numeric output tensor — must be
    bit-identical regardless of the runtime that produced them.

    The SAM primitives issue their steady-state transitions as fused op
    batches, so this matrix is also the fused-program equivalence suite:
    the sequential reference runs the inline fast path, the
    ``fast_path=False`` leg runs the same batches through the generic
    dispatch path, and the threaded/process legs execute them on entirely
    different runtimes.
    """

    @pytest.mark.parametrize("kernel_name", sorted(_KERNELS))
    def test_all_executors_agree(self, kernel_name):
        from repro.core import RunConfig

        build = _KERNELS[kernel_name]
        reference_kernel = build()
        reference = _signature(reference_kernel, reference_kernel.run())

        runs = [
            ("sequential", RunConfig(fast_path=False)),
            ("threaded", RunConfig()),
        ]
        runs += [("process", RunConfig(workers=n)) for n in (1, 2, 3, 4)]
        # On a GIL build this leg exercises the fallback chain (process
        # when fork exists, threaded otherwise) — the simulated results
        # must be identical whichever runtime actually executes.
        runs += [("free-threaded", RunConfig(workers=2))]
        for executor, config in runs:
            kernel = build()
            summary = kernel.run(executor=executor, config=config)
            signature = _signature(kernel, summary)
            assert signature == reference, (
                f"{kernel_name} on {executor} {config} diverged from "
                "the sequential reference"
            )

    def test_legacy_kwargs_form_rejected(self):
        """The pre-registry bare-kwargs call style was removed with the
        serve API redesign: ``config=RunConfig(...)`` is the one
        constructor path, and stray keywords raise immediately."""
        kernel = _KERNELS["spmspm"]()
        with pytest.raises(TypeError, match="workers"):
            kernel.run(executor="process", workers=2)

    @pytest.mark.parametrize(
        "executor,kwargs",
        [
            ("sequential", {}),
            ("threaded", {}),
            ("process", {"workers": 2}),
        ],
    )
    def test_sampled_metrics_leg_is_bit_identical(self, executor, kwargs):
        """Live metric streaming (``metrics_interval_s``) must not perturb
        SVA: the sampled run's simulated results, merged trace, and
        profile must be bit-identical to the unsampled reference."""
        from repro.core import RunConfig
        from repro.obs import Observability

        def run(sampled):
            kernel = _KERNELS["spmspm"]()
            obs = Observability()
            sink: list = []
            config = RunConfig(
                obs=obs,
                metrics_interval_s=0.002 if sampled else None,
                metrics_sink=sink.append if sampled else None,
                **kwargs,
            )
            summary = kernel.run(executor=executor, config=config)
            # Keep only simulated-state kinds: the process executor also
            # records ``migrate`` events for steals, whose placement is a
            # scheduling artifact and varies run to run.
            kinds = {"enqueue", "dequeue", "peek", "advance", "finish"}
            events = [
                (e.context, e.kind, e.channel, e.time, e.seq)
                for e in obs.trace.events
                if e.kind in kinds
            ]
            return _signature(kernel, summary), events, summary.profile, sink

        ref_sig, ref_events, ref_profile, _ = run(sampled=False)
        sig, events, profile, sink = run(sampled=True)
        assert sig == ref_sig, f"{executor}: sampling changed the results"
        assert events == ref_events, f"{executor}: sampling changed the trace"
        assert profile == ref_profile, f"{executor}: sampling changed the profile"
        assert sink, f"{executor}: sampler produced no samples"

    @pytest.mark.parametrize("kernel_name", sorted(_KERNELS))
    def test_trace_event_sequences_agree(self, kernel_name):
        """Fused batches emit per-constituent trace events; the merged
        (time, context, seq) event stream must match across runtimes."""
        from repro.obs import Observability

        def events(executor, **kwargs):
            kernel = _KERNELS[kernel_name]()
            obs = Observability()
            kernel.run(executor=executor, obs=obs, **kwargs)
            return [
                (e.context, e.kind, e.channel, e.time, e.seq)
                for e in obs.trace.events
            ]

        reference = events("sequential")
        assert events("threaded") == reference


# ----------------------------------------------------------------------
# Forced work stealing: a deliberately skewed partition of the
# head-parallel MHA graph, where the only way the light worker gets more
# work is by migrating cold clusters away from the heavy worker.
# ----------------------------------------------------------------------


def _build_parallel_mha_kernel(parallelism=6):
    from repro.sam.graphs import build_parallel_mha

    rng = np.random.default_rng(11)
    H, N, d = parallelism, 5, 3
    mask = (rng.random((H, N, N)) < 0.5).astype(float)
    for h in range(H):
        np.fill_diagonal(mask[h], 1.0)
    q = rng.standard_normal((H, N, d))
    k = rng.standard_normal((H, N, d))
    v = rng.standard_normal((H, N, d))
    return build_parallel_mha(
        mask, q, k, v, parallelism=parallelism, depth=6, softmax_depth=32,
    )


def _skewed_pins(program):
    """Pin the first connected component to worker 0 and every other
    component to worker 1 (a 1-vs-many skew)."""
    from repro.core import plan_clusters

    clusters = plan_clusters(
        program, {id(ctx): 0 for ctx in program.contexts}
    )
    first = set(clusters[0].contexts)
    return {
        id(ctx): (0 if slot in first else 1)
        for slot, ctx in enumerate(program.contexts)
    }


class TestWorkStealing:
    def test_forced_steal_matches_sequential(self):
        """Worker 0 owns one of six pipelines; the other five sit cold on
        worker 1.  Worker 0 must steal, and the simulated results must
        stay bit-identical to the sequential reference anyway."""
        from repro.core import RunConfig

        reference_kernel = _build_parallel_mha_kernel()
        reference = _signature(reference_kernel, reference_kernel.run())

        kernel = _build_parallel_mha_kernel()
        pins = _skewed_pins(kernel.program)
        summary = kernel.run(
            executor="process", config=RunConfig(workers=2, pins=pins)
        )
        assert summary.steals >= 1, "skewed partition did not force a steal"
        assert _signature(kernel, summary) == reference

    def test_placement_feedback_eliminates_resteals(self):
        """RunSummary.placement credits stolen clusters to their adopter;
        replanning with pins_from_placement reproduces the observed
        locality, so the second run steals nothing — with identical
        simulated results both times."""
        from repro.core import RunConfig, pins_from_placement

        reference_kernel = _build_parallel_mha_kernel()
        reference = _signature(reference_kernel, reference_kernel.run())

        kernel = _build_parallel_mha_kernel()
        pins = _skewed_pins(kernel.program)
        summary = kernel.run(
            executor="process", config=RunConfig(workers=2, pins=pins)
        )
        assert summary.steals >= 1
        assert summary.placement is not None
        assert set(summary.placement) == {
            ctx.name for ctx in kernel.program.contexts
        }

        replay = _build_parallel_mha_kernel()
        replay_pins = pins_from_placement(replay.program, summary.placement)
        summary2 = replay.run(
            executor="process",
            config=RunConfig(workers=2, pins=replay_pins),
        )
        assert summary2.steals == 0, "observed placement was not honored"
        assert _signature(replay, summary2) == reference

    def test_steal_disabled_keeps_planned_placement(self):
        from repro.core import RunConfig

        reference_kernel = _build_parallel_mha_kernel()
        reference = _signature(reference_kernel, reference_kernel.run())

        kernel = _build_parallel_mha_kernel()
        pins = _skewed_pins(kernel.program)
        summary = kernel.run(
            executor="process",
            config=RunConfig(workers=2, pins=pins, steal=False),
        )
        assert summary.steals == 0
        assert _signature(kernel, summary) == reference


# ----------------------------------------------------------------------
# Superblock compilation (DESIGN.md §15): the same kernels with cold
# clusters compiled to straight-line drivers must remain bit-identical
# to the un-superblocked reference on every runtime.
# ----------------------------------------------------------------------


class TestSuperblockModes:
    @pytest.mark.parametrize("kernel_name", sorted(_KERNELS))
    def test_results_identical_across_executors_and_modes(self, kernel_name):
        from repro.core import RunConfig

        build = _KERNELS[kernel_name]
        reference_kernel = build()
        reference = _signature(
            reference_kernel,
            reference_kernel.run(config=RunConfig(superblocks="off")),
        )
        legs = [
            ("sequential", {}),
            ("threaded", {}),
            ("process", {"workers": 2}),
            ("free-threaded", {"workers": 2}),
        ]
        for executor, kwargs in legs:
            for mode in ("off", "on"):
                kernel = build()
                summary = kernel.run(
                    executor=executor,
                    config=RunConfig(superblocks=mode, **kwargs),
                )
                assert _signature(kernel, summary) == reference, (
                    f"{kernel_name} on {executor} with superblocks={mode} "
                    "diverged from the un-superblocked reference"
                )

    def test_trace_and_profile_identical_across_modes(self):
        """Traced runs retreat to the generic dispatch path (tracing
        disables the fast loop the superblock turns run on), so the
        merged event stream and the derived profile must be identical
        whatever superblock mode was requested."""
        from repro.core import RunConfig
        from repro.obs import Observability

        def run(executor, mode):
            kernel = _KERNELS["spmspm"]()
            obs = Observability()
            summary = kernel.run(
                executor=executor,
                config=RunConfig(obs=obs, superblocks=mode),
            )
            events = [
                (e.context, e.kind, e.channel, e.time, e.seq)
                for e in obs.trace.events
            ]
            return _signature(kernel, summary), events, summary.profile

        reference = run("sequential", "off")
        for executor in ("sequential", "threaded"):
            for mode in ("on", "auto"):
                outcome = run(executor, mode)
                assert outcome == reference, (
                    f"{executor} superblocks={mode}: trace/profile diverged"
                )
