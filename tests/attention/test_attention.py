"""Tests for the streaming attention case study (Section VII)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention import (
    attention_reference,
    build_seq_agnostic_attention,
    build_standard_attention,
    run_cycle_standard_attention,
)
from repro.core import DeadlockError


def inputs(n=16, d=4, seed=0, scale=0.5):
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((n, d)) * scale
    k = rng.standard_normal((n, d)) * scale
    v = rng.standard_normal((n, d))
    return q, k, v


class TestStandardAttention:
    def test_matches_reference(self):
        q, k, v = inputs()
        pipeline = build_standard_attention(q, k, v)
        pipeline.run()
        assert np.allclose(pipeline.result(), attention_reference(q, k, v))

    def test_threaded_matches_sequential(self):
        q, k, v = inputs(n=8)
        seq = build_standard_attention(q, k, v)
        s_seq = seq.run()
        thr = build_standard_attention(q, k, v)
        s_thr = thr.run(executor="threaded")
        assert np.allclose(seq.result(), thr.result())
        assert s_seq.elapsed_cycles == s_thr.elapsed_cycles

    def test_undersized_row_buffer_deadlocks(self):
        """The Section VII-A sizing rule: channel C needs depth >= N + alpha;
        far below N the softmax reduction deadlocks."""
        q, k, v = inputs(n=16)
        pipeline = build_standard_attention(q, k, v, buffer_depth=4)
        with pytest.raises(DeadlockError):
            pipeline.run()

    def test_exactly_sufficient_buffer_works(self):
        q, k, v = inputs(n=12)
        pipeline = build_standard_attention(q, k, v, buffer_depth=12 + 22)
        pipeline.run()
        assert np.allclose(pipeline.result(), attention_reference(q, k, v))


class TestSeqAgnosticAttention:
    def test_matches_reference(self):
        q, k, v = inputs()
        pipeline = build_seq_agnostic_attention(q, k, v)
        pipeline.run()
        assert np.allclose(pipeline.result(), attention_reference(q, k, v))

    def test_table2_constant_depth_suffices(self):
        """Table II: simulated cycles with depth 22 equal those with
        unbounded channels, across sequence lengths — O(1) local memory
        with no performance loss."""
        for n in [8, 16, 32]:
            q, k, v = inputs(n=n)
            bounded = build_seq_agnostic_attention(q, k, v, depth=22)
            s_bounded = bounded.run()
            unbounded = build_seq_agnostic_attention(q, k, v, depth=None)
            s_unbounded = unbounded.run()
            assert s_bounded.elapsed_cycles == s_unbounded.elapsed_cycles
            assert np.allclose(bounded.result(), unbounded.result())

    def test_cycles_scale_quadratically(self):
        q1, k1, v1 = inputs(n=16)
        small = build_seq_agnostic_attention(q1, k1, v1)
        s_small = small.run()
        q2, k2, v2 = inputs(n=32)
        big = build_seq_agnostic_attention(q2, k2, v2)
        s_big = big.run()
        ratio = s_big.elapsed_cycles / s_small.elapsed_cycles
        assert 3.0 < ratio < 5.0  # ~4x for 2x sequence length

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2, 16),
        d=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    def test_property_both_pipelines_match_reference(self, n, d, seed):
        q, k, v = inputs(n=n, d=d, seed=seed)
        ref = attention_reference(q, k, v)
        std = build_standard_attention(q, k, v)
        std.run()
        agn = build_seq_agnostic_attention(q, k, v)
        agn.run()
        assert np.allclose(std.result(), ref)
        assert np.allclose(agn.result(), ref)


class TestCycleBaseline:
    def test_matches_reference(self):
        q, k, v = inputs()
        out, _ = run_cycle_standard_attention(q, k, v)
        assert np.allclose(out, attention_reference(q, k, v))

    def test_cycle_gap_vs_dam_is_constant(self):
        """Section VII-C: simulated cycles in the two simulators match up
        to a constant startup/shutdown gap across sequence lengths."""
        gaps = []
        for n in [8, 16, 32]:
            q, k, v = inputs(n=n)
            dam = build_standard_attention(q, k, v)
            s_dam = dam.run()
            _, stats = run_cycle_standard_attention(q, k, v)
            gaps.append(stats.cycles - s_dam.elapsed_cycles)
        assert gaps[0] == gaps[1] == gaps[2]

    def test_real_cost_scales_with_ticks(self):
        q, k, v = inputs(n=16)
        _, stats = run_cycle_standard_attention(q, k, v)
        # Six components ticking ~N^2-ish cycles each.
        assert stats.ticks > 6 * 16 * 16
