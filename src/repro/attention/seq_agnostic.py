"""Sequence-length-agnostic streaming attention (Fig. 4b).

The running-sum context accumulates the weighted-V numerator and the
softmax denominator in one pass over the exp stream, so no channel ever
buffers a row: every depth is O(1) in the sequence length.  Table II's
experiment — identical simulated cycles with max depth 22 and with
unbounded channels — is reproduced by
:func:`repro.attention.seq_agnostic.build_seq_agnostic_attention` with
``depth=22`` vs ``depth=None``.
"""

from __future__ import annotations

import numpy as np

from ..core.program import Program, ProgramBuilder
from .blocks import (
    AttentionParams,
    ExpUnit,
    Finalize,
    RowCollector,
    RunningSum,
    ScoreProducer,
)


class SeqAgnosticAttention:
    """A built Fig. 4b pipeline; run then read ``result()``."""

    def __init__(self, program: Program, sink: RowCollector, params: AttentionParams):
        self.program = program
        self.sink = sink
        self.params = params
        self.summary = None

    def run(self, executor: str = "sequential", *, config=None, obs=None):
        self.summary = self.program.run(executor=executor, config=config, obs=obs)
        return self.summary

    def result(self) -> np.ndarray:
        return self.sink.result()


def build_seq_agnostic_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    depth: int | None = 22,
    ii: int = 1,
    score_ii: int | None = None,
) -> SeqAgnosticAttention:
    """Build the Fig. 4b pipeline with uniform channel ``depth``.

    ``depth=None`` gives unbounded channels (the Table II comparison
    partner); any depth >= a small constant yields identical simulated
    cycles, demonstrating the O(1) local-memory requirement.
    """
    n, d = q.shape
    params = AttentionParams(seq_len=n, head_dim=d, ii=ii)

    builder = ProgramBuilder()
    s_scores, r_scores = builder.channel(depth, name="scores")
    s_exp, r_exp = builder.channel(depth, name="exp")
    s_pairs, r_pairs = builder.channel(depth, name="num_den_pairs")
    s_out, r_out = builder.channel(depth, name="out_rows")

    builder.add(ScoreProducer(s_scores, q, k, params, ii=score_ii))
    builder.add(ExpUnit(r_scores, s_exp, params))
    builder.add(RunningSum(r_exp, s_pairs, v, params))
    builder.add(Finalize(r_pairs, s_out, params))
    sink = builder.add(RowCollector(r_out, params))
    return SeqAgnosticAttention(builder.build(), sink, params)
