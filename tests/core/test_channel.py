"""Unit tests for the pure time-bridging channel semantics.

These exercise the Channel state machine directly (no executor): stamping,
backpressure via the response queue, local time acceleration on both sides,
and the close/void termination transitions.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.channel import Channel, make_channel, peak_simulated_occupancy
from repro.core.time import TimeCell


def drain_dequeue(channel, clock):
    assert channel.can_dequeue()
    return channel.do_dequeue(clock)


class TestStamping:
    def test_element_stamped_with_sender_time_plus_latency(self):
        ch = Channel(capacity=4, latency=3)
        sender = TimeCell(10)
        ch.do_enqueue(sender, "x")
        receiver = TimeCell(0)
        assert ch.do_dequeue(receiver) == "x"
        assert receiver.now() == 13  # jumped to visibility stamp

    def test_receiver_already_past_stamp_keeps_its_time(self):
        ch = Channel(capacity=4, latency=1)
        ch.do_enqueue(TimeCell(0), "x")
        receiver = TimeCell(100)
        ch.do_dequeue(receiver)
        assert receiver.now() == 100

    def test_fifo_order(self):
        ch = Channel(capacity=8)
        sender = TimeCell()
        for i in range(5):
            ch.do_enqueue(sender, i)
            sender.incr(1)
        receiver = TimeCell()
        assert [ch.do_dequeue(receiver) for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_zero_latency_channel(self):
        ch = Channel(capacity=4, latency=0)
        ch.do_enqueue(TimeCell(5), "x")
        receiver = TimeCell(0)
        ch.do_dequeue(receiver)
        assert receiver.now() == 5


class TestBackpressure:
    def test_reserve_succeeds_under_capacity(self):
        ch = Channel(capacity=2)
        sender = TimeCell()
        assert ch.sender_try_reserve(sender)
        ch.do_enqueue(sender, 1)
        assert ch.sender_try_reserve(sender)
        ch.do_enqueue(sender, 2)

    def test_reserve_fails_when_full_and_no_responses(self):
        ch = Channel(capacity=1)
        sender = TimeCell()
        ch.do_enqueue(sender, 1)
        assert not ch.sender_try_reserve(sender)

    def test_response_frees_slot_and_advances_sender(self):
        ch = Channel(capacity=1, latency=1, resp_latency=2)
        sender = TimeCell(0)
        ch.do_enqueue(sender, "a")
        receiver = TimeCell(0)
        ch.do_dequeue(receiver)  # at time 1 (stamp), responds at 3
        assert receiver.now() == 1
        assert ch.sender_try_reserve(sender)
        # Draining the response advanced the sender to resp time 1 + 2.
        assert sender.now() == 3

    def test_sender_ahead_of_response_keeps_its_time(self):
        ch = Channel(capacity=1, latency=1, resp_latency=1)
        sender = TimeCell(0)
        ch.do_enqueue(sender, "a")
        receiver = TimeCell(0)
        ch.do_dequeue(receiver)
        sender.advance(50)
        assert ch.sender_try_reserve(sender)
        assert sender.now() == 50

    def test_unbounded_never_blocks(self):
        ch = Channel(capacity=None)
        sender = TimeCell()
        for i in range(1000):
            assert ch.sender_try_reserve(sender)
            ch.do_enqueue(sender, i)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Channel(latency=-1)


class TestPeek:
    def test_peek_advances_time_without_removal(self):
        ch = Channel(capacity=4, latency=5)
        ch.do_enqueue(TimeCell(0), "x")
        receiver = TimeCell(0)
        assert ch.do_peek(receiver) == "x"
        assert receiver.now() == 5
        assert ch.can_dequeue()

    def test_peek_emits_no_response(self):
        ch = Channel(capacity=1)
        sender = TimeCell()
        ch.do_enqueue(sender, "x")
        receiver = TimeCell()
        ch.do_peek(receiver)
        assert not ch.sender_try_reserve(sender)  # slot still held


class TestTermination:
    def test_closed_for_receiver_only_after_drain(self):
        ch = Channel(capacity=4)
        ch.do_enqueue(TimeCell(), "x")
        ch.close_sender()
        assert not ch.closed_for_receiver
        ch.do_dequeue(TimeCell())
        assert ch.closed_for_receiver

    def test_void_channel_discards_enqueues(self):
        ch = Channel(capacity=1)
        ch.close_receiver()
        sender = TimeCell()
        assert ch.sender_try_reserve(sender)
        ch.do_enqueue(sender, "x")
        assert ch.sender_try_reserve(sender)  # still not full: data discarded
        ch.do_enqueue(sender, "y")
        assert not ch.can_dequeue()

    def test_void_still_drains_pending_responses_first(self):
        """Sender time advancement must not depend on *when* the receiver's
        finish became visible (the determinism argument in channel.py)."""
        ch = Channel(capacity=1, latency=1, resp_latency=1)
        sender = TimeCell(0)
        ch.do_enqueue(sender, "a")
        receiver = TimeCell(0)
        ch.do_dequeue(receiver)  # responds with t=2
        ch.close_receiver()
        assert ch.sender_try_reserve(sender)
        assert sender.now() == 2  # drained the response despite the void

    def test_close_sender_clears_responses(self):
        ch = Channel(capacity=1)
        sender = TimeCell()
        ch.do_enqueue(sender, "a")
        ch.do_dequeue(TimeCell())
        ch.close_sender()
        assert ch.sender_finished


class TestStats:
    def test_counters(self):
        ch = Channel(capacity=8)
        ch.enable_profiling()
        sender = TimeCell()
        for i in range(4):
            ch.do_enqueue(sender, i)
        receiver = TimeCell()
        ch.do_dequeue(receiver)
        assert ch.stats.enqueues == 4
        assert ch.stats.dequeues == 1
        assert ch.stats.max_real_occupancy == 4

    def test_profiling_log(self):
        ch = Channel(capacity=8, latency=1)
        ch.enable_profiling()
        sender = TimeCell(0)
        ch.do_enqueue(sender, "a")
        receiver = TimeCell(10)
        ch.do_dequeue(receiver)
        assert ch.profile_log == [(1, 10)]


class TestPeakSimulatedOccupancy:
    def test_empty_log(self):
        assert peak_simulated_occupancy([]) == 0

    def test_non_overlapping(self):
        assert peak_simulated_occupancy([(0, 1), (2, 3)]) == 1

    def test_overlapping(self):
        assert peak_simulated_occupancy([(0, 10), (1, 9), (2, 8)]) == 3

    def test_departure_at_arrival_instant_frees_first(self):
        # One element leaves exactly when another arrives: peak stays 1.
        assert peak_simulated_occupancy([(0, 5), (5, 9)]) == 1


class TestHandles:
    def test_make_channel_returns_linked_pair(self):
        snd, rcv = make_channel(capacity=3, name="link")
        assert snd.channel is rcv.channel
        assert snd.channel.name == "link"

    def test_handle_op_builders(self):
        from repro.core.ops import Dequeue, Enqueue, Peek

        snd, rcv = make_channel()
        assert isinstance(snd.enqueue(1), Enqueue)
        assert isinstance(rcv.dequeue(), Dequeue)
        assert isinstance(rcv.peek(), Peek)


@given(
    capacity=st.integers(min_value=1, max_value=4),
    latency=st.integers(min_value=0, max_value=5),
    resp_latency=st.integers(min_value=0, max_value=5),
    sends=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30),
)
def test_property_timestamps_nondecreasing_through_channel(
    capacity, latency, resp_latency, sends
):
    """Property: dequeue times are nondecreasing (FIFO + monotonic clocks),
    for any channel geometry and any sender pacing, when the receiver
    eagerly drains."""
    ch = Channel(capacity=capacity, latency=latency, resp_latency=resp_latency)
    sender = TimeCell()
    receiver = TimeCell()
    dequeue_times = []
    for gap in sends:
        sender.incr(gap)
        # Interleave: receiver drains whenever the sender is blocked.
        while not ch.sender_try_reserve(sender):
            ch.do_dequeue(receiver)
            dequeue_times.append(receiver.now())
        ch.do_enqueue(sender, gap)
    while ch.can_dequeue():
        ch.do_dequeue(receiver)
        dequeue_times.append(receiver.now())
    assert dequeue_times == sorted(dequeue_times)
    assert len(dequeue_times) == len(sends)
