"""Direct tests for the reusable context library."""

import pytest

from repro import ProgramBuilder, SimulationError
from repro.contexts import (
    Broadcast,
    Checker,
    Collector,
    IterableSource,
    RampSource,
    StreamReducer,
)


class TestBroadcast:
    def test_requires_outputs(self):
        builder = ProgramBuilder()
        _, rcv = builder.bounded(1)
        with pytest.raises(ValueError):
            Broadcast(rcv, [])

    def test_three_way_copy(self):
        builder = ProgramBuilder()
        s_in, r_in = builder.bounded(2)
        outs = []
        collectors = []
        for index in range(3):
            snd, rcv = builder.bounded(2)
            outs.append(snd)
            collectors.append(Collector(rcv, name=f"c{index}"))
        builder.add(RampSource(s_in, 7))
        builder.add(Broadcast(r_in, outs))
        for collector in collectors:
            builder.add(collector)
        builder.build().run()
        for collector in collectors:
            assert collector.values == list(range(7))

    def test_slow_branch_backpressures_all(self):
        """One slow consumer throttles every branch (physical fanout)."""
        builder = ProgramBuilder()
        s_in, r_in = builder.bounded(2)
        s_a, r_a = builder.bounded(2)
        s_b, r_b = builder.bounded(2)
        source = builder.add(RampSource(s_in, 30, ii=1))
        builder.add(Broadcast(r_in, [s_a, s_b]))
        fast = builder.add(Collector(r_a, ii=1, name="fast"))
        builder.add(Collector(r_b, ii=20, name="slow"))
        builder.build().run()
        # The source finishes long after its unthrottled 30 cycles.
        assert source.finish_time > 300
        assert fast.values == list(range(30))


class TestStreamReducer:
    def test_group_size_validated(self):
        builder = ProgramBuilder()
        _, r1 = builder.bounded(1)
        s2, _ = builder.bounded(1)
        with pytest.raises(ValueError):
            StreamReducer(r1, s2, lambda a, b: a + b, group=0)

    def test_partial_group_is_an_error(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        s2, r2 = builder.bounded(2)
        builder.add(RampSource(s1, 5))  # 5 elements, group of 3
        builder.add(StreamReducer(r1, s2, lambda a, b: a + b, group=3))
        builder.add(Collector(r2))
        with pytest.raises(SimulationError, match="mid-group"):
            builder.build().run()

    def test_initial_value(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        s2, r2 = builder.bounded(2)
        builder.add(RampSource(s1, 4))
        builder.add(
            StreamReducer(r1, s2, lambda a, b: a + b, group=2, initial=100)
        )
        collector = builder.add(Collector(r2))
        builder.build().run()
        assert collector.values == [101, 105]

    def test_empty_whole_stream_with_initial(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        s2, r2 = builder.bounded(2)
        builder.add(IterableSource(s1, []))
        builder.add(StreamReducer(r1, s2, lambda a, b: a + b, initial=0))
        collector = builder.add(Collector(r2))
        builder.build().run()
        assert collector.values == [0]

    def test_empty_whole_stream_without_initial(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        s2, r2 = builder.bounded(2)
        builder.add(IterableSource(s1, []))
        builder.add(StreamReducer(r1, s2, lambda a, b: a + b))
        collector = builder.add(Collector(r2))
        builder.build().run()
        assert collector.values == []


class TestChecker:
    def test_extra_element_detected(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        builder.add(RampSource(s1, 5))
        builder.add(Checker(r1, [0, 1, 2]))
        with pytest.raises(SimulationError, match="extra element"):
            builder.build().run()

    def test_early_close_detected(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        builder.add(RampSource(s1, 2))
        builder.add(Checker(r1, [0, 1, 2, 3]))
        with pytest.raises(SimulationError, match="closed after 2"):
            builder.build().run()


class TestSources:
    def test_initial_delay_shifts_timeline(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        builder.add(IterableSource(s1, ["x"], initial_delay=50))
        collector = builder.add(Collector(r1, timestamps=True))
        builder.build().run()
        (stamped,) = collector.values
        assert stamped[0] >= 50
