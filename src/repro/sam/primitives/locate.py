"""Locate: random access into a level by coordinate.

Streaming scanners only walk fibers in order; some dataflows (Gustavson's
row gathering, scatter/gather stages) need the *reverse* map — given a
coordinate, find its position in a fiber.  ``Locate`` searches a fixed
fiber of a level (binary search on the coordinate segment for compressed
levels, arithmetic for dense ones) and emits the child reference, or
``ABSENT`` when the coordinate has no entry — which downstream scanners
treat as an empty fiber, giving missing rows the natural all-zero
semantics.

Timing: each lookup charges ``ii``; hardware would serve this from an
indexed memory, so the default cost model is one access per payload.
"""

from __future__ import annotations

from bisect import bisect_left

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..tensor import CompressedLevel, DenseLevel, Level
from ..token import ABSENT, DONE, Stop
from .base import SamContext, TimingParams


class Locate(SamContext):
    """Coordinates in, child references (or ABSENT) out; fixed fiber."""

    checkpoint_attrs = ("_token",)

    def __init__(
        self,
        level: Level,
        in_crd: Receiver,
        out_ref: Sender,
        fiber_ref: int = 0,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.level = level
        self.fiber_ref = fiber_ref
        self.in_crd = in_crd
        self.out_ref = out_ref
        self._token = UNSET
        self.register(in_crd, out_ref)

    def _lookup(self, coordinate: int):
        level = self.level
        if isinstance(level, DenseLevel):
            if 0 <= coordinate < level.size:
                return self.fiber_ref * level.size + coordinate
            return ABSENT
        if isinstance(level, CompressedLevel):
            start, end = level.seg[self.fiber_ref], level.seg[self.fiber_ref + 1]
            position = bisect_left(level.crd, coordinate, start, end)
            if position < end and level.crd[position] == coordinate:
                return position
            return ABSENT
        # Generic fallback: linear scan through the fiber.
        coords, refs = level.fiber(self.fiber_ref)
        for crd, ref in zip(coords, refs):
            if crd == coordinate:
                return ref
        return ABSENT

    def run(self):
        lookup = self._lookup
        deq = self.in_crd.dequeue()
        enq = self.out_ref.enqueue(None)
        step = FusedOps(enq, self.tick(), deq)
        step_control = FusedOps(enq, self.tick_control(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                enq.data = DONE
                yield enq
                return
            if token.__class__ is Stop:
                enq.data = token
                self._token = (yield step_control)[2]
            else:
                enq.data = lookup(token)
                self._token = (yield step)[2]
