"""Reduce: collapse the innermost fiber of a value stream.

``[v0, v1, S0, v2, S1, D]`` reduces to ``[v0 + v1, v2, S0, D]`` — one
payload per innermost fiber, all stop levels decremented by one.  Empty
fibers reduce to the identity (0.0 for add), which downstream crd-drop
stages may eliminate.
"""

from __future__ import annotations

from typing import Callable

from ...core.channel import Receiver, Sender
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class Reduce(SamContext):
    """Streaming innermost-fiber reduction (default: sum)."""

    def __init__(
        self,
        in_val: Receiver,
        out_val: Sender,
        fn: Callable[[float, float], float] = lambda a, b: a + b,
        identity: float = 0.0,
        suppress_uninhabited: bool = False,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.out_val = out_val
        self.fn = fn
        self.identity = identity
        self.suppress_uninhabited = suppress_uninhabited
        self.register(in_val, out_val)

    def run(self):
        fn = self.fn
        accumulator = self.identity
        # With ``suppress_uninhabited``: a higher-level stop arriving
        # before any payload or innermost (S0) boundary closes
        # *uninhabited* space (an empty operand) and emits no value.
        # Whether that reading is correct is graph knowledge: it holds
        # when the innermost level is dense (>= 1 payload per element, so
        # stream emptiness means no elements exist), and fails when empty
        # innermost fibers are legitimate per-element outcomes (e.g.
        # empty intersections in SpMSpM, which must still produce their
        # zero).  Hence the flag.  See tests/sam/test_primitives.py.
        virgin = True
        deq = self.in_val.dequeue()
        enq_acc = self.out_val.enqueue(None)  # accumulator (or final DONE)
        enq_stop = self.out_val.enqueue(None)  # trailing shallower stop
        step = FusedOps(self.tick(), deq)
        flush_inner = FusedOps(enq_acc, self.tick_control(), deq)
        flush_outer = FusedOps(enq_acc, enq_stop, self.tick_control(), deq)
        flush_suppressed = FusedOps(enq_stop, self.tick_control(), deq)
        token = yield deq
        while True:
            if token is DONE:
                enq_acc.data = DONE
                yield enq_acc
                return
            if token.__class__ is Stop:
                if token.level == 0:
                    virgin = False
                    enq_acc.data = accumulator
                    accumulator = self.identity
                    token = (yield flush_inner)[2]
                elif self.suppress_uninhabited and virgin:
                    accumulator = self.identity
                    enq_stop.data = Stop(token.level - 1)
                    token = (yield flush_suppressed)[2]
                else:
                    enq_acc.data = accumulator
                    accumulator = self.identity
                    enq_stop.data = Stop(token.level - 1)
                    token = (yield flush_outer)[3]
            else:
                virgin = False
                accumulator = fn(accumulator, token)
                token = (yield step)[1]
