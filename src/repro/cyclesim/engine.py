"""The cycle-by-cycle engine loop."""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass

from .channel import CycleChannel
from .component import CycleComponent


@dataclass
class CycleStats:
    """Run cost: simulated cycles, component-ticks executed, real seconds."""

    cycles: int
    ticks: int
    real_seconds: float

    def __str__(self) -> str:
        return (
            f"CycleStats(cycles={self.cycles}, ticks={self.ticks}, "
            f"real={self.real_seconds:.4f}s)"
        )


class CycleEngine:
    """Ticks every component every cycle until all declare completion.

    ``max_cycles`` bounds runaway simulations (a stalled cycle-level model
    has no deadlock detector — it just spins; we detect *global* quiescence
    heuristically by watching channel activity when ``deadlock_window`` is
    set).
    """

    def __init__(
        self,
        max_cycles: int = 50_000_000,
        deadlock_window: int | None = 100_000,
    ):
        self.components: list[CycleComponent] = []
        self.channels: list[CycleChannel] = []
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window

    def add(self, component: CycleComponent) -> CycleComponent:
        self.components.append(component)
        return component

    def channel(self, capacity: int | None = None, name: str | None = None) -> CycleChannel:
        channel = CycleChannel(capacity=capacity, name=name)
        self.channels.append(channel)
        return channel

    def run(self) -> CycleStats:
        start = _wallclock.perf_counter()
        components = self.components
        channels = self.channels
        cycle = 0
        ticks = 0
        last_activity_cycle = 0
        last_activity_marker = -1
        while cycle < self.max_cycles:
            alive = False
            for component in components:
                if not component.finished:
                    component.tick(cycle)
                    ticks += 1
                    alive = True
            for channel in channels:
                channel.commit()
            cycle += 1
            if not alive:
                break
            if self.deadlock_window is not None and cycle % 1024 == 0:
                marker = sum(ch.pushes + ch.pops for ch in channels)
                if marker != last_activity_marker:
                    last_activity_marker = marker
                    last_activity_cycle = cycle
                elif cycle - last_activity_cycle >= self.deadlock_window:
                    blocked = [c.name for c in components if not c.finished]
                    raise RuntimeError(
                        "cycle simulation quiesced without completing "
                        f"(stalled components: {', '.join(blocked)})"
                    )
        else:
            raise RuntimeError(f"exceeded max_cycles={self.max_cycles}")
        return CycleStats(
            cycles=cycle - 1,
            ticks=ticks,
            real_seconds=_wallclock.perf_counter() - start,
        )
