"""SpMSpM, Gustavson dataflow: X(i, :) = sum_k B(i, k) * C(k, :).

The inner-product formulation (:mod:`repro.sam.graphs.spmspm`) intersects
k-fibers per output element; Gustavson instead walks B's nonzeros and
accumulates scaled rows of C with the sparse accumulator — no intersection
and no wasted work on empty crossings, at the cost of the spacc's merge
state.  Which dataflow wins depends on the operands' sparsity structure:
exactly the kind of trade-off the paper positions DAM to explore
("explore various tradeoffs in the system"), and the subject of the
inner-vs-Gustavson ablation bench.

Storage convention: ``b`` is (I, K) in 'cc'; ``c`` is (K, J) in **'dc'**
(dense k level), so B's k coordinates directly reference C's rows without
a Locate unit.

Graph sketch::

    rootB -> scanBi -> scanBk  (B's nonzeros, row-major)
    crd_kB --------------------------> scanCj (dense k ref -> C row fiber)
    vB -> repeat per j -> mul with vC -> spacc over k -> X rows
"""

from __future__ import annotations

import numpy as np

from ..primitives import (
    ArrayVals,
    BinaryAlu,
    FiberLookup,
    FiberWrite,
    Repeat,
    RepeatSigGen,
    RootSource,
    SpaccV1,
    ValsWrite,
)
from ..primitives.alu import mul
from ..tensor import CsfTensor
from .common import KernelGraph, SamGraphBuilder


def build_spmspm_gustavson(
    b: CsfTensor,
    c: CsfTensor,
    depth: int | None = None,
    latency: int = 1,
    timing=None,
) -> KernelGraph:
    """Build X = B @ C with Gustavson accumulation (see module docstring).

    ``c`` may be 'dc' (dense k level: B's k coordinates reference rows
    directly) or 'cc' (compressed k level: a :class:`Locate` stage maps
    each k coordinate to its row reference, with missing rows becoming
    ABSENT/empty fibers).
    """
    if b.shape[1] != c.shape[0]:
        raise ValueError(f"inner dimensions differ: B {b.shape}, C {c.shape}")
    rows, cols = b.shape[0], c.shape[1]
    g = SamGraphBuilder(depth=depth, latency=latency, timing=timing)
    t = g.timing

    # --- walk B's nonzeros, row-major -----------------------------------
    rootb_s, rootb_r = g.ch("rootB")
    g.add(RootSource(rootb_s, timing=t, name="rootB"))
    cbi_s, cbi_r = g.ch("cBi")
    rbi_s, rbi_r = g.ch("rBi")
    g.add(FiberLookup(b.level(0), rootb_r, cbi_s, rbi_s, timing=t, name="scanBi"))
    cbk_s, cbk_r = g.ch("cBk")
    rbk_s, rbk_r = g.ch("rBk")
    g.add(FiberLookup(b.level(1), rbi_r, cbk_s, rbk_s, timing=t, name="scanBk"))

    vb_s, vb_r = g.ch("vB")
    g.add(ArrayVals(b.vals, rbk_r, vb_s, timing=t, name="arrayB"))

    # --- gather C's row for each B nonzero -------------------------------
    if c.level(0).kind == "dense":
        # cBk coordinates double as dense references into C's k level.
        row_ref_r = cbk_r
    else:
        # Compressed k level: random-access the row position by coordinate.
        from ..primitives import Locate

        loc_s, row_ref_r = g.ch("rCrow")
        g.add(Locate(c.level(0), cbk_r, loc_s, timing=t, name="locateK"))
    ccj_s, ccj_r = g.ch("cCj")
    rcj_s, rcj_r = g.ch("rCj")
    g.add(FiberLookup(c.level(1), row_ref_r, ccj_s, rcj_s, timing=t, name="scanCj"))
    ccj_acc, ccj_sig = g.fanout(ccj_r, 2, "cCj")
    vc_s, vc_r = g.ch("vC")
    g.add(ArrayVals(c.vals, rcj_r, vc_s, timing=t, name="arrayC"))

    # Scale each C row by its B value: repeat vB once per j in the row.
    sig_s, sig_r = g.ch("sigJ")
    g.add(RepeatSigGen(ccj_sig, sig_s, timing=t, name="repsigJ"))
    vbrep_s, vbrep_r = g.ch("vB_rep")
    g.add(Repeat(vb_r, sig_r, vbrep_s, timing=t, name="repeatVB"))
    vm_s, vm_r = g.ch("vScaled")
    g.add(BinaryAlu(vc_r, vbrep_r, vm_s, mul, timing=t, name="scaleMul"))

    # --- merge the scaled rows over k with the sparse accumulator --------
    cx_s, cx_r = g.ch("crd_jX")
    vx_s, vx_r = g.ch("vX")
    g.add(SpaccV1(ccj_acc, vm_r, cx_s, vx_s, timing=t, name="spaccK"))

    fw_i = g.add(FiberWrite(cbi_r, timing=t, name="write_i"))
    fw_j = g.add(FiberWrite(cx_r, timing=t, name="write_j"))
    vw = g.add(ValsWrite(vx_r, timing=t, name="write_vals"))

    return KernelGraph(g.build(), [fw_i, fw_j], vw, (rows, cols))


def gustavson_reference(b_dense: np.ndarray, c_dense: np.ndarray) -> np.ndarray:
    return b_dense @ c_dense
