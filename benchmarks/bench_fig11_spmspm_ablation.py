"""Fig. 11 — SpMSpM ablation: DAM configurations vs the legacy simulator.

Paper: baseline = DAM restricted to 1 core, channel depth 1, yield after
every cycle, CFS — emulating single-threaded cycle-by-cycle Python; that
restricted DAM was 24.8x faster than original SAM (the language
difference), and full parallel DAM gained another ~87x; depth beyond 8
barely helps except unbounded channels (no backpressure simulation),
which are clearly fastest.

Reproduction mapping (single-core Python): the language axis collapses
(both are Python), leaving the framework axes — scheduling discipline,
channel depth, and unbounded channels — plus the legacy cycle engine as
the absolute baseline.  The reproducible shape: restricted DAM ~ legacy;
lifting restrictions monotonically helps; unbounded is fastest.
"""

import time

import numpy as np
from conftest import report

from repro.bench import TextTable
from repro.core import FairPolicy, SequentialExecutor
from repro.sam import CsfTensor
from repro.sam.graphs import build_spmspm
from repro.sam.primitives import TimingParams
from repro.sam.tensor import random_dense
from repro.samlegacy import build_legacy_spmspm

SIZE = 20
DENSITY = 0.1  # the paper's SpMSpM sparsity
BLOCK_II = 4
TIMING = TimingParams(ii=BLOCK_II)


def tensors():
    a = random_dense(SIZE, SIZE, density=DENSITY, seed=0)
    bt = random_dense(SIZE, SIZE, density=DENSITY, seed=1)
    return a, bt


def run_legacy():
    a, bt = tensors()
    kernel = build_legacy_spmspm(
        CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(bt, "cc"), ii=BLOCK_II
    )
    kernel.run()
    return kernel.result_dense()


def run_dam(depth, policy, timeslice=None):
    a, bt = tensors()
    kernel = build_spmspm(
        CsfTensor.from_dense(a, "cc"),
        CsfTensor.from_dense(bt, "cc"),
        depth=depth,
        timing=TIMING,
    )
    if policy == "restricted":
        executor = SequentialExecutor(policy=FairPolicy(timeslice=1, boost=True))
    elif policy == "fair":
        executor = SequentialExecutor(policy=FairPolicy(timeslice=timeslice or 64))
    else:
        executor = SequentialExecutor(policy="fifo")
    executor.execute(kernel.program)
    return kernel.result_dense()


CONFIGS = [
    ("legacy cycle simulator", run_legacy),
    ("restricted DAM (depth 1, yield/op, fair)", lambda: run_dam(1, "restricted")),
    ("DAM depth 1, fifo", lambda: run_dam(1, "fifo")),
    ("DAM depth 8, fifo", lambda: run_dam(8, "fifo")),
    ("DAM depth 64, fifo", lambda: run_dam(64, "fifo")),
    ("DAM depth 8, fair", lambda: run_dam(8, "fair")),
    ("DAM unbounded, fifo", lambda: run_dam(None, "fifo")),
]


def _best_of(fn, repeats=3):
    times = []
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - start)
    return min(times), out


def test_fig11_ablation(benchmark):
    reference = None
    baseline = None
    rows = []
    for label, fn in CONFIGS:
        seconds, output = _best_of(fn)
        if reference is None:
            reference = output
        else:
            assert np.allclose(output, reference), label
        if baseline is None:
            baseline = seconds
        rows.append((label, seconds, baseline / seconds))

    table = TextTable(
        ["configuration", "real_s", "speedup_vs_legacy"],
        title=(
            "Fig. 11 (mapped): SpMSpM ablation across DAM configurations\n"
            "paper: language diff 24.8x, parallelism +87x, depth>8 ~flat, "
            "unbounded fastest"
        ),
    )
    for label, seconds, speedup in rows:
        table.add_row(label, seconds, speedup)
    report("fig11_spmspm_ablation", table.render())

    by_label = {label: speedup for label, seconds, speedup in rows}
    # Restricted DAM emulates the cycle-by-cycle baseline: same ballpark.
    assert 0.4 < by_label["restricted DAM (depth 1, yield/op, fair)"] < 4.0
    # Lifting the restrictions helps...
    assert by_label["DAM depth 8, fifo"] > by_label[
        "restricted DAM (depth 1, yield/op, fair)"
    ]
    # ...and unbounded channels (no backpressure simulation) are fastest.
    unbounded = by_label["DAM unbounded, fifo"]
    assert unbounded >= max(s for label, _, s in rows if label != "DAM unbounded, fifo") * 0.9
    benchmark.pedantic(lambda: run_dam(None, "fifo"), rounds=3, iterations=1)
