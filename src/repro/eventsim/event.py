"""Events and the ordered event queue.

The ordered event queue is the heart of every event-driven simulator — and
the scalability bottleneck the paper's event-queue-free design removes.
Events are totally ordered by (time, sequence number) so simulation is
deterministic regardless of insertion order ties.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

_event_seq = itertools.count()


class Event:
    """A scheduled delivery: ``payload`` arrives at ``component`` at ``time``."""

    __slots__ = ("time", "seq", "component", "port", "payload")

    def __init__(self, time: int, component: Any, port: str, payload: Any):
        self.time = time
        self.seq = next(_event_seq)
        self.component = component
        self.port = port
        self.payload = payload

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        return (
            f"Event(t={self.time}, {getattr(self.component, 'name', '?')}."
            f"{self.port}, {self.payload!r})"
        )


class EventQueue:
    """A binary-heap ordered event queue (the classic implementation)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self.pushes = 0
        self.pops = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self.pushes += 1

    def pop(self) -> Event:
        self.pops += 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> int | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
