"""Operations a context may yield to its executor.

A DAM context is written as a Python generator.  Each simulated operation —
enqueue, dequeue, peek, advancing local time, observing or awaiting a peer's
clock — is expressed by *yielding* a small operation object.  The executor
performs the operation (blocking the context as needed) and resumes the
generator with the operation's result.

This is the Python analog of the paper's blocking CSPT calls: in DAM-RS a
context simply calls ``channel.dequeue()`` and its OS thread blocks; here
the yield gives the executor the same suspension point, which lets a single
program run unchanged under both the cooperative sequential executor and
the one-thread-per-context executor.

Most user code never constructs these directly — the channel handles expose
builders (``sender.enqueue(x)``, ``receiver.dequeue()``) so context bodies
read naturally::

    def run(self):
        while True:
            value = yield self.input.dequeue()
            yield IncrCycles(self.initiation_interval)
            yield self.output.enqueue(value * 2)

When several ops are known *before* any of their results are needed, they
can be fused into a single yield with :class:`FusedOps` (or a plain
tuple/list of ops).  The executor runs them back to back on its inline
fast path — no scheduler round-trip between them — and resumes the
generator once with a tuple of the per-op results::

    def run(self):
        while True:
            value = yield self.input.dequeue()
            yield FusedOps(
                self.output.enqueue(value * 2),
                IncrCycles(self.initiation_interval),
            )

Fusion never changes simulated results (each constituent executes the
identical semantic transition, in order, blocking where it must); it only
removes real-time suspend/resume overhead.  See DESIGN.md §11.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .time import Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .channel import Receiver, Sender
    from .context import Context


class Op:
    """Base class for all yieldable operations."""

    __slots__ = ()


class Enqueue(Op):
    """Send ``data`` on a channel; blocks while the channel is full.

    Returns ``None``.  Blocking on a full channel advances the sender's
    local time per the response-queue semantics (local time acceleration).
    """

    __slots__ = ("sender", "data")

    def __init__(self, sender: "Sender", data: Any):
        self.sender = sender
        self.data = data

    def __repr__(self) -> str:
        return f"Enqueue({self.sender!r}, {self.data!r})"


class Dequeue(Op):
    """Remove and return the next element; blocks while the channel is empty.

    Advances the receiver's local time to the element's visibility stamp and
    emits a response so the sender observes the freed slot.  Raises
    :class:`~repro.core.errors.ChannelClosed` (thrown into the generator)
    once the channel is drained and its sender has finished.
    """

    __slots__ = ("receiver",)

    def __init__(self, receiver: "Receiver"):
        self.receiver = receiver

    def __repr__(self) -> str:
        return f"Dequeue({self.receiver!r})"


class Peek(Op):
    """Like :class:`Dequeue` but leaves the element in place (no response)."""

    __slots__ = ("receiver",)

    def __init__(self, receiver: "Receiver"):
        self.receiver = receiver

    def __repr__(self) -> str:
        return f"Peek({self.receiver!r})"


class IncrCycles(Op):
    """Advance the context's local clock by a nonnegative cycle count.

    This is how timing behaviour (initiation intervals, latencies, pipeline
    bubbles) is injected into an otherwise functional description — the
    ``time.incr_cycles(x)`` of the paper, and the knob the calibration case
    study tunes.
    """

    __slots__ = ("cycles",)

    def __init__(self, cycles: Time):
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"IncrCycles({self.cycles})"


class AdvanceTo(Op):
    """Advance the context's local clock to ``max(now, time)``."""

    __slots__ = ("time",)

    def __init__(self, time: Time):
        self.time = time

    def __repr__(self) -> str:
        return f"AdvanceTo({self.time})"


class ViewTime(Op):
    """Read a peer context's clock (Synchronization via Atomics).

    Returns a *lower bound* on the peer's simulated progress: the value may
    be stale but never overestimates.
    """

    __slots__ = ("context",)

    def __init__(self, context: "Context"):
        self.context = context

    def __repr__(self) -> str:
        return f"ViewTime({self.context!r})"


class WaitUntil(Op):
    """Block until a peer context's clock reaches ``time`` (SVP).

    Returns the peer's clock value at wakeup (``INFINITY`` if the peer
    finished).  This is the parking primitive used to compose complex
    logical units from several simpler contexts.
    """

    __slots__ = ("context", "time")

    def __init__(self, context: "Context", time: Time):
        self.context = context
        self.time = time

    def __repr__(self) -> str:
        return f"WaitUntil({self.context!r}, {self.time})"


class FusedOps(Op):
    """A batch of ops executed back to back in one scheduler entry.

    Yielding ``FusedOps(op1, op2, ...)`` (or a plain tuple/list of ops) is
    semantically identical to yielding each op in turn: constituents run
    in order, each performing exactly the state transition it would have
    performed unfused, blocking the context where the single op would
    have blocked.  The generator is resumed once, with a list of the
    per-constituent results (``None`` for ops that return nothing).
    The list is owned by the executor — for a reused ``FusedOps`` it is
    the batch's plan buffer, rewritten on the next execution — so unpack
    or index it at the yield; do not retain it across yields::

        a, b = yield FusedOps(self.in_a.dequeue(), self.in_b.dequeue())
        yield FusedOps(self.out.enqueue(a + b), IncrCycles(1))

    What fusion buys is *real* time only: one generator suspend/resume
    and one scheduler round-trip for the whole batch instead of one per
    op.  Accounting is per constituent — ``ops_executed`` and per-context
    op counts are identical to the unfused form (the batch itself is not
    an op), as are the emitted trace events and their order.

    If a constituent dequeue/peek finds its channel closed, the
    :class:`~repro.core.errors.ChannelClosed` is thrown into the
    generator at this yield point and the remaining constituents do not
    run — exactly as if the ops had been yielded separately (results of
    earlier constituents in the batch are discarded with the throw, so
    a context that needs them on wind-down should not fuse them with a
    closing dequeue).  Nesting ``FusedOps`` inside a batch is an error.
    """

    __slots__ = ("ops", "plan")

    def __init__(self, *ops: Op):
        self.ops = ops
        # Executor-compiled constituent plan (kind code + channel per
        # op), latched on first execution.  Constituents and their
        # channel bindings must not change afterwards — which the
        # pre-allocate-and-mutate-``data`` reuse idiom already requires.
        self.plan = None

    def __repr__(self) -> str:
        return f"FusedOps({', '.join(repr(op) for op in self.ops)})"
