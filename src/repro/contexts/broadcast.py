"""Broadcast: replicate one stream onto several output channels."""

from __future__ import annotations

from typing import Sequence

from ..core.channel import Receiver, Sender
from ..core.context import Context, UNSET
from ..core.errors import ChannelClosed
from ..core.ops import FusedOps, IncrCycles
from ..core.time import Time


class Broadcast(Context):
    """Copy every input element to each output channel, in order.

    A full copy is issued per initiation interval; a slow consumer on any
    branch backpressures the broadcast (and therefore every branch), just
    as a physical fan-out buffer would.
    """

    checkpoint_attrs = ("_value",)

    def __init__(
        self,
        inp: Receiver,
        outs: Sequence[Sender],
        ii: Time = 1,
        name: str | None = None,
    ):
        if not outs:
            raise ValueError("Broadcast needs at least one output")
        super().__init__(name=name)
        self.inp = inp
        self.outs = list(outs)
        self.ii = ii
        self._value = UNSET
        self.register(inp, *outs)

    def run(self):
        deq = self.inp.dequeue()
        enqs = [out.enqueue(None) for out in self.outs]
        # One fused yield per token: copy to every branch, charge the
        # initiation interval, pull the next input.
        step = FusedOps(*enqs, IncrCycles(self.ii), deq)
        try:
            if self._value is UNSET:
                self._value = yield deq
            while True:
                for enq in enqs:
                    enq.data = self._value
                self._value = (yield step)[-1]
        except ChannelClosed:
            return
