"""Streaming attention building blocks (the Fig. 4 computation graphs).

The pipelines are *dense* row-major streams: each context knows the
sequence length N, so no control tokens are needed — position within the
row is counted.  Each block charges one initiation interval per element
(``params.ii``), matching the abstract dataflow hardware model of [51]:
contexts map to compute units, channels to buffers, and pipeline latencies
live on channel visibility stamps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.channel import Receiver, Sender
from ..core.context import Context
from ..core.ops import IncrCycles
from ..core.time import Time


@dataclass(frozen=True)
class AttentionParams:
    """Shared configuration for an attention pipeline."""

    seq_len: int
    head_dim: int
    ii: Time = 1

    @property
    def scale(self) -> float:
        return 1.0 / math.sqrt(self.head_dim)


class ScoreProducer(Context):
    """The QK unit: emits s_ij = (q_i . k_j) / sqrt(d), row-major.

    ``ii`` defaults to the head dimension: one multiply-accumulate per
    cycle, so a d-element dot product initiates every d cycles.  This is
    the abstract hardware model's MAC-limited unit — and the source of
    the idle time DAM's local time acceleration skips (Fig. 5/6).
    """

    def __init__(
        self,
        out: Sender,
        q: np.ndarray,
        k: np.ndarray,
        params: AttentionParams,
        ii: Time | None = None,
        name=None,
    ):
        super().__init__(name=name or "qk_unit")
        self.out = out
        self.q = np.asarray(q, dtype=np.float64)
        self.k = np.asarray(k, dtype=np.float64)
        self.params = params
        self.ii = params.ii if ii is None else ii
        self.register(out)

    def run(self):
        params = self.params
        ii = self.ii
        for i in range(params.seq_len):
            q_row = self.q[i]
            for j in range(params.seq_len):
                score = float(q_row @ self.k[j]) * params.scale
                yield self.out.enqueue(score)
                yield IncrCycles(ii)


class ExpUnit(Context):
    """Elementwise exp."""

    def __init__(self, inp: Receiver, out: Sender, params: AttentionParams, name=None):
        super().__init__(name=name or "exp_unit")
        self.inp = inp
        self.out = out
        self.params = params
        self.register(inp, out)

    def run(self):
        total = self.params.seq_len * self.params.seq_len
        ii = self.params.ii
        for _ in range(total):
            value = yield self.inp.dequeue()
            yield self.out.enqueue(math.exp(value))
            yield IncrCycles(ii)


class RowSum(Context):
    """Sums each row of N elements; one sum out per row."""

    def __init__(self, inp: Receiver, out: Sender, params: AttentionParams, name=None):
        super().__init__(name=name or "row_sum")
        self.inp = inp
        self.out = out
        self.params = params
        self.register(inp, out)

    def run(self):
        n = self.params.seq_len
        ii = self.params.ii
        for _ in range(n):
            total = 0.0
            for _ in range(n):
                value = yield self.inp.dequeue()
                total += value
                yield IncrCycles(ii)
            yield self.out.enqueue(total)


class Divide(Context):
    """a_ij = e_ij / rowsum_i: re-reads the buffered exp row (channel C)."""

    def __init__(
        self,
        e_buf: Receiver,
        row_sums: Receiver,
        out: Sender,
        params: AttentionParams,
        name=None,
    ):
        super().__init__(name=name or "divide")
        self.e_buf = e_buf
        self.row_sums = row_sums
        self.out = out
        self.params = params
        self.register(e_buf, row_sums, out)

    def run(self):
        n = self.params.seq_len
        ii = self.params.ii
        for _ in range(n):
            denominator = yield self.row_sums.dequeue()
            for _ in range(n):
                numerator = yield self.e_buf.dequeue()
                yield self.out.enqueue(numerator / denominator)
                yield IncrCycles(ii)


class WeightedVSum(Context):
    """o_i = sum_j w_ij * v_j for the incoming weight stream."""

    def __init__(self, inp: Receiver, out: Sender, v: np.ndarray, params: AttentionParams, name=None):
        super().__init__(name=name or "av_unit")
        self.inp = inp
        self.out = out
        self.v = np.asarray(v, dtype=np.float64)
        self.params = params
        self.register(inp, out)

    def run(self):
        n = self.params.seq_len
        ii = self.params.ii
        for _ in range(n):
            accumulator = np.zeros(self.params.head_dim)
            for j in range(n):
                weight = yield self.inp.dequeue()
                accumulator = accumulator + weight * self.v[j]
                yield IncrCycles(ii)
            yield self.out.enqueue(accumulator)


class RunningSum(Context):
    """The extra context of Fig. 4b: running numerator and denominator.

    Consumes the exp stream once, accumulating both the weighted-V
    numerator vector and the scalar denominator, and emits the pair per
    row — no row buffering anywhere, so O(1) channel depth suffices.
    """

    def __init__(self, inp: Receiver, out: Sender, v: np.ndarray, params: AttentionParams, name=None):
        super().__init__(name=name or "running_sum")
        self.inp = inp
        self.out = out
        self.v = np.asarray(v, dtype=np.float64)
        self.params = params
        self.register(inp, out)

    def run(self):
        n = self.params.seq_len
        ii = self.params.ii
        for _ in range(n):
            numerator = np.zeros(self.params.head_dim)
            denominator = 0.0
            for j in range(n):
                value = yield self.inp.dequeue()
                numerator = numerator + value * self.v[j]
                denominator += value
                yield IncrCycles(ii)
            yield self.out.enqueue((numerator, denominator))


class Finalize(Context):
    """o_i = numerator / denominator (Fig. 4b's output divide)."""

    def __init__(self, inp: Receiver, out: Sender, params: AttentionParams, name=None):
        super().__init__(name=name or "finalize")
        self.inp = inp
        self.out = out
        self.params = params
        self.register(inp, out)

    def run(self):
        ii = self.params.ii
        for _ in range(self.params.seq_len):
            numerator, denominator = yield self.inp.dequeue()
            yield self.out.enqueue(numerator / denominator)
            yield IncrCycles(ii)


class RowCollector(Context):
    """Gathers the output rows into a matrix."""

    def __init__(self, inp: Receiver, params: AttentionParams, name=None):
        super().__init__(name=name or "out_sink")
        self.inp = inp
        self.params = params
        self.rows: list[np.ndarray] = []
        self.register(inp)

    def run(self):
        for _ in range(self.params.seq_len):
            row = yield self.inp.dequeue()
            self.rows.append(np.asarray(row))

    def result(self) -> np.ndarray:
        return np.stack(self.rows)
