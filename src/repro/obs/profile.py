"""Post-run performance attribution: critical path, blocked time, epochs.

The merged trace already answers *what happened*; this module answers
*why the run took as long as it did*.  Three artifacts come out of one
pass over the events:

* **Critical path** — the longest dependency chain of
  ``(context op -> channel delivery -> context op)`` edges bounding
  ``finish_time``.  The walk starts at the context that determines the
  makespan and moves backwards through simulated time: a dequeue that
  advanced the local clock jumps to the enqueue that produced the value
  (stamp = sender time + latency), a backpressured enqueue jumps to the
  dequeue that freed the slot (response = dequeue time + resp latency),
  and everything else charges the segment to the context's own compute.
  The segments tile ``[0, finish_time]`` exactly — each iteration emits
  the interval between the new and old cursor — so their durations sum
  to the makespan by construction (the telescoping invariant the CLI
  asserts).

* **Blocked-time accounting** — every unit of every context's local
  time is attributed to one of four categories: ``compute`` (advance /
  non-waiting ops), ``blocked_on_dequeue`` (starvation: the stamp of the
  value consumed was later than the local clock — includes channel
  delivery latency), ``blocked_on_enqueue`` (backpressure: a bounded
  channel's response advanced the sender), or ``overhead`` (residual the
  path walk could not attribute; zero in well-formed traces).  Reported
  per context and per channel.

* **Utilization timeline** — activity binned into fixed-width epochs:
  per epoch, the simulated time all contexts spent computing vs blocked,
  and the resulting utilization fraction.  Feeds the Perfetto counter
  track in :mod:`repro.obs.export`.

Because the trace is executor-independent (the obs suite's golden
property), everything computed here is too: sequential, threaded and
process runs of the same program produce bit-identical profiles.

Known limitation: ``WaitUntil`` does not advance the waiter's local
clock, so time spent waiting on a peer clock surfaces as the *next*
op's span (usually compute), not as a blocked category of its own.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.time import INFINITY, Time
from .events import TraceEvent
from .metrics import Histogram
from .trace import TraceCollector

COMPUTE = "compute"
BLOCKED_ON_DEQUEUE = "blocked_on_dequeue"
BLOCKED_ON_ENQUEUE = "blocked_on_enqueue"
OVERHEAD = "overhead"
CATEGORIES = (COMPUTE, BLOCKED_ON_DEQUEUE, BLOCKED_ON_ENQUEUE, OVERHEAD)

#: Event kinds the analyzer understands; anything else (supervisor crash
#: markers, future kinds) is ignored rather than misattributed.
_KINDS = {"enqueue", "dequeue", "peek", "advance", "finish"}

DEFAULT_EPOCHS = 32
SCHEMA_VERSION = 1


def channel_meta_for(channels: Iterable[Any]) -> dict[str, dict[str, Any]]:
    """Capacity/latency metadata the analyzer uses for precise pairing.

    Executors attach this to the run's :class:`~repro.obs.Observability`
    and the exporter embeds it under ``otherData.channels`` so a profile
    recomputed from an exported trace file pairs ops exactly the same
    way as one computed in-process.
    """
    meta: dict[str, dict[str, Any]] = {}
    for channel in channels:
        meta[channel.name] = {
            "capacity": getattr(channel, "capacity", None),
            "latency": getattr(channel, "latency", None),
            "resp_latency": getattr(channel, "resp_latency", None),
        }
    return meta


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path: ``[start, end]`` attributed to
    ``category`` on ``context`` (and ``channel`` for blocked segments)."""

    category: str
    context: str
    channel: str | None
    start: Time
    end: Time

    @property
    def duration(self) -> Time:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "category": self.category,
            "context": self.context,
            "channel": self.channel,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PathSegment":
        return cls(
            category=data["category"],
            context=data["context"],
            channel=data.get("channel"),
            start=data["start"],
            end=data["end"],
        )


@dataclass
class ProfileReport:
    """The full attribution artifact; ``to_dict`` is what lands in
    ``RunSummary.profile`` and in exported/benchmark JSON."""

    finish_time: Time
    segments: list[PathSegment] = field(default_factory=list)
    attribution: dict[str, Any] = field(default_factory=dict)
    timeline: dict[str, Any] = field(default_factory=dict)
    segment_quantiles: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------

    def path_total(self) -> Time:
        return sum(seg.duration for seg in self.segments)

    def by_category(self) -> dict[str, Time]:
        totals = {cat: 0 for cat in CATEGORIES}
        for seg in self.segments:
            totals[seg.category] = totals.get(seg.category, 0) + seg.duration
        return totals

    def by_context(self) -> dict[str, Time]:
        totals: dict[str, Time] = {}
        for seg in self.segments:
            totals[seg.context] = totals.get(seg.context, 0) + seg.duration
        return totals

    def by_channel(self) -> dict[str, Time]:
        totals: dict[str, Time] = {}
        for seg in self.segments:
            if seg.channel is not None:
                totals[seg.channel] = totals.get(seg.channel, 0) + seg.duration
        return totals

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "finish_time": self.finish_time,
            "critical_path": {
                "segments": [seg.to_dict() for seg in self.segments],
                "total": self.path_total(),
                "by_category": self.by_category(),
                "by_context": self.by_context(),
                "by_channel": self.by_channel(),
            },
            "attribution": self.attribution,
            "timeline": self.timeline,
            "segment_quantiles": self.segment_quantiles,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProfileReport":
        path = data.get("critical_path", {})
        return cls(
            finish_time=data.get("finish_time", 0),
            segments=[
                PathSegment.from_dict(seg) for seg in path.get("segments", [])
            ],
            attribution=dict(data.get("attribution", {})),
            timeline=dict(data.get("timeline", {})),
            segment_quantiles=dict(data.get("segment_quantiles", {})),
        )

    # ------------------------------------------------------------------
    # Human rendering.
    # ------------------------------------------------------------------

    def describe(self, max_segments: int = 40) -> str:
        lines = [
            f"critical path: {len(self.segments)} segment(s), "
            f"finish_time={self.finish_time}"
        ]
        shown = self.segments[:max_segments]
        for seg in shown:
            where = f" via {seg.channel}" if seg.channel is not None else ""
            lines.append(
                f"  [{seg.start} .. {seg.end}] {seg.category:<19} "
                f"{seg.context}{where} (dur={seg.duration})"
            )
        if len(self.segments) > len(shown):
            lines.append(f"  ... {len(self.segments) - len(shown)} more segment(s)")
        cats = self.by_category()
        lines.append(
            "by category: "
            + ", ".join(f"{cat}={cats.get(cat, 0)}" for cat in CATEGORIES)
        )
        lines.append(
            f"path sum={self.path_total()} finish_time={self.finish_time}"
        )
        if self.segment_quantiles:
            quant = self.segment_quantiles
            lines.append(
                "segment durations: "
                + ", ".join(f"{k}={v:.6g}" for k, v in sorted(quant.items()))
            )
        epochs = self.timeline.get("epochs") or []
        if epochs:
            utils = [e["utilization"] for e in epochs]
            lines.append(
                f"utilization over {len(epochs)} epoch(s): "
                f"mean={sum(utils) / len(utils):.3f}, "
                f"min={min(utils):.3f}, max={max(utils):.3f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace indexing.
# ----------------------------------------------------------------------


class _Index:
    """Per-context streams plus per-channel FIFO op orders."""

    def __init__(self, events: Iterable[TraceEvent]):
        streams: dict[str, list[TraceEvent]] = {}
        for event in events:
            if event.kind not in _KINDS or event.time == INFINITY:
                continue
            streams.setdefault(event.context, []).append(event)
        for stream in streams.values():
            stream.sort(key=lambda e: e.seq)
        self.streams = streams
        # FIFO order per channel: channels have one sender and one
        # receiver, so each side's stream order *is* the channel order.
        self.chan_enq: dict[str, list[tuple[str, int]]] = {}
        self.chan_deq: dict[str, list[tuple[str, int]]] = {}
        self.enq_times: dict[str, list[Time]] = {}
        self.deq_times: dict[str, list[Time]] = {}
        #: (context, idx) of an op -> its FIFO ordinal on its channel.
        self.enq_ord: dict[tuple[str, int], int] = {}
        self.deq_ord: dict[tuple[str, int], int] = {}
        #: (context, idx) of a peek -> ordinal of the dequeue that will
        #: consume the peeked element (= dequeues issued so far).
        self.peek_ord: dict[tuple[str, int], int] = {}
        for name in sorted(streams):
            deq_seen: dict[str, int] = {}
            for idx, event in enumerate(streams[name]):
                if event.channel is None:
                    continue
                key = (name, idx)
                if event.kind == "enqueue":
                    order = self.chan_enq.setdefault(event.channel, [])
                    self.enq_ord[key] = len(order)
                    order.append(key)
                    self.enq_times.setdefault(event.channel, []).append(
                        event.time
                    )
                elif event.kind == "dequeue":
                    order = self.chan_deq.setdefault(event.channel, [])
                    self.deq_ord[key] = len(order)
                    order.append(key)
                    self.deq_times.setdefault(event.channel, []).append(
                        event.time
                    )
                    deq_seen[event.channel] = deq_seen.get(event.channel, 0) + 1
                elif event.kind == "peek":
                    self.peek_ord[key] = deq_seen.get(event.channel, 0)

    def total_events(self) -> int:
        return sum(len(s) for s in self.streams.values())

    def makespan_start(self) -> tuple[str, int, Time] | None:
        """(context, last index, finish time) of the makespan context."""
        best: tuple[str, int, Time] | None = None
        for name in sorted(self.streams):
            stream = self.streams[name]
            if not stream:
                continue
            last = stream[-1].time
            if best is None or last > best[2]:
                best = (name, len(stream) - 1, last)
        return best


# ----------------------------------------------------------------------
# The backward walk.
# ----------------------------------------------------------------------


def _category_of(event: TraceEvent) -> str:
    if event.channel is None:
        return COMPUTE
    if event.kind in ("dequeue", "peek"):
        return BLOCKED_ON_DEQUEUE
    if event.kind == "enqueue":
        return BLOCKED_ON_ENQUEUE
    return COMPUTE


def _producer_of(
    index: _Index,
    event: TraceEvent,
    key: tuple[str, int],
    channel_meta: Mapping[str, Mapping[str, Any]],
) -> tuple[str, int] | None:
    """The enqueue whose value this dequeue/peek consumed."""
    channel = event.channel
    enqueues = index.chan_enq.get(channel)
    if not enqueues:
        return None
    times = index.enq_times[channel]
    latency = (channel_meta.get(channel) or {}).get("latency")
    if latency is not None:
        # stamp = sender_time + latency; exact match wins (rightmost, so
        # zero-latency self-loops resolve deterministically).
        target = event.time - latency
        pos = bisect_right(times, target) - 1
        if pos >= 0 and times[pos] == target:
            return enqueues[pos]
    ordinal = (
        index.deq_ord.get(key)
        if event.kind == "dequeue"
        else index.peek_ord.get(key)
    )
    if ordinal is not None and ordinal < len(enqueues):
        return enqueues[ordinal]
    pos = bisect_right(times, event.time) - 1
    return enqueues[pos] if pos >= 0 else None


def _unblocker_of(
    index: _Index,
    event: TraceEvent,
    key: tuple[str, int],
    channel_meta: Mapping[str, Mapping[str, Any]],
) -> tuple[str, int] | None:
    """The dequeue whose response freed the slot this enqueue waited on."""
    channel = event.channel
    dequeues = index.chan_deq.get(channel)
    if not dequeues:
        return None
    times = index.deq_times[channel]
    meta = channel_meta.get(channel) or {}
    resp_latency = meta.get("resp_latency")
    if resp_latency is not None:
        target = event.time - resp_latency
        pos = bisect_right(times, target) - 1
        if pos >= 0 and times[pos] == target:
            return dequeues[pos]
    capacity = meta.get("capacity")
    ordinal = index.enq_ord.get(key)
    if capacity is not None and ordinal is not None:
        pos = ordinal - capacity
        if 0 <= pos < len(dequeues):
            return dequeues[pos]
    pos = bisect_right(times, event.time) - 1
    return dequeues[pos] if pos >= 0 else None


def _critical_path(
    index: _Index,
    finish_time: Time,
    start: tuple[str, int],
    channel_meta: Mapping[str, Mapping[str, Any]],
) -> list[PathSegment]:
    """Walk backwards from the makespan event, tiling ``[0, finish_time]``.

    Invariant: the current event's time equals ``cursor`` (both jumps and
    step-backs preserve it), and every iteration appends exactly the
    segment ``[new_cursor, cursor]`` — so the result telescopes to the
    makespan.
    """
    segments: list[PathSegment] = []
    visited: set[tuple[str, int]] = set()
    ctx, idx = start
    cursor = finish_time
    limit = 4 * index.total_events() + 16

    def emit(category: str, context: str, channel: str | None, lo: Time) -> None:
        if cursor > lo:
            segments.append(PathSegment(category, context, channel, lo, cursor))

    steps = 0
    while cursor > 0 and idx >= 0 and steps < limit:
        steps += 1
        stream = index.streams[ctx]
        event = stream[idx]
        prev_time = stream[idx - 1].time if idx > 0 else 0
        key = (ctx, idx)
        waited = cursor > prev_time
        first_visit = key not in visited
        visited.add(key)
        target: tuple[str, int] | None = None
        if waited and first_visit and event.channel is not None:
            if event.kind in ("dequeue", "peek"):
                target = _producer_of(index, event, key, channel_meta)
            elif event.kind == "enqueue":
                target = _unblocker_of(index, event, key, channel_meta)
        if target is not None:
            t_ctx, t_idx = target
            t_time = index.streams[t_ctx][t_idx].time
            # Only jump when it makes progress toward t=0; a malformed
            # or already-walked target degrades to a step-back instead.
            if t_time < cursor and (t_ctx, t_idx) not in visited:
                emit(_category_of(event), ctx, event.channel, t_time)
                ctx, idx, cursor = t_ctx, t_idx, t_time
                continue
            if t_time == cursor and (t_ctx, t_idx) not in visited:
                # Zero-latency edge: follow it without emitting a segment.
                ctx, idx = t_ctx, t_idx
                continue
        # Step back within this context.
        if waited:
            emit(_category_of(event), ctx, event.channel, prev_time)
        cursor = min(cursor, prev_time)
        idx -= 1
    if cursor > 0:
        # Residual the walk could not attribute (malformed trace or the
        # step guard tripping on a pathological cycle).
        segments.append(PathSegment(OVERHEAD, ctx, None, 0, cursor))
    segments.reverse()
    return segments


# ----------------------------------------------------------------------
# Whole-run attribution and the epoch timeline.
# ----------------------------------------------------------------------


def _attribute(
    index: _Index, finish_time: Time, epochs: int
) -> tuple[dict[str, Any], dict[str, Any]]:
    per_context: dict[str, dict[str, Any]] = {}
    per_channel: dict[str, dict[str, Time]] = {}
    n_contexts = len(index.streams)
    width = finish_time / epochs if finish_time > 0 and epochs > 0 else 0
    bins = [[0.0, 0.0] for _ in range(epochs)] if width else []

    def bin_interval(lo: Time, hi: Time, slot: int) -> None:
        if not width or hi <= lo:
            return
        first = min(int(lo / width), epochs - 1)
        last = min(int(hi / width), epochs - 1)
        for pos in range(first, last + 1):
            left = max(lo, pos * width)
            right = min(hi, (pos + 1) * width)
            if right > left:
                bins[pos][slot] += right - left

    for name in sorted(index.streams):
        totals = {cat: 0 for cat in CATEGORIES}
        prev = 0
        for event in index.streams[name]:
            delta = event.time - prev
            if delta > 0:
                category = _category_of(event)
                totals[category] += delta
                if event.channel is not None and category != COMPUTE:
                    chan = per_channel.setdefault(
                        event.channel,
                        {BLOCKED_ON_DEQUEUE: 0, BLOCKED_ON_ENQUEUE: 0},
                    )
                    chan[category] = chan.get(category, 0) + delta
                bin_interval(prev, event.time, 0 if category == COMPUTE else 1)
            prev = event.time
        totals["finish_time"] = prev
        totals["idle"] = finish_time - prev
        per_context[name] = totals

    timeline: dict[str, Any] = {"epoch_width": width, "epochs": []}
    if width:
        denominator = width * max(n_contexts, 1)
        timeline["epochs"] = [
            {
                "start": pos * width,
                "active": active,
                "blocked": blocked,
                "utilization": round(active / denominator, 6),
            }
            for pos, (active, blocked) in enumerate(bins)
        ]
    attribution = {
        "per_context": per_context,
        "per_channel": {
            name: per_channel[name] for name in sorted(per_channel)
        },
    }
    return attribution, timeline


# ----------------------------------------------------------------------
# Entry points.
# ----------------------------------------------------------------------


def profile_trace(
    trace: "TraceCollector | Iterable[TraceEvent]",
    channel_meta: Mapping[str, Mapping[str, Any]] | None = None,
    epochs: int = DEFAULT_EPOCHS,
) -> ProfileReport:
    """Analyze a trace (collector or bare event iterable) into a
    :class:`ProfileReport`."""
    events = (
        trace.events if isinstance(trace, TraceCollector) else list(trace)
    )
    index = _Index(events)
    meta = channel_meta or {}
    start = index.makespan_start()
    if start is None:
        return ProfileReport(finish_time=0)
    ctx, idx, finish_time = start
    segments = (
        _critical_path(index, finish_time, (ctx, idx), meta)
        if finish_time > 0
        else []
    )
    attribution, timeline = _attribute(index, finish_time, epochs)
    histogram = Histogram()
    for seg in segments:
        histogram.observe(seg.duration)
    quantiles = (
        {
            "p50": histogram.quantile(0.5),
            "p90": histogram.quantile(0.9),
            "max": histogram.max or 0.0,
        }
        if histogram.count
        else {}
    )
    return ProfileReport(
        finish_time=finish_time,
        segments=segments,
        attribution=attribution,
        timeline=timeline,
        segment_quantiles=quantiles,
    )


def events_from_chrome_trace(
    document: Mapping[str, Any],
) -> tuple[list[TraceEvent], dict[str, dict[str, Any]]]:
    """Rebuild trace events (and channel metadata, when embedded) from an
    exported Chrome trace-event JSON document."""
    tid_names: dict[Any, str] = {}
    for raw in document.get("traceEvents", []):
        if raw.get("ph") == "M" and raw.get("name") == "thread_name":
            tid_names[raw.get("tid")] = raw.get("args", {}).get("name", "")
    events: list[TraceEvent] = []
    for raw in document.get("traceEvents", []):
        if raw.get("ph") != "X":
            continue
        args = raw.get("args", {})
        context = tid_names.get(raw.get("tid"), str(raw.get("tid")))
        kind = str(raw.get("name", "")).split(" ", 1)[0]
        time = raw.get("ts", 0) + raw.get("dur", 0)
        events.append(
            TraceEvent(
                context=context,
                kind=kind,
                channel=args.get("channel"),
                time=time,
                payload=args.get("payload"),
                seq=args.get("seq", 0),
            )
        )
    channels = (document.get("otherData") or {}).get("channels") or {}
    return events, channels


def resolve_profile(document: Mapping[str, Any]) -> dict[str, Any] | None:
    """Extract (or recompute) a profile dict from any known JSON shape:
    a Chrome trace export, a bare profile dict, or a BENCH payload with a
    ``profile`` section."""
    if "traceEvents" in document:
        events, channels = events_from_chrome_trace(document)
        if events:
            return profile_trace(events, channel_meta=channels).to_dict()
        stored = (document.get("otherData") or {}).get("profile")
        return stored
    if "critical_path" in document:
        return dict(document)
    profile = document.get("profile")
    if isinstance(profile, Mapping):
        return dict(profile)
    return None


# ----------------------------------------------------------------------
# Run diffing.
# ----------------------------------------------------------------------


def diff_profiles(
    base: Mapping[str, Any],
    other: Mapping[str, Any],
    tolerance: float = 3.0,
    abs_floor: float = 1.0,
) -> dict[str, Any]:
    """Compare two profile dicts; a metric regresses when the new value
    exceeds ``tolerance`` times the baseline *and* grew by more than
    ``abs_floor`` simulated cycles (so zero/noise baselines don't trip).
    """
    rows: list[dict[str, Any]] = []

    def compare(metric: str, base_value: Any, other_value: Any) -> None:
        base_value = float(base_value or 0)
        other_value = float(other_value or 0)
        regression = (
            other_value > base_value * tolerance
            and other_value - base_value > abs_floor
        )
        if base_value:
            ratio = other_value / base_value
        else:
            ratio = 1.0 if not other_value else None  # None = new vs zero base
        rows.append(
            {
                "metric": metric,
                "base": base_value,
                "other": other_value,
                "ratio": ratio,
                "regression": regression,
            }
        )

    compare("finish_time", base.get("finish_time"), other.get("finish_time"))
    base_cats = (base.get("critical_path") or {}).get("by_category") or {}
    other_cats = (other.get("critical_path") or {}).get("by_category") or {}
    for category in CATEGORIES:
        compare(
            f"critical_path.{category}",
            base_cats.get(category),
            other_cats.get(category),
        )
    base_chans = (base.get("critical_path") or {}).get("by_channel") or {}
    other_chans = (other.get("critical_path") or {}).get("by_channel") or {}
    for channel in sorted(set(base_chans) | set(other_chans)):
        compare(
            f"critical_path.channel.{channel}",
            base_chans.get(channel),
            other_chans.get(channel),
        )
    regressions = [row for row in rows if row["regression"]]
    return {
        "tolerance": tolerance,
        "rows": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def describe_diff(diff: Mapping[str, Any]) -> str:
    lines = [
        f"profile diff (tolerance {diff.get('tolerance', 0):g}x): "
        + ("OK" if diff.get("ok") else "REGRESSIONS")
    ]
    for row in diff.get("rows", []):
        ratio = row.get("ratio")
        ratio_text = f"{ratio:.3f}x" if ratio is not None else "new"
        flag = "  !! " if row.get("regression") else "     "
        lines.append(
            f"{flag}{row['metric']}: {row['base']:g} -> {row['other']:g} "
            f"({ratio_text})"
        )
    regressions = diff.get("regressions") or []
    if regressions:
        names = ", ".join(row["metric"] for row in regressions)
        lines.append(f"regressed section(s): {names}")
    return "\n".join(lines)
