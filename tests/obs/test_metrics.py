"""Metrics registry semantics and the executor folding discipline."""

from repro import Observability, ProgramBuilder
from repro.core.channel import Channel
from repro.core.time import TimeCell
from repro.contexts import Collector, RampSource, UnaryFunction
from repro.obs import MetricsRegistry


class TestRegistry:
    def test_counter_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.counter("ops").inc(4)
        assert registry.snapshot()["counters"]["ops"] == 5

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        registry.counter("parks", context="a").inc()
        registry.counter("parks", context="b").inc(2)
        counters = registry.snapshot()["counters"]
        assert counters["parks{context=a}"] == 1
        assert counters["parks{context=b}"] == 2

    def test_gauge_set_max_keeps_peak(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set_max(3)
        gauge.set_max(1)
        gauge.set_max(7)
        assert registry.snapshot()["gauges"]["depth"] == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in [1.0, 2.0, 3.0]:
            hist.observe(value)
        summary = registry.snapshot()["histograms"]["latency"]
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_histogram_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0
        # Log-bucketed: the median lands in the right octave, not exactly
        # at 50, but well within a bucket width of it.
        assert 32.0 <= hist.quantile(0.5) <= 64.0
        assert hist.quantile(0.99) <= 100.0
        assert hist.quantile(0.5) <= hist.quantile(0.9)

    def test_histogram_quantile_edge_cases(self):
        import pytest

        registry = MetricsRegistry()
        hist = registry.histogram("empty")
        assert hist.quantile(0.5) == 0.0  # no observations yet
        hist.observe(7.0)
        assert hist.quantile(0.0) == hist.quantile(1.0) == 7.0
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_histogram_quantile_nonpositive_values(self):
        registry = MetricsRegistry()
        hist = registry.histogram("gaps")
        for value in [0.0, 0.0, 5.0]:
            hist.observe(value)
        # Non-positive observations land in the underflow bucket and are
        # represented by the recorded minimum.
        assert hist.quantile(0.25) == 0.0
        assert hist.quantile(1.0) == 5.0

    def test_to_json_round_trips(self):
        import json

        registry = MetricsRegistry()
        registry.counter("ops").inc(3)
        registry.gauge("depth", channel="c").set(4)
        assert json.loads(registry.to_json())["counters"]["ops"] == 3


class TestAlwaysOnOccupancy:
    """Satellite regression: max_real_occupancy no longer needs the
    enable_profiling toggle and is consistent on every enqueue path."""

    def test_tracked_without_profiling(self):
        ch = Channel(capacity=8)
        sender = TimeCell()
        for i in range(3):
            ch.do_enqueue(sender, i)
        assert ch.stats.max_real_occupancy == 3
        ch.do_dequeue(TimeCell())
        ch.do_enqueue(sender, 99)
        assert ch.stats.max_real_occupancy == 3  # peak, not current

    def test_void_enqueue_path_consistent(self):
        ch = Channel(capacity=8)
        sender = TimeCell()
        ch.do_enqueue(sender, "a")
        ch.do_enqueue(sender, "b")
        ch.close_receiver()  # channel becomes void, queue cleared
        ch.do_enqueue(sender, "c")  # discarded
        assert ch.stats.enqueues == 3
        assert ch.stats.max_real_occupancy == 2
        assert ch.real_occupancy() == 0


def run_pipeline(executor, n=6):
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(3, name="raw")
    s2, r2 = builder.bounded(3, name="doubled")
    builder.add(RampSource(s1, n, name="src"))
    builder.add(UnaryFunction(r1, s2, lambda x: 2 * x, name="double"))
    builder.add(Collector(r2, name="sink"))
    obs = Observability(trace=False)
    summary = builder.build().run(executor=executor, obs=obs)
    return obs, summary


class TestRunMetrics:
    def test_summary_carries_snapshot(self):
        _, summary = run_pipeline("sequential")
        assert summary.metrics is not None
        assert set(summary.metrics) == {"counters", "gauges", "histograms"}

    def test_channel_metrics_folded(self):
        _, summary = run_pipeline("sequential")
        counters = summary.metrics["counters"]
        gauges = summary.metrics["gauges"]
        assert counters["channel_enqueues{channel=raw}"] == 6
        assert counters["channel_dequeues{channel=raw}"] == 6
        assert 1 <= gauges["channel_max_occupancy{channel=raw}"] <= 3

    def test_channel_metrics_identical_across_executors(self):
        """Simulated-state metrics are executor-independent."""
        _, seq = run_pipeline("sequential")
        _, thr = run_pipeline("threaded")
        pick = lambda snap: {
            key: value
            for key, value in snap["counters"].items()
            if key.startswith("channel_")
        }
        assert pick(seq.metrics) == pick(thr.metrics)
        assert (
            seq.metrics["gauges"]["context_finish_time{context=sink}"]
            == thr.metrics["gauges"]["context_finish_time{context=sink}"]
        )

    def test_per_context_ops_and_wall(self):
        _, summary = run_pipeline("sequential")
        counters = summary.metrics["counters"]
        gauges = summary.metrics["gauges"]
        assert counters["context_ops{context=src}"] > 0
        assert gauges["context_wall_seconds{context=src}"] >= 0.0
        wall_dist = summary.metrics["histograms"]["context_wall_seconds_dist"]
        assert wall_dist["count"] == 3

    def test_threaded_records_parks(self):
        obs, summary = run_pipeline("threaded")
        counters = summary.metrics["counters"]
        parks = sum(
            value
            for key, value in counters.items()
            if key.startswith("context_parks")
        )
        # With capacity-3 channels someone must have parked at least once.
        assert parks > 0

    def test_no_obs_means_no_metrics(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 3))
        builder.add(Collector(rcv))
        summary = builder.build().run()
        assert summary.metrics is None
