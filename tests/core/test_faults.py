"""Chaos suite: crash supervision, run deadlines, the retry ladder, and
deterministic fault injection.

Every test in this module asserts the *absence of collateral damage* as
hard as it asserts the typed error: the autouse fixture verifies that no
worker process outlives its run and no ``/dev/shm/psm_*`` segment leaks,
whatever failure the test injected.
"""

import glob
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro import (
    ChannelClosed,
    DeadlockError,
    FaultInjected,
    FaultPlan,
    FunctionContext,
    IncrCycles,
    Observability,
    ProgramBuilder,
    RunConfig,
    RunTimeoutError,
    SimulationError,
    WorkerCrashError,
)
from repro.core.errors import pack_exception, unpack_exception
from repro.core.faults import StalledLane, WorkerKill

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="fork start method unavailable"
)


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture(autouse=True)
def no_leaked_resources():
    """Every test must leave zero orphan children and zero shm segments."""
    before = _shm_segments()
    yield
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children(), "worker processes leaked"
    leaked = _shm_segments() - before
    assert not leaked, f"shared memory leaked: {sorted(leaked)}"


# ----------------------------------------------------------------------
# Test programs.
# ----------------------------------------------------------------------


def _stream_program(n=400, capacity=8, pin=None):
    """prod -> cons over one bounded channel; cons accumulates a total."""
    builder = ProgramBuilder()
    snd, rcv = builder.bounded(capacity, name="ch")

    def producer():
        for value in range(n):
            yield snd.enqueue(value)
            yield IncrCycles(1)

    def consumer(ctx):
        ctx.total = 0
        while True:
            try:
                value = yield rcv.dequeue()
            except ChannelClosed:
                return
            ctx.total += value
            yield IncrCycles(1)

    prod = builder.add(FunctionContext(producer, handles=[snd], name="prod"))
    cons = builder.add(
        FunctionContext(consumer, handles=[rcv], name="cons", pass_context=True)
    )
    if pin is not None:
        builder.pin(prod, pin[0])
        builder.pin(cons, pin[1])
    return builder.build()


def _runaway_program(pin=None):
    """Two contexts that never finish (deadline tests need a run that
    would otherwise spin forever)."""
    builder = ProgramBuilder()
    snd, rcv = builder.unbounded(name="spin")

    def spinner():
        while True:
            yield snd.enqueue(1)
            yield IncrCycles(1)

    def sink():
        while True:
            yield rcv.dequeue()
            yield IncrCycles(1)

    a = builder.add(FunctionContext(spinner, handles=[snd], name="a"))
    b = builder.add(FunctionContext(sink, handles=[rcv], name="b"))
    if pin is not None:
        builder.pin(a, pin[0])
        builder.pin(b, pin[1])
    return builder.build()


def _deadlocking_program():
    """A guaranteed cyclic wait: the producer must land two records on a
    capacity-1 channel before touching the channel the consumer reads
    first, so both sides block forever."""
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(1, name="first")
    s2, r2 = builder.bounded(1, name="second")

    def producer():
        yield s1.enqueue(0)
        yield s1.enqueue(1)  # blocks: nobody drains "first" yet
        yield s2.enqueue(2)

    def consumer():
        yield r2.dequeue()  # blocks: the producer never reaches "second"
        yield r1.dequeue()

    builder.add(FunctionContext(producer, handles=[s1, s2], name="prod"))
    builder.add(FunctionContext(consumer, handles=[r1, r2], name="cons"))
    return builder.build()


def _fingerprint(program, summary):
    stats = {
        ch.name: (ch.stats.enqueues, ch.stats.dequeues)
        for ch in program.channels
    }
    total = next(c for c in program.contexts if c.name == "cons").total
    return (summary.elapsed_cycles, summary.context_times, stats, total)


def _process_config(**kwargs):
    # Stealing is disabled so cluster placement follows the pins exactly —
    # on a loaded box worker 0 would otherwise claim every cluster before
    # worker 1 is scheduled, and a kill aimed at worker 1 would never fire.
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("steal", False)
    return RunConfig(**kwargs)


# ----------------------------------------------------------------------
# Exception marshalling.
# ----------------------------------------------------------------------


class TestExceptionMarshalling:
    def _roundtrip(self, exc):
        # The packed form must itself survive the pipe's pickling.
        packed = pickle.loads(pickle.dumps(pack_exception(exc)))
        return unpack_exception(packed)

    def test_channel_closed(self):
        back = self._roundtrip(ChannelClosed("my_channel"))
        assert isinstance(back, ChannelClosed)
        assert back.channel_name == "my_channel"

    def test_deadlock_keeps_blocked_list(self):
        back = self._roundtrip(DeadlockError(["a: dequeue on x", "b: enqueue on y"]))
        assert isinstance(back, DeadlockError)
        assert back.blocked == ["a: dequeue on x", "b: enqueue on y"]

    def test_simulation_with_picklable_original(self):
        back = self._roundtrip(SimulationError("worker_ctx", ValueError("boom")))
        assert isinstance(back, SimulationError)
        assert back.context_name == "worker_ctx"
        assert isinstance(back.original, ValueError)
        assert str(back.original) == "boom"

    def test_simulation_with_unpicklable_original_demotes_to_repr(self):
        class Unpicklable(RuntimeError):
            def __init__(self):
                super().__init__("held a generator")
                self.gen = (x for x in range(3))

        back = self._roundtrip(SimulationError("ctx", Unpicklable()))
        assert isinstance(back, SimulationError)
        assert isinstance(back.original, RuntimeError)
        assert "held a generator" in str(back.original)

    def test_arbitrary_picklable_exception_survives(self):
        back = self._roundtrip(KeyError("missing"))
        assert isinstance(back, KeyError)
        assert back.args == ("missing",)

    def test_unpicklable_exception_demotes_to_typed_repr(self):
        class Opaque(Exception):
            def __init__(self):
                super().__init__("locked")
                self.lock = (x for x in range(1))

        back = self._roundtrip(Opaque())
        assert isinstance(back, RuntimeError)
        assert "Opaque" in str(back)
        assert "locked" in str(back)

    def test_fault_injected_survives(self):
        back = self._roundtrip(SimulationError("c", FaultInjected("chaos")))
        assert isinstance(back.original, FaultInjected)


# ----------------------------------------------------------------------
# The fault plan itself.
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_seeded_victim_is_deterministic(self):
        picks = {
            FaultPlan(seed=7).kill_worker(after_ops=5).resolve(4).kills[0].worker
            for _ in range(10)
        }
        assert len(picks) == 1
        assert picks.pop() in range(4)

    def test_explicit_worker_is_untouched(self):
        plan = FaultPlan().kill_worker(worker=3, after_ops=9).resolve(8)
        assert plan.kill_for(3) == WorkerKill(3, 9, signal.SIGKILL)
        assert plan.kill_for(0) is None

    def test_kill_after_checkpoints_leaves_ops_trigger_unset(self):
        plan = FaultPlan().kill_worker(worker=0, after_checkpoints=2).resolve(2)
        kill = plan.kill_for(0)
        assert kill.after_ops is None
        assert kill.after_checkpoints == 2

    def test_bare_kill_still_means_immediately(self):
        plan = FaultPlan().kill_worker(worker=1).resolve(2)
        assert plan.kill_for(1).after_ops == 0
        assert plan.kill_for(1).after_checkpoints is None

    def test_stall_lookup(self):
        plan = FaultPlan().stall_shuttle("bus", after_records=2)
        assert plan.stall_for("bus").after_records == 2
        assert plan.stall_for("other") is None

    def test_stalled_lane_dries_up(self):
        class FakeLane:
            def __init__(self):
                self.items = [1, 2, 3, 4]

            def try_push(self, obj):
                self.items.append(obj)
                return True

            def try_pop(self):
                return (True, self.items.pop(0)) if self.items else (False, None)

        lane = StalledLane(FakeLane(), after_records=2)
        assert lane.try_pop() == (True, 1)
        assert lane.try_pop() == (True, 2)
        # Wedged: records remain in the inner lane but never surface.
        assert lane.try_pop() == (False, None)
        assert lane.try_pop() == (False, None)
        assert lane.try_push(5)  # pushes still pass through


# ----------------------------------------------------------------------
# Context faults surface as SimulationError on every executor.
# ----------------------------------------------------------------------


class TestContextFault:
    @pytest.mark.parametrize("executor", ["sequential", "threaded"])
    def test_in_process_executors(self, executor):
        program = _stream_program()
        plan = FaultPlan().raise_in("prod", after_ops=10, message="chaos")
        with pytest.raises(SimulationError) as info:
            program.run(executor, config=RunConfig(faults=plan))
        assert isinstance(info.value.original, FaultInjected)
        assert "prod" in str(info.value)

    @needs_fork
    def test_process_executor(self):
        program = _stream_program(pin=(0, 1))
        plan = FaultPlan().raise_in("prod", after_ops=10, message="chaos")
        with pytest.raises(SimulationError) as info:
            program.run("process", config=_process_config(faults=plan))
        assert isinstance(info.value.original, FaultInjected)


# ----------------------------------------------------------------------
# Run deadlines.
# ----------------------------------------------------------------------


class TestDeadline:
    @pytest.mark.parametrize("executor", ["sequential", "threaded"])
    def test_runaway_run_is_aborted(self, executor):
        program = _runaway_program()
        with pytest.raises(RunTimeoutError) as info:
            program.run(executor, config=RunConfig(deadline_s=0.3))
        err = info.value
        assert err.deadline_s == 0.3
        assert err.summary is not None
        # Partial clocks: the spinners made progress before the abort.
        assert any(v for v in err.summary.context_times.values())

    @needs_fork
    def test_process_runaway_is_aborted(self):
        program = _runaway_program(pin=(0, 1))
        with pytest.raises(RunTimeoutError) as info:
            program.run("process", config=_process_config(deadline_s=0.5))
        assert info.value.summary is not None

    def test_generous_deadline_changes_nothing(self):
        reference = _stream_program()
        expected = _fingerprint(reference, reference.run())
        program = _stream_program()
        summary = program.run(config=RunConfig(deadline_s=60.0))
        assert _fingerprint(program, summary) == expected

    def test_sequential_timeout_files_stall_report(self):
        obs = Observability()
        program = _runaway_program()
        with pytest.raises(RunTimeoutError):
            program.run(config=RunConfig(deadline_s=0.2, obs=obs))
        # The runaway contexts are running, not blocked, so the report can
        # be empty — what matters is the run filed one coherent outcome.
        assert obs.metrics is not None


# ----------------------------------------------------------------------
# Crash supervision (the tentpole).
# ----------------------------------------------------------------------


@needs_fork
class TestWorkerCrash:
    def test_sigkilled_worker_surfaces_typed_error(self):
        program = _stream_program(n=50_000, pin=(0, 1))
        plan = FaultPlan().kill_worker(worker=1, after_ops=50)
        started = time.monotonic()
        with pytest.raises(WorkerCrashError) as info:
            program.run("process", config=_process_config(faults=plan))
        elapsed = time.monotonic() - started
        err = info.value
        assert err.worker == 1
        assert err.exitcode == -signal.SIGKILL
        assert "cons" in err.contexts
        assert "cons" in err.clocks
        # Detection must ride the pipe EOF / sentinel, not a long timeout:
        # well within one watchdog interval of the kill.
        assert elapsed < 5.0

    def test_crash_feeds_observability(self):
        obs = Observability()
        program = _stream_program(n=50_000, pin=(0, 1))
        plan = FaultPlan().kill_worker(worker=0, after_ops=50)
        with pytest.raises(WorkerCrashError):
            program.run("process", config=_process_config(faults=plan, obs=obs))
        assert isinstance(obs.crash_report, WorkerCrashError)
        assert obs.metrics.counter("worker_crashes").value == 1
        kinds = [event.kind for event in obs.trace.for_context("<supervisor>")]
        assert "crash" in kinds

    def test_seeded_kill_picks_some_worker(self):
        program = _stream_program(n=50_000, pin=(0, 1))
        plan = FaultPlan(seed=3).kill_worker(after_ops=0)
        with pytest.raises(WorkerCrashError) as info:
            program.run("process", config=_process_config(faults=plan))
        assert info.value.worker in (0, 1)


@needs_fork
class TestShuttleStall:
    def test_wedged_shuttle_is_a_deadlock(self):
        program = _stream_program(n=400, pin=(0, 1))
        plan = FaultPlan().stall_shuttle("ch", after_records=5)
        with pytest.raises(DeadlockError):
            program.run(
                "process",
                config=_process_config(faults=plan, deadlock_grace=0.3),
            )

    def test_wedged_shuttle_with_deadline_is_a_timeout(self):
        program = _stream_program(n=400, pin=(0, 1))
        plan = FaultPlan().stall_shuttle("ch", after_records=5)
        with pytest.raises(RunTimeoutError) as info:
            program.run(
                "process",
                config=_process_config(faults=plan, deadline_s=0.5),
            )
        assert info.value.summary is not None


# ----------------------------------------------------------------------
# The retry ladder.
# ----------------------------------------------------------------------


class TestRetryLadder:
    @needs_fork
    def test_crash_falls_back_and_result_is_bit_identical(self):
        reference = _stream_program(n=300)
        expected = _fingerprint(reference, reference.run())

        obs = Observability()
        program = _stream_program(n=300, pin=(0, 1))
        plan = FaultPlan().kill_worker(worker=0, after_ops=50)
        summary = program.run(
            "process",
            config=_process_config(faults=plan, fallback="sequential", obs=obs),
        )
        assert [a["outcome"] for a in summary.attempts] == ["crashed", "ok"]
        assert summary.attempts[0]["executor"] == "process"
        assert summary.attempts[1]["executor"] == "sequential"
        assert obs.metrics.counter("run_retries").value == 1
        assert _fingerprint(program, summary) == expected

    @needs_fork
    def test_default_ladder_steps_to_threaded_first(self):
        program = _stream_program(n=300, pin=(0, 1))
        plan = FaultPlan().kill_worker(worker=0, after_ops=50)
        summary = program.run(
            "process", config=_process_config(faults=plan, fallback=True)
        )
        assert [a["outcome"] for a in summary.attempts] == ["crashed", "ok"]
        assert summary.attempts[1]["executor"] == "threaded"

    def test_timeout_is_retried_and_attempts_ride_the_error(self):
        program = _runaway_program()
        with pytest.raises(RunTimeoutError) as info:
            program.run(
                config=RunConfig(deadline_s=0.2, fallback="sequential")
            )
        attempts = info.value.attempts
        assert [a["outcome"] for a in attempts] == ["timeout", "timeout"]
        assert all(a["executor"] == "sequential" for a in attempts)

    def test_deadlock_is_never_retried(self):
        obs = Observability()
        program = _deadlocking_program()
        with pytest.raises(DeadlockError):
            program.run(config=RunConfig(fallback="sequential", obs=obs))
        # A deterministic simulation outcome must not consume a retry.
        assert obs.metrics.counter("run_retries").value == 0

    def test_clean_run_records_single_attempt(self):
        program = _stream_program(n=100)
        summary = program.run(config=RunConfig(fallback="sequential"))
        assert [a["outcome"] for a in summary.attempts] == ["ok"]

    def test_reset_restores_pristine_state(self):
        program = _stream_program(n=200)
        first = _fingerprint(program, program.run())
        program.reset()
        for channel in program.channels:
            assert channel.stats.enqueues == 0
            assert not channel.sender_finished
        second = _fingerprint(program, program.run())
        assert first == second


# ----------------------------------------------------------------------
# Checkpoint chaos (§17): kill a worker at a checkpoint round, resume
# from the surviving checkpoint, leave nothing behind.
# ----------------------------------------------------------------------


def _spmspm_kernel():
    from repro.sam import CsfTensor
    from repro.sam.graphs import build_spmspm
    from repro.sam.tensor import random_dense

    b = random_dense(8, 8, density=0.4, seed=23)
    ct = random_dense(8, 8, density=0.4, seed=24)
    return build_spmspm(
        CsfTensor.from_dense(b, "cc"),
        CsfTensor.from_dense(ct, "cc"),
        depth=4,
    )


def _kernel_fingerprint(kernel, summary):
    chans = tuple(
        sorted(
            (ch.name, ch.stats.enqueues, ch.stats.dequeues)
            for ch in kernel.program.channels
        )
    )
    times = tuple(
        sorted((c.name, float(c.time.now())) for c in kernel.program.contexts)
    )
    return (
        summary.elapsed_cycles,
        kernel.result_dense().tobytes(),
        chans,
        times,
    )


def _checkpoint_leftovers(ckdir):
    """Anything in the checkpoint dir that is not a finished checkpoint
    (stale ``part-*`` dumps, ``*.tmp.*`` rename droppings)."""
    return [
        name
        for name in os.listdir(ckdir)
        if not (name.startswith("ckpt-") and name.endswith(".dam"))
    ]


@needs_fork
class TestCheckpointChaos:
    """A worker SIGKILLed right after dumping its checkpoint partition.

    ``after_checkpoints=2`` kills at the *second* round: a round-2
    request proves round 1 stitched successfully, so a valid checkpoint
    is guaranteed to exist when the crash lands.  The kill fires only if
    the victim is still live at its second dump — a fast run can retire
    it first — so each scenario gets a few tries to land the crash.
    The autouse fixture asserts no orphan workers and no leaked shm on
    top of each test's own stale-file checks.
    """

    TRIES = 6

    @staticmethod
    def _reference():
        kernel = _spmspm_kernel()
        return _kernel_fingerprint(
            kernel,
            kernel.run(
                executor="process", config=RunConfig(workers=2, timeslice=7)
            ),
        )

    def test_ladder_resumes_from_checkpoint_bit_identically(self, tmp_path):
        expected = self._reference()
        for attempt in range(self.TRIES):
            ckdir = tmp_path / str(attempt)
            kernel = _spmspm_kernel()
            plan = FaultPlan(seed=7).kill_worker(
                worker=0, after_checkpoints=2
            )
            summary = kernel.run(
                executor="process",
                config=RunConfig(
                    workers=2,
                    timeslice=7,
                    faults=plan,
                    fallback="sequential",
                    checkpoint_interval_s=0.0,
                    checkpoint_path=str(ckdir),
                ),
            )
            assert _kernel_fingerprint(kernel, summary) == expected
            assert not _checkpoint_leftovers(ckdir)
            if summary.attempts[0]["outcome"] != "crashed":
                continue  # run finished before the second dump; retry
            assert summary.attempts[0]["resumed_from"] is None
            assert summary.attempts[-1]["outcome"] == "ok"
            resumed = summary.attempts[-1]["resumed_from"]
            assert resumed is not None and resumed["epoch"] >= 1
            return
        pytest.fail(f"kill never fired in {self.TRIES} tries")

    def test_crash_then_elastic_resume_on_more_workers(self, tmp_path):
        from repro.core import checkpoint as ckpt

        expected = self._reference()
        for attempt in range(self.TRIES):
            ckdir = tmp_path / str(attempt)
            kernel = _spmspm_kernel()
            plan = FaultPlan(seed=7).kill_worker(
                worker=1, after_checkpoints=2
            )
            try:
                kernel.run(
                    executor="process",
                    config=RunConfig(
                        workers=2,
                        timeslice=7,
                        faults=plan,
                        checkpoint_interval_s=0.0,
                        checkpoint_path=str(ckdir),
                    ),
                )
                continue  # run finished before the second dump; retry
            except WorkerCrashError:
                pass
            assert not _checkpoint_leftovers(ckdir)

            fresh = _spmspm_kernel()
            found = ckpt.latest_checkpoint(str(ckdir), fresh.program)
            assert found is not None and found.epoch >= 1
            restored = ckpt.load(found.path, fresh.program)
            restored.restore_into(fresh.program)
            summary = fresh.run(
                executor="process", config=RunConfig(workers=3, timeslice=7)
            )
            assert _kernel_fingerprint(fresh, summary) == expected
            return
        pytest.fail(f"kill never fired in {self.TRIES} tries")


# ----------------------------------------------------------------------
# KeyboardInterrupt leaves nothing behind (satellite).
# ----------------------------------------------------------------------


@needs_fork
def test_sigint_mid_run_cleans_up_children_and_shm():
    token = f"dam_chaos_token_{os.getpid()}"
    script = textwrap.dedent(
        f"""
        import sys
        sys.path.insert(0, {str(SRC_DIR)!r})
        TOKEN = {token!r}
        from repro import FunctionContext, IncrCycles, ProgramBuilder, RunConfig

        builder = ProgramBuilder()
        snd, rcv = builder.unbounded(name="spin")

        def spinner():
            while True:
                yield snd.enqueue(1)
                yield IncrCycles(1)

        def sink():
            while True:
                yield rcv.dequeue()
                yield IncrCycles(1)

        a = builder.add(FunctionContext(spinner, handles=[snd], name="a"))
        b = builder.add(FunctionContext(sink, handles=[rcv], name="b"))
        builder.pin(a, 0)
        builder.pin(b, 1)
        program = builder.build()
        print("RUNNING", flush=True)
        program.run(executor="process", config=RunConfig(workers=2, steal=False))
        """
    )
    before = _shm_segments()
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        assert "RUNNING" in proc.stdout.readline()
        time.sleep(1.0)  # let the workers fork and enter their run loops
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=20)
    finally:
        if proc.poll() is None:  # pragma: no cover - hang safety net
            proc.kill()
            proc.wait(timeout=5)
        proc.stdout.close()
    assert proc.returncode != 0
    assert not (_shm_segments() - before), "SIGINT leaked shared memory"
    # No orphaned worker carries our token in its command line.
    survivors = []
    for cmdline in glob.glob("/proc/[0-9]*/cmdline"):
        try:
            with open(cmdline, "rb") as handle:
                if token.encode() in handle.read():
                    survivors.append(cmdline)
        except OSError:
            continue
    assert not survivors, f"SIGINT left orphan workers: {survivors}"


# ----------------------------------------------------------------------
# Registry probes degrade instead of raising (satellite).
# ----------------------------------------------------------------------


class TestRegistryDegradation:
    def test_cpu_budget_survives_masked_affinity(self, monkeypatch):
        from repro.core.executor import registry

        def raises(_):
            raise OSError("affinity syscall masked")

        monkeypatch.setattr(registry.os, "sched_getaffinity", raises, raising=False)
        assert registry._cpu_budget() >= 1

    def test_cpu_budget_survives_missing_affinity(self, monkeypatch):
        from repro.core.executor import registry

        monkeypatch.delattr(registry.os, "sched_getaffinity", raising=False)
        assert registry._cpu_budget() >= 1

    def test_raising_predicate_counts_as_unavailable(self, monkeypatch):
        from repro.core.executor import registry

        def explodes():
            raise RuntimeError("probe failed")

        monkeypatch.setitem(registry._AVAILABILITY, "process", explodes)
        assert registry.executor_available("process") is False

    def test_auto_always_lands_on_an_executor(self, monkeypatch):
        from repro.core.executor import registry

        def explodes():
            raise OSError("host probing broke")

        for name in ("free-threaded", "process", "threaded"):
            monkeypatch.setitem(registry._AVAILABILITY, name, explodes)
        cls = registry.resolve_executor("auto")
        assert cls.name == "sequential"

    def test_auto_still_runs_a_program(self, monkeypatch):
        from repro.core.executor import registry

        def explodes():
            raise OSError("host probing broke")

        for name in ("free-threaded", "process", "threaded"):
            monkeypatch.setitem(registry._AVAILABILITY, name, explodes)
        program = _stream_program(n=50)
        summary = program.run("auto")
        assert summary.elapsed_cycles > 0
