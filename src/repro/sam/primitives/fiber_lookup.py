"""The level scanner: SAM's FiberLookup primitive.

For every input reference it streams the referenced fiber's coordinates
and child references; input stop tokens pass through with their level
raised by one, and sibling fibers are separated by ``S0``:

* input ``ref r`` → the fiber's (crd, ref) pairs, with an ``S0`` emitted
  first if a previous fiber in the same group is still open;
* input ``Stop(k)`` → ``Stop(k + 1)``;
* input ``DONE`` → close the open fiber with ``S0`` if needed, then ``D``.

``ABSENT`` references (from a union's missing side) produce empty fibers,
keeping the stop structure aligned across both union branches.

Works over both level kinds (:class:`~repro.sam.tensor.DenseLevel` and
:class:`~repro.sam.tensor.CompressedLevel`): dense levels make this the
dense counterpart ("repeated range generator") used by SDDMM/MHA.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ..tensor import Level
from ..token import ABSENT, DONE, Stop
from .base import SamContext, TimingParams


class FiberLookup(SamContext):
    """Scan ``level``: refs in, (crd, ref) fibers out."""

    def __init__(
        self,
        level: Level,
        in_ref: Receiver,
        out_crd: Sender,
        out_ref: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.level = level
        self.in_ref = in_ref
        self.out_crd = out_crd
        self.out_ref = out_ref
        self.register(in_ref, out_crd, out_ref)

    def run(self):
        level = self.level
        open_fiber = False  # a fiber was emitted and awaits its boundary
        while True:
            token = yield self.in_ref.dequeue()
            if token is DONE:
                if open_fiber:
                    yield self.out_crd.enqueue(Stop(0))
                    yield self.out_ref.enqueue(Stop(0))
                    yield self.tick_control()
                yield self.out_crd.enqueue(DONE)
                yield self.out_ref.enqueue(DONE)
                return
            if isinstance(token, Stop):
                bumped = token.bumped()
                yield self.out_crd.enqueue(bumped)
                yield self.out_ref.enqueue(bumped)
                yield self.tick_control()
                open_fiber = False
                continue
            # A reference (or ABSENT: an empty fiber placeholder).
            if open_fiber:
                yield self.out_crd.enqueue(Stop(0))
                yield self.out_ref.enqueue(Stop(0))
                yield self.tick_control()
            if token is not ABSENT:
                coords, refs = level.fiber(token)
                for coord, ref in zip(coords, refs):
                    yield self.out_crd.enqueue(coord)
                    yield self.out_ref.enqueue(ref)
                    yield self.tick()
            open_fiber = True
