"""Plain-text table rendering for benchmark output.

Every benchmark prints the rows/series of its paper table or figure; this
tiny formatter keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Sequence


class TextTable:
    """Collects rows, then renders an aligned fixed-width table."""

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([self._format(value) for value in values])

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
