"""Coordinate joiners: Intersect (multiplication) and Union (addition).

Both consume two aligned (crd, ref) stream pairs whose control structure
matches (they scan the same logical iteration space), and produce one crd
stream plus a ref stream per input operand.

* **Intersect** keeps only coordinates present on both sides — the sparse
  iteration space of a multiply.
* **Union** keeps coordinates present on either side, emitting ``ABSENT``
  for the missing operand's reference — the iteration space of an add.
  Downstream, :class:`~repro.sam.primitives.fiber_lookup.FiberLookup`
  treats ``ABSENT`` as an empty fiber and
  :class:`~repro.sam.primitives.array.ArrayVals` reads it as 0.0.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import ABSENT, DONE, Stop
from .base import SamContext, TimingParams


class _TwoStreamJoiner(SamContext):
    """Shared plumbing: paired (crd, ref) heads with lookahead.

    The run loops are written against a pre-fused op kit built by
    :meth:`_make_ops`: every steady-state transition (emit one output
    triple, charge a tick, refill the consumed input heads) is a single
    fused yield, preserving the exact op order of the historical
    one-yield-per-op form.
    """

    checkpoint_attrs = ("_c1", "_r1", "_c2", "_r2")

    def __init__(
        self,
        in_crd1: Receiver,
        in_ref1: Receiver,
        in_crd2: Receiver,
        in_ref2: Receiver,
        out_crd: Sender,
        out_ref1: Sender,
        out_ref2: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd1 = in_crd1
        self.in_ref1 = in_ref1
        self.in_crd2 = in_crd2
        self.in_ref2 = in_ref2
        self.out_crd = out_crd
        self.out_ref1 = out_ref1
        self.out_ref2 = out_ref2
        self._c1 = self._r1 = self._c2 = self._r2 = UNSET
        self.register(
            in_crd1, in_ref1, in_crd2, in_ref2, out_crd, out_ref1, out_ref2
        )

    def _make_ops(self):
        """Build the pre-fused op kit shared by Intersect and Union."""
        d1c = self.in_crd1.dequeue()
        d1r = self.in_ref1.dequeue()
        d2c = self.in_crd2.dequeue()
        d2r = self.in_ref2.dequeue()
        ec = self.out_crd.enqueue(None)
        e1 = self.out_ref1.enqueue(None)
        e2 = self.out_ref2.enqueue(None)
        tick = self.tick()
        kit = {
            # Prime both input heads.
            "pull_both": FusedOps(d1c, d1r, d2c, d2r),
            # Emit a matched triple, tick, refill both heads.
            "emit_both": FusedOps(ec, e1, e2, tick, d1c, d1r, d2c, d2r),
            # Emit, tick, refill only side 1 / side 2 (union ABSENT cases).
            "emit_pull1": FusedOps(ec, e1, e2, tick, d1c, d1r),
            "emit_pull2": FusedOps(ec, e1, e2, tick, d2c, d2r),
            # Aligned stop: emit it on all three outputs, control tick,
            # refill both heads.
            "stop_both": FusedOps(ec, e1, e2, self.tick_control(), d1c, d1r, d2c, d2r),
            # Skip a coordinate: tick, refill one side (intersect misses).
            "skip1": FusedOps(tick, d1c, d1r),
            "skip2": FusedOps(tick, d2c, d2r),
            # Final DONE triple (no tick; the run returns right after).
            "emit_done": FusedOps(ec, e1, e2),
        }
        return ec, e1, e2, kit


class Intersect(_TwoStreamJoiner):
    """Two-pointer fiber intersection (sparse multiply iteration space)."""

    def run(self):
        ec, e1, e2, kit = self._make_ops()
        emit_both = kit["emit_both"]
        stop_both = kit["stop_both"]
        skip1 = kit["skip1"]
        skip2 = kit["skip2"]
        if self._c1 is UNSET:
            res = yield kit["pull_both"]
            self._c1, self._r1, self._c2, self._r2 = res
        while True:
            c1, r1, c2, r2 = self._c1, self._r1, self._c2, self._r2
            s1 = c1.__class__ is Stop
            s2 = c2.__class__ is Stop
            if c1 is DONE or c2 is DONE:
                assert c1 is DONE and c2 is DONE, (
                    f"{self.name}: streams ended at different points "
                    f"({c1!r} vs {c2!r})"
                )
                ec.data = e1.data = e2.data = DONE
                yield kit["emit_done"]
                return
            if s1 and s2:
                assert c1.level == c2.level, (
                    f"{self.name}: misaligned stops {c1!r} vs {c2!r}"
                )
                ec.data = e1.data = e2.data = c1
                res = yield stop_both
                self._c1 = res[4]
                self._r1 = res[5]
                self._c2 = res[6]
                self._r2 = res[7]
            elif s1:
                # Side 2 still has coordinates this fiber: no match possible.
                res = yield skip2
                self._c2 = res[1]
                self._r2 = res[2]
            elif s2:
                res = yield skip1
                self._c1 = res[1]
                self._r1 = res[2]
            elif c1 == c2:
                ec.data = c1
                e1.data = r1
                e2.data = r2
                res = yield emit_both
                self._c1 = res[4]
                self._r1 = res[5]
                self._c2 = res[6]
                self._r2 = res[7]
            elif c1 < c2:
                res = yield skip1
                self._c1 = res[1]
                self._r1 = res[2]
            else:
                res = yield skip2
                self._c2 = res[1]
                self._r2 = res[2]


class Union(_TwoStreamJoiner):
    """Fiber union with ABSENT placeholders (sparse add iteration space)."""

    def run(self):
        ec, e1, e2, kit = self._make_ops()
        emit_both = kit["emit_both"]
        emit_pull1 = kit["emit_pull1"]
        emit_pull2 = kit["emit_pull2"]
        stop_both = kit["stop_both"]
        if self._c1 is UNSET:
            res = yield kit["pull_both"]
            self._c1, self._r1, self._c2, self._r2 = res
        while True:
            c1, r1, c2, r2 = self._c1, self._r1, self._c2, self._r2
            s1 = c1.__class__ is Stop
            s2 = c2.__class__ is Stop
            if c1 is DONE or c2 is DONE:
                assert c1 is DONE and c2 is DONE, (
                    f"{self.name}: streams ended at different points "
                    f"({c1!r} vs {c2!r})"
                )
                ec.data = e1.data = e2.data = DONE
                yield kit["emit_done"]
                return
            if s1 and s2:
                assert c1.level == c2.level, (
                    f"{self.name}: misaligned stops {c1!r} vs {c2!r}"
                )
                ec.data = e1.data = e2.data = c1
                res = yield stop_both
                self._c1 = res[4]
                self._r1 = res[5]
                self._c2 = res[6]
                self._r2 = res[7]
            elif s1:
                ec.data = c2
                e1.data = ABSENT
                e2.data = r2
                res = yield emit_pull2
                self._c2 = res[4]
                self._r2 = res[5]
            elif s2:
                ec.data = c1
                e1.data = r1
                e2.data = ABSENT
                res = yield emit_pull1
                self._c1 = res[4]
                self._r1 = res[5]
            elif c1 == c2:
                ec.data = c1
                e1.data = r1
                e2.data = r2
                res = yield emit_both
                self._c1 = res[4]
                self._r1 = res[5]
                self._c2 = res[6]
                self._r2 = res[7]
            elif c1 < c2:
                ec.data = c1
                e1.data = r1
                e2.data = ABSENT
                res = yield emit_pull1
                self._c1 = res[4]
                self._r1 = res[5]
            else:
                ec.data = c2
                e1.data = ABSENT
                e2.data = r2
                res = yield emit_pull2
                self._c2 = res[4]
                self._r2 = res[5]
