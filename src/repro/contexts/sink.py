"""Sink contexts: terminate streams, collect or check their contents."""

from __future__ import annotations

from typing import Any, Iterable

from ..core.channel import Receiver
from ..core.context import Context
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from ..core.time import Time


class Collector(Context):
    """Drain a channel into ``self.values`` until it closes.

    With ``timestamps=True`` it records ``(dequeue_time, value)`` pairs,
    which is how calibration traces and latency measurements are captured.
    """

    checkpoint_attrs = ("_phase", "values")

    def __init__(
        self,
        inp: Receiver,
        ii: Time = 0,
        timestamps: bool = False,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.inp = inp
        self.ii = ii
        self.timestamps = timestamps
        self.values: list[Any] = []
        self._phase = 0  # 0=dequeue (and record), 1=tick
        self.register(inp)

    def run(self):
        try:
            while True:
                if self._phase == 0:
                    value = yield self.inp.dequeue()
                    if self.timestamps:
                        self.values.append((self.time.now(), value))
                    else:
                        self.values.append(value)
                    self._phase = 1 if self.ii else 0
                if self._phase == 1:
                    yield IncrCycles(self.ii)
                    self._phase = 0
        except ChannelClosed:
            return


class Checker(Context):
    """Assert a channel delivers exactly an expected sequence.

    Raises ``AssertionError`` (surfaced as a SimulationError) on the first
    mismatch, extra element, or early close.
    """

    checkpoint_attrs = ("seen",)

    def __init__(self, inp: Receiver, expected: Iterable[Any], name: str | None = None):
        super().__init__(name=name)
        self.inp = inp
        self.expected = list(expected)
        self.seen = 0
        self.register(inp)

    def run(self):
        while self.seen < len(self.expected):
            index = self.seen
            expected = self.expected[index]
            try:
                value = yield self.inp.dequeue()
            except ChannelClosed:
                raise AssertionError(
                    f"{self.name}: channel closed after {index} of "
                    f"{len(self.expected)} expected elements"
                ) from None
            if value != expected:
                raise AssertionError(
                    f"{self.name}: element {index}: expected {expected!r}, "
                    f"got {value!r}"
                )
            self.seen += 1
        try:
            extra = yield self.inp.dequeue()
        except ChannelClosed:
            return
        raise AssertionError(f"{self.name}: unexpected extra element {extra!r}")


class NullSink(Context):
    """Discard everything; useful to terminate unused outputs."""

    checkpoint_attrs = ("count",)

    def __init__(self, inp: Receiver, name: str | None = None):
        super().__init__(name=name)
        self.inp = inp
        self.count = 0
        self.register(inp)

    def run(self):
        try:
            while True:
                yield self.inp.dequeue()
                self.count += 1
        except ChannelClosed:
            return
