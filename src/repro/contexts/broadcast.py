"""Broadcast: replicate one stream onto several output channels."""

from __future__ import annotations

from typing import Sequence

from ..core.channel import Receiver, Sender
from ..core.context import Context
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from ..core.time import Time


class Broadcast(Context):
    """Copy every input element to each output channel, in order.

    A full copy is issued per initiation interval; a slow consumer on any
    branch backpressures the broadcast (and therefore every branch), just
    as a physical fan-out buffer would.
    """

    def __init__(
        self,
        inp: Receiver,
        outs: Sequence[Sender],
        ii: Time = 1,
        name: str | None = None,
    ):
        if not outs:
            raise ValueError("Broadcast needs at least one output")
        super().__init__(name=name)
        self.inp = inp
        self.outs = list(outs)
        self.ii = ii
        self.register(inp, *outs)

    def run(self):
        try:
            while True:
                value = yield self.inp.dequeue()
                for out in self.outs:
                    yield out.enqueue(value)
                yield IncrCycles(self.ii)
        except ChannelClosed:
            return
