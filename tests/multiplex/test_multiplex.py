"""Tests for the time-multiplexed simulation case study (Section IX)."""

import numpy as np
import pytest

from repro.contexts import Collector
from repro.core import ProgramBuilder
from repro.multiplex import (
    BatchingContext,
    DevicePool,
    InferenceContext,
    PhysicalDevice,
    VirtualDevice,
    poisson_arrivals,
    run_multiplex_experiment,
)
from repro.multiplex.batching import BatchRecord, RequestSource


class TestPhysicalDevice:
    def test_task_load_counted(self):
        device = PhysicalDevice(0, work_dim=16)
        device.ensure_task(1)
        device.ensure_task(1)  # resident: no reload
        device.ensure_task(2)
        assert device.loads == 2

    def test_task_state_round_trips(self):
        device = PhysicalDevice(0, work_dim=16)
        device.ensure_task(1)
        weights_1 = device._weights.copy()
        device.ensure_task(2)
        device.ensure_task(1)
        assert np.array_equal(device._weights, weights_1)

    def test_run_batch_returns_output_and_seconds(self):
        device = PhysicalDevice(0, work_dim=16)
        device.ensure_task(0)
        out, seconds = device.run_batch(np.ones((4, 16)))
        assert out.shape == (4, 16)
        assert seconds > 0


class TestDevicePool:
    def test_prefers_requested_device(self):
        pool = DevicePool([PhysicalDevice(0, 8), PhysicalDevice(1, 8)])
        device = pool.acquire(preferred=1)
        assert device.index == 1
        device.lock.release()

    def test_falls_back_to_free_device(self):
        devices = [PhysicalDevice(0, 8), PhysicalDevice(1, 8)]
        pool = DevicePool(devices)
        devices[1].lock.acquire()  # preferred is busy
        device = pool.acquire(preferred=1)
        assert device.index == 0
        device.lock.release()
        devices[1].lock.release()

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            DevicePool([])


class TestBatching:
    def run_batching(self, gaps, max_batch, timeout, cycles_per_batch=20):
        builder = ProgramBuilder()
        s_req, r_req = builder.bounded(4)
        s_rec, r_rec = builder.real("records")
        s_done, r_done = builder.unbounded()
        builder.add(RequestSource(s_req, gaps))
        builder.add(BatchingContext(r_req, s_rec, max_batch, timeout))
        inference = builder.add(
            InferenceContext(r_rec, s_done, cycles_per_batch=cycles_per_batch)
        )
        builder.add(Collector(r_done))
        builder.build().run()
        return inference.completions

    def test_size_triggered_batches(self):
        completions = self.run_batching([1] * 6, max_batch=3, timeout=1000)
        assert [size for _, size in completions] == [3, 3]

    def test_timeout_triggered_batch(self):
        # One request, then a huge gap: the first batch must launch at
        # its deadline, not wait for more arrivals.
        completions = self.run_batching([1, 500], max_batch=4, timeout=10)
        assert [size for _, size in completions] == [1, 1]
        first_completion_time = completions[0][0]
        assert first_completion_time < 100  # launched at deadline ~12

    def test_mixed_triggers(self):
        completions = self.run_batching(
            [1, 1, 1, 50, 1], max_batch=3, timeout=8
        )
        sizes = [size for _, size in completions]
        assert sizes[0] == 3  # filled
        assert sum(sizes) == 5

    def test_batch_completion_times_increase(self):
        completions = self.run_batching([2] * 10, max_batch=2, timeout=30)
        times = [t for t, _ in completions]
        assert times == sorted(times)

    def test_max_batch_validated(self):
        builder = ProgramBuilder()
        s, r = builder.bounded(1)
        with pytest.raises(ValueError):
            BatchingContext(r, s, max_batch=0, timeout=5)

    def test_record_dataclass(self):
        record = BatchRecord(launch_time=5, size=3)
        assert record.launch_time == 5 and record.size == 3


class TestPoissonArrivals:
    def test_count_and_positivity(self):
        gaps = poisson_arrivals(50, mean_gap=4.0, seed=1)
        assert len(gaps) == 50
        assert all(gap >= 1 for gap in gaps)

    def test_seeded(self):
        assert poisson_arrivals(10, 3.0, seed=2) == poisson_arrivals(10, 3.0, seed=2)


class TestVirtualDevices:
    def test_experiment_runs_all_batches(self):
        result = run_multiplex_experiment(
            virtual=2, physical=1, batches=3, batch_size=8, work_dim=16
        )
        assert result.samples == 6
        assert result.mean_seconds > 0
        assert result.std_seconds >= 0

    def test_shared_task_reduces_loads(self):
        distinct = run_multiplex_experiment(
            virtual=4, physical=1, batches=4, batch_size=8, work_dim=16
        )
        shared = run_multiplex_experiment(
            virtual=4,
            physical=1,
            batches=4,
            batch_size=8,
            work_dim=16,
            shared_task=True,
        )
        # Same resident task: the unfair-lock fast path skips stash/load.
        assert shared.device_loads < distinct.device_loads

    def test_virtual_device_records_batches(self):
        from repro.contexts import IterableSource

        pool = DevicePool([PhysicalDevice(0, 8)])
        builder = ProgramBuilder()
        s_in, r_in = builder.bounded(2)
        s_out, r_out = builder.bounded(2)
        builder.add(IterableSource(s_in, [np.ones((2, 8))] * 3))
        vdev = builder.add(VirtualDevice(r_in, s_out, pool, task_id=0))
        builder.add(Collector(r_out))
        builder.build().run()
        assert len(vdev.batch_seconds) == 3
