"""Contexts: the CSPT processes of a DAM program (paper Section III).

A context is a sequential process with a local clock.  Its behaviour is a
Python generator produced by :meth:`Context.run`: the generator yields
operation objects (:mod:`repro.core.ops`) and is resumed with their results.
Functionality and timing are described together — the body computes values
and sprinkles ``IncrCycles`` where the modeled hardware spends time.

Subclassing :class:`Context` is the general form; :class:`FunctionContext`
wraps a plain generator function for one-off processes.

Example — the paper's two-input merge unit (Listing 1), with a two-cycle
initiation interval and six-cycle latency::

    class Merge(Context):
        def __init__(self, a, b, out):
            super().__init__()
            self.a, self.b, self.out = a, b, out
            self.register(a, b, out)

        def run(self):
            while True:
                x = yield self.a.peek()
                y = yield self.b.peek()
                if x <= y:
                    yield self.a.dequeue()
                else:
                    yield self.b.dequeue()
                yield IncrCycles(2)                 # initiation interval
                yield self.out.enqueue(min(x, y))   # + channel latency
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable

from .channel import Receiver, Sender
from .errors import GraphConstructionError, NotCheckpointable
from .ops import Op
from .time import TimeCell

#: The generator type a context body must produce.
ContextGenerator = Generator[Op, Any, None]

_context_ids = itertools.count()


class _Unset:
    """Singleton marking a resumable attribute not yet primed.

    Resumable contexts (DESIGN.md §17) initialize their inter-yield state
    attributes to :data:`UNSET` and derive "have I issued the priming
    yield yet?" from it when a fresh generator starts from restored state.
    The ``__new__`` override keeps it a singleton across pickling, so
    ``state is UNSET`` stays valid after a checkpoint round-trips through
    disk (the same pattern as the stream tokens in ``sam/token.py``).
    """

    _instance: "_Unset | None" = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __reduce__(self):
        return (_Unset, ())


UNSET = _Unset()


class Context:
    """Base class for all simulated processes.

    Subclasses must:

    * call ``super().__init__()`` (optionally passing a ``name``),
    * call :meth:`register` with every channel handle they own, and
    * implement :meth:`run` as a generator yielding ops.

    The executor owns the context's lifecycle; user code never advances the
    clock directly (yield :class:`~repro.core.ops.IncrCycles` instead).

    **Checkpointing** (DESIGN.md §17): a context opts into checkpoint/
    restore by declaring ``checkpoint_attrs`` — the tuple of instance
    attribute names that together hold *all* of its inter-yield state —
    and honoring the resumable-state contract: every attribute named
    there is mutated only *after* the yield whose result the mutation
    consumes, so that a fresh ``run()`` generator started from restored
    attributes re-derives, as its first yield, an op semantically
    identical to the one the suspended generator was parked on.  The
    default ``checkpoint_attrs = None`` means "opaque generator state":
    :meth:`snapshot` raises :class:`~repro.core.errors.NotCheckpointable`
    and a run with ``RunConfig(checkpoint_interval_s=...)`` refuses up
    front.
    """

    #: Names of the instance attributes that fully determine this
    #: context's inter-yield state, or ``None`` when the context keeps
    #: opaque generator state and cannot be checkpointed.
    checkpoint_attrs: tuple[str, ...] | None = None

    def __init__(self, name: str | None = None):
        self.id = next(_context_ids)
        self.name = name or f"{type(self).__name__}{self.id}"
        self.time = TimeCell(0)
        self.senders: list[Sender] = []
        self.receivers: list[Receiver] = []
        #: Final local time, recorded by the executor just before the clock
        #: is pinned at INFINITY.  None until the context finishes.
        self.finish_time: Any = None

    def register(self, *handles: Sender | Receiver) -> None:
        """Declare ownership of channel endpoints.

        Channels are statically connected: each endpoint belongs to exactly
        one context, checked here and again at program build time.
        """
        for handle in handles:
            if isinstance(handle, Sender):
                handle.attach(self)
                self.senders.append(handle)
            elif isinstance(handle, Receiver):
                handle.attach(self)
                self.receivers.append(handle)
            else:
                raise GraphConstructionError(
                    f"{self.name}: register() accepts Sender/Receiver "
                    f"handles, got {type(handle).__name__}"
                )

    def run(self) -> ContextGenerator:
        """Produce the generator that is this context's behaviour."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint hooks.
    # ------------------------------------------------------------------

    @property
    def checkpointable(self) -> bool:
        """Whether this context supports :meth:`snapshot`/:meth:`restore`."""
        return self.checkpoint_attrs is not None

    def snapshot(self) -> dict[str, Any]:
        """Capture the attributes named by ``checkpoint_attrs``.

        The returned mapping must be picklable; subclasses whose state
        includes non-picklable values override this (and
        :meth:`restore`) to encode them.
        """
        if self.checkpoint_attrs is None:
            raise NotCheckpointable([self.name])
        state = {}
        for name in self.checkpoint_attrs:
            value = getattr(self, name)
            # Shallow-copy containers so the snapshot is insulated from
            # the still-running context mutating them after the capture.
            if isinstance(value, (list, dict, set)):
                value = value.copy()
            state[name] = value
        return state

    def restore(self, state: dict[str, Any]) -> None:
        """Install a state mapping previously produced by :meth:`snapshot`."""
        if self.checkpoint_attrs is None:
            raise NotCheckpointable([self.name])
        for name in self.checkpoint_attrs:
            value = state[name]
            if isinstance(value, (list, dict, set)):
                value = value.copy()
            setattr(self, name, value)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} @ {self.time.now()}>"


class FunctionContext(Context):
    """A context defined by a standalone generator function.

    ``body`` is called with no arguments (close over channels) or with the
    context itself when ``pass_context=True``.  Handles must still be
    registered, via the ``handles`` argument::

        snd, rcv = make_channel(capacity=4)

        def producer():
            for i in range(10):
                yield snd.enqueue(i)
                yield IncrCycles(1)

        ctx = FunctionContext(producer, handles=[snd])
    """

    def __init__(
        self,
        body: Callable[..., ContextGenerator],
        handles: Iterable[Sender | Receiver] = (),
        name: str | None = None,
        pass_context: bool = False,
    ):
        super().__init__(name=name or getattr(body, "__name__", None))
        self._body = body
        self._pass_context = pass_context
        self.register(*handles)

    def run(self) -> ContextGenerator:
        if self._pass_context:
            return self._body(self)
        return self._body()
