"""Shared machinery for SAM primitive contexts."""

from __future__ import annotations

from dataclasses import dataclass

from ...core.context import Context
from ...core.ops import IncrCycles
from ...core.time import Time


@dataclass(frozen=True)
class TimingParams:
    """Timing behaviour of a SAM primitive.

    ``ii``
        Initiation interval: cycles charged per processed token.
    ``stop_bubble``
        Extra pipeline-bubble cycles charged when a control token (stop or
        done) is handled.  This is the parameter family exposed to the
        autotuner in the calibration study (Section VIII-A4).
    """

    ii: Time = 1
    stop_bubble: Time = 0

    def scaled_for_control(self) -> Time:
        return self.ii + self.stop_bubble


#: Default timing: fully pipelined, no control bubbles.
DEFAULT_TIMING = TimingParams()


class SamContext(Context):
    """Base class for SAM primitives: holds timing and tick helpers.

    Op objects are immutable-by-convention and re-yieldable, so the tick
    helpers return per-instance cached :class:`IncrCycles` ops — the hot
    loops of the primitives yield the same op object every iteration
    (and fold it into pre-built :class:`~repro.core.ops.FusedOps`
    batches), paying zero allocations per token.  See DESIGN.md §11 for
    why reuse is safe: a generator cannot mutate or re-yield an op while
    the executor still holds it, because the generator is suspended.
    """

    def __init__(self, timing: TimingParams | None = None, name: str | None = None):
        super().__init__(name=name)
        self.timing = timing or DEFAULT_TIMING
        self._tick_op = IncrCycles(self.timing.ii)
        self._tick_control_op = IncrCycles(self.timing.scaled_for_control())

    def tick(self) -> IncrCycles:
        """One payload-token initiation interval (yield the result)."""
        return self._tick_op

    def tick_control(self) -> IncrCycles:
        """One control-token interval including the stop bubble."""
        return self._tick_control_op
