"""Stream sources: the entry points of a SAM graph."""

from __future__ import annotations

from typing import Any, Iterable

from ...core.channel import Sender
from ...core.ops import FusedOps
from ..token import DONE
from .base import SamContext, TimingParams


class RootSource(SamContext):
    """Emits the canonical root reference stream ``[0, D]``.

    Every SAM kernel starts by scanning the outermost level of each input
    tensor from the root fiber reference 0.
    """

    def __init__(
        self,
        out: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.out = out
        self.register(out)

    def run(self):
        yield self.out.enqueue(0)
        yield self.tick()
        yield self.out.enqueue(DONE)


class StreamSource(SamContext):
    """Emits an explicit token list (tests, handcrafted workloads).

    The caller is responsible for the list being a well-formed SAM stream
    (ending with ``DONE``); :func:`repro.sam.token.is_control` helpers and
    the stream well-formedness tests cover this.
    """

    def __init__(
        self,
        out: Sender,
        tokens: Iterable[Any],
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.out = out
        self.tokens = list(tokens)
        self.register(out)

    def run(self):
        enq = self.out.enqueue(None)
        step = FusedOps(enq, self.tick())
        for token in self.tokens:
            enq.data = token
            yield step
