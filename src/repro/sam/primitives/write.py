"""Stream terminators: fiber/value writers and the raw stream sink.

Writers materialize output streams back into tensor storage: FiberWrite
builds a :class:`~repro.sam.tensor.CompressedLevel` from a coordinate
stream, ValsWrite collects the values array.  StreamSink records raw
tokens (used heavily by the primitive-level tests).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...core.channel import Receiver
from ...core.ops import FusedOps
from ..tensor import CompressedLevel
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class FiberWrite(SamContext):
    """Build seg/crd arrays from a coordinate stream.

    Every stop closes one fiber at this level (higher stop levels close
    ancestors, which their own writers observe through their own streams).
    After the run, :meth:`to_level` returns the compressed level.
    """

    def __init__(
        self,
        in_crd: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.seg: list[int] = [0]
        self.crd: list[int] = []
        self.register(in_crd)

    def run(self):
        seg = self.seg
        crd = self.crd
        deq = self.in_crd.dequeue()
        step = FusedOps(self.tick(), deq)
        step_control = FusedOps(self.tick_control(), deq)
        token = yield deq
        while True:
            if token is DONE:
                return
            if token.__class__ is Stop:
                seg.append(len(crd))
                token = (yield step_control)[1]
            else:
                crd.append(token)
                token = (yield step)[1]

    def to_level(self) -> CompressedLevel:
        return CompressedLevel(self.seg, self.crd)


class ValsWrite(SamContext):
    """Collect a value stream's payloads into a numpy array."""

    def __init__(
        self,
        in_val: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.vals: list[float] = []
        self.register(in_val)

    def run(self):
        vals = self.vals
        deq = self.in_val.dequeue()
        step = FusedOps(self.tick(), deq)
        step_control = FusedOps(self.tick_control(), deq)
        token = yield deq
        while True:
            if token is DONE:
                return
            if token.__class__ is Stop:
                token = (yield step_control)[1]
            else:
                vals.append(token)
                token = (yield step)[1]

    def to_array(self) -> np.ndarray:
        return np.array(self.vals, dtype=np.float64)


class StreamSink(SamContext):
    """Record every token of a stream verbatim (including controls)."""

    def __init__(
        self,
        inp: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.inp = inp
        self.tokens: list[Any] = []
        self.register(inp)

    def run(self):
        tokens = self.tokens
        deq = self.inp.dequeue()
        step = FusedOps(self.tick(), deq)
        token = yield deq
        while True:
            tokens.append(token)
            if token is DONE:
                return
            token = (yield step)[1]
