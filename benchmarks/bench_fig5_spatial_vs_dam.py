"""Fig. 5 — real time to simulate streaming attention: DAM vs Spatial.

Paper: standard streaming attention (Fig. 4a), sequence lengths 512..32K;
DAM (Rust) beats Spatial's Scala cycle-accurate simulator by more than
two orders of magnitude, and the simulated cycle counts match up to a
constant 8-cycle startup/shutdown gap.

Reproduction: the Spatial stand-in is :mod:`repro.cyclesim` (every
component ticked every cycle).  Sequence lengths are scaled to Python
budgets; both the speedup series and the constant cycle gap are checked.
"""

import numpy as np
from conftest import report

from repro.attention import (
    attention_reference,
    build_standard_attention,
    run_cycle_standard_attention,
)
from repro.bench import TextTable

SEQ_LENGTHS = [16, 32, 64, 96]
HEAD_DIM = 16
#: One multiply-accumulate per cycle: a d-dim dot product initiates every
#: d cycles.  The idle cycles this creates in the downstream units are
#: what the cycle engine pays for tick-by-tick and DAM skips.
SCORE_II = HEAD_DIM


def inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n, HEAD_DIM)) * 0.25,
        rng.standard_normal((n, HEAD_DIM)) * 0.25,
        rng.standard_normal((n, HEAD_DIM)),
    )


def run_sweep():
    table = TextTable(
        ["seq_len", "spatial_like_s", "dam_s", "speedup", "cycles_cyc",
         "cycles_dam", "gap"],
        title=(
            "Fig. 5 (scaled): cycle-by-cycle engine vs DAM on standard "
            "streaming attention\npaper: >100x at 512..32K, constant 8-cycle gap"
        ),
    )
    rows = []
    for n in SEQ_LENGTHS:
        q, k, v = inputs(n)
        out, stats = run_cycle_standard_attention(q, k, v, score_ii=SCORE_II)
        dam = build_standard_attention(q, k, v, score_ii=SCORE_II)
        summary = dam.run()
        assert np.allclose(out, attention_reference(q, k, v))
        assert np.allclose(dam.result(), attention_reference(q, k, v))
        gap = stats.cycles - summary.elapsed_cycles
        speedup = stats.real_seconds / summary.real_seconds
        rows.append((n, speedup, gap))
        table.add_row(
            n, stats.real_seconds, summary.real_seconds, speedup,
            stats.cycles, summary.elapsed_cycles, gap,
        )
    report("fig5_spatial_vs_dam", table.render())
    return rows


def test_fig5_speedup_and_cycle_gap(benchmark):
    rows = run_sweep()
    # Constant gap across sequence lengths (the paper's 8; ours differs by
    # a startup constant of the pipelines, but must not grow with N).
    gaps = [gap for _, _, gap in rows]
    assert len(set(gaps)) == 1
    # DAM is faster everywhere (cycle engine pays ticks * components).
    assert all(speedup > 1.0 for _, speedup, _ in rows)
    q, k, v = inputs(32)
    benchmark.pedantic(
        lambda: build_standard_attention(q, k, v, score_ii=SCORE_II).run(),
        rounds=3,
        iterations=1,
    )


def test_fig5_cycle_engine_baseline_timing(benchmark):
    q, k, v = inputs(32)
    benchmark.pedantic(
        lambda: run_cycle_standard_attention(q, k, v, score_ii=SCORE_II),
        rounds=3,
        iterations=1,
    )
