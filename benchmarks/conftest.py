"""Shared benchmark infrastructure.

Every benchmark regenerates one paper table/figure: it runs the (scaled)
sweep, prints the paper-shaped rows, and persists them under
``benchmarks/results/`` so the output survives pytest's capture.  The
``benchmark`` fixture additionally times one representative configuration
so ``pytest benchmarks/ --benchmark-only`` produces comparable timings.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
