"""SpMSpM: sparse matrix-sparse matrix multiplication X = B @ C.

Inner-product formulation over X(i, j) = sum_k B(i, k) * C(k, j) with the
second operand stored transposed ("Ct": rows are j, columns are k — i.e.
CSC of C), which is the canonical TACO/SAM lowering: iterate B's rows
(i), re-scan all of Ct's rows (j) per i, intersect the two k-fibers,
multiply matched values, and reduce over k.

Graph sketch::

    rootB -> scanBi --(crd_i)--> repsigI --\\
    rootC ----------------------> repeatC --> scanCj --(crd_j)--> repsigJ
                 scanBi.ref ----------------------------> repeatB
    repeatB -> scanBk  \\ intersectK -> arrayB, arrayC -> mul -> reduce
    scanCj.ref -> scanCk /

The plain build emits a *dense-in-j* value stream (zero dot products for
empty intersections); ``compress_output=True`` adds the CrdDrop /
zero-filter stages so the written output is properly compressed — at the
cost of three more contexts, mirroring the paper's output-compression
discussion.
"""

from __future__ import annotations

import numpy as np

from ..primitives import (
    ArrayVals,
    BinaryAlu,
    CrdDrop,
    FiberLookup,
    FiberWrite,
    Intersect,
    Reduce,
    Repeat,
    RepeatSigGen,
    RootSource,
    ValsWrite,
)
from ..primitives.alu import mul
from ..primitives.filter import ValDrop
from ..tensor import CsfTensor
from .common import KernelGraph, SamGraphBuilder


def build_spmspm(
    b: CsfTensor,
    c_transposed: CsfTensor,
    depth: int | None = None,
    latency: int = 1,
    timing=None,
    compress_output: bool = False,
) -> KernelGraph:
    """Build X = B @ C with ``c_transposed`` holding C^T in 'cc' format.

    ``b`` is (I, K); ``c_transposed`` is (J, K); the result is (I, J).
    """
    if b.shape[1] != c_transposed.shape[1]:
        raise ValueError(
            f"inner dimensions differ: B is {b.shape}, C^T is "
            f"{c_transposed.shape} (k axes must match)"
        )
    rows, cols = b.shape[0], c_transposed.shape[0]
    g = SamGraphBuilder(depth=depth, latency=latency, timing=timing)
    t = g.timing

    # --- outer loop: B's i level ---------------------------------------
    rootb_s, rootb_r = g.ch("rootB")
    g.add(RootSource(rootb_s, timing=t, name="rootB"))
    cbi_s, cbi_r = g.ch("cBi")
    rbi_s, rbi_r = g.ch("rBi")
    g.add(FiberLookup(b.level(0), rootb_r, cbi_s, rbi_s, timing=t, name="scanBi"))
    cbi_out, cbi_sig = g.fanout(cbi_r, 2, "cBi")

    # Re-scan all of Ct per i: repeat the root reference once per i.
    sigi_s, sigi_r = g.ch("sigI")
    g.add(RepeatSigGen(cbi_sig, sigi_s, timing=t, name="repsigI"))
    rootc_s, rootc_r = g.ch("rootC")
    g.add(RootSource(rootc_s, timing=t, name="rootC"))
    rcrep_s, rcrep_r = g.ch("rC_rep")
    g.add(Repeat(rootc_r, sigi_r, rcrep_s, timing=t, name="repeatC"))

    # --- middle loop: Ct's j level (once per i) ------------------------
    ccj_s, ccj_r = g.ch("cCj")
    rcj_s, rcj_r = g.ch("rCj")
    g.add(
        FiberLookup(c_transposed.level(0), rcrep_r, ccj_s, rcj_s, timing=t, name="scanCj")
    )
    fanout_n = 3 if compress_output else 2
    ccj_parts = g.fanout(ccj_r, fanout_n, "cCj")
    ccj_out, ccj_sig = ccj_parts[0], ccj_parts[1]

    # Repeat B's row refs once per j.
    sigj_s, sigj_r = g.ch("sigJ")
    g.add(RepeatSigGen(ccj_sig, sigj_s, timing=t, name="repsigJ"))
    rbrep_s, rbrep_r = g.ch("rB_rep")
    g.add(Repeat(rbi_r, sigj_r, rbrep_s, timing=t, name="repeatB"))

    # --- inner loop: the k intersection --------------------------------
    cbk_s, cbk_r = g.ch("cBk")
    rbk_s, rbk_r = g.ch("rBk")
    g.add(FiberLookup(b.level(1), rbrep_r, cbk_s, rbk_s, timing=t, name="scanBk"))
    cck_s, cck_r = g.ch("cCk")
    rck_s, rck_r = g.ch("rCk")
    g.add(
        FiberLookup(c_transposed.level(1), rcj_r, cck_s, rck_s, timing=t, name="scanCk")
    )

    ck_s, ck_r = g.ch("crd_k")
    rbx_s, rbx_r = g.ch("rBk_x")
    rcx_s, rcx_r = g.ch("rCk_x")
    g.add(
        Intersect(
            cbk_r, rbk_r, cck_r, rck_r, ck_s, rbx_s, rcx_s, timing=t, name="intersectK"
        )
    )

    vb_s, vb_r = g.ch("vB")
    vc_s, vc_r = g.ch("vC")
    g.add(ArrayVals(b.vals, rbx_r, vb_s, timing=t, name="arrayB"))
    g.add(ArrayVals(c_transposed.vals, rcx_r, vc_s, timing=t, name="arrayC"))
    vm_s, vm_r = g.ch("vMul")
    g.add(BinaryAlu(vb_r, vc_r, vm_s, mul, timing=t, name="mulALU"))
    vx_s, vx_r = g.ch("vX")
    g.add(Reduce(vm_r, vx_s, timing=t, name="reduceK"))

    # --- output ---------------------------------------------------------
    fw_i = g.add(FiberWrite(cbi_out, timing=t, name="write_i"))
    if compress_output:
        # Drop j coordinates whose k-intersection was empty, and the
        # corresponding zero dot products.
        cjd_s, cjd_r = g.ch("crd_j_drop")
        g.add(CrdDrop(ccj_parts[2], ck_r, cjd_s, timing=t, name="dropJ"))
        vxd_s, vxd_r = g.ch("vX_drop")
        g.add(ValDrop(vx_r, vxd_s, timing=t, name="dropZeroVals"))
        fw_j = g.add(FiberWrite(cjd_r, timing=t, name="write_j"))
        vw = g.add(ValsWrite(vxd_r, timing=t, name="write_vals"))
        # ccj_out is unused in this variant; terminate it.
        from ..primitives.write import StreamSink

        g.add(StreamSink(ccj_out, timing=t, name="sink_cCj"))
    else:
        ck_sink = g.add(
            _crd_sink(g, ck_r, t)
        )
        fw_j = g.add(FiberWrite(ccj_out, timing=t, name="write_j"))
        vw = g.add(ValsWrite(vx_r, timing=t, name="write_vals"))

    return KernelGraph(g.build(), [fw_i, fw_j], vw, (rows, cols))


def _crd_sink(g: SamGraphBuilder, receiver, timing):
    """Terminate an unused coordinate stream."""
    from ..primitives.write import StreamSink

    return StreamSink(receiver, timing=timing, name="sink_crd_k")


def reference(b_dense: np.ndarray, ct_dense: np.ndarray) -> np.ndarray:
    """Dense reference for this formulation: B @ (C^T)^T."""
    return b_dense @ ct_dense.T
