"""Integration tests: SAM kernel graphs against dense numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeadlockError
from repro.sam import CsfTensor
from repro.sam.graphs import (
    build_mmadd,
    build_sddmm,
    build_sparse_mha,
    build_spmspm,
)
from repro.sam.graphs.mha import build_parallel_mha
from repro.sam.primitives import TimingParams
from repro.sam.reference import sddmm as ref_sddmm
from repro.sam.reference import sparse_mha as ref_mha
from repro.sam.tensor import random_dense


def mha_inputs(heads=2, seq_len=8, d=4, density=0.4, seed=0):
    rng = np.random.default_rng(seed)
    mask = (rng.random((heads, seq_len, seq_len)) < density).astype(float)
    for h in range(heads):
        np.fill_diagonal(mask[h], 1.0)  # every row attends to itself
    q = rng.standard_normal((heads, seq_len, d))
    k = rng.standard_normal((heads, seq_len, d))
    v = rng.standard_normal((heads, seq_len, d))
    return mask, q, k, v


class TestMmadd:
    def test_basic(self):
        a = random_dense(6, 8, density=0.5, seed=1)
        b = random_dense(6, 8, density=0.5, seed=2)
        kernel = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), a + b)

    def test_disjoint_patterns(self):
        a = np.diag([1.0, 2.0, 3.0])
        b = np.fliplr(np.diag([4.0, 5.0, 6.0]))
        kernel = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), a + b)

    def test_one_operand_empty(self):
        a = random_dense(4, 4, density=0.5, seed=3)
        b = np.zeros((4, 4))
        kernel = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_mmadd(
                CsfTensor.from_dense(np.zeros((2, 2)), "cc"),
                CsfTensor.from_dense(np.zeros((3, 3)), "cc"),
            )

    def test_bounded_channels_same_result(self):
        a = random_dense(5, 5, density=0.6, seed=4)
        b = random_dense(5, 5, density=0.6, seed=5)
        unbounded = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        su = unbounded.run()
        bounded = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc"), depth=2
        )
        sb = bounded.run()
        assert np.allclose(unbounded.result_dense(), bounded.result_dense())
        # Bounded channels simulate backpressure but results are identical.
        assert su.elapsed_cycles <= sb.elapsed_cycles

    def test_timing_params_change_cycles_not_values(self):
        a = random_dense(5, 5, density=0.6, seed=6)
        b = random_dense(5, 5, density=0.6, seed=7)
        fast = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        sf = fast.run()
        slow = build_mmadd(
            CsfTensor.from_dense(a, "cc"),
            CsfTensor.from_dense(b, "cc"),
            timing=TimingParams(ii=3, stop_bubble=2),
        )
        ss = slow.run()
        assert np.allclose(fast.result_dense(), slow.result_dense())
        assert ss.elapsed_cycles > sf.elapsed_cycles

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.integers(1, 7),
        cols=st.integers(1, 7),
        da=st.floats(0.0, 1.0),
        db=st.floats(0.0, 1.0),
        seed=st.integers(0, 50),
    )
    def test_property_matches_numpy(self, rows, cols, da, db, seed):
        a = random_dense(rows, cols, density=da, seed=seed)
        b = random_dense(rows, cols, density=db, seed=seed + 1000)
        kernel = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), a + b)


class TestSpmspm:
    def test_basic(self):
        b = random_dense(5, 6, density=0.4, seed=1)
        ct = random_dense(7, 6, density=0.4, seed=2)
        kernel = build_spmspm(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(ct, "cc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), b @ ct.T)

    def test_compressed_output_variant(self):
        b = random_dense(5, 6, density=0.4, seed=3)
        ct = random_dense(7, 6, density=0.4, seed=4)
        kernel = build_spmspm(
            CsfTensor.from_dense(b, "cc"),
            CsfTensor.from_dense(ct, "cc"),
            compress_output=True,
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), b @ ct.T)
        # Compression must have dropped the zero results.
        assert np.all(kernel.vals_writer.to_array() != 0)

    def test_inner_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_spmspm(
                CsfTensor.from_dense(np.zeros((2, 3)), "cc"),
                CsfTensor.from_dense(np.zeros((2, 4)), "cc"),
            )

    @settings(max_examples=10, deadline=None)
    @given(
        i=st.integers(1, 5),
        k=st.integers(1, 5),
        j=st.integers(1, 5),
        da=st.floats(0.1, 1.0),
        db=st.floats(0.1, 1.0),
        seed=st.integers(0, 50),
    )
    def test_property_matches_numpy(self, i, k, j, da, db, seed):
        b = random_dense(i, k, density=da, seed=seed)
        ct = random_dense(j, k, density=db, seed=seed + 1000)
        kernel = build_spmspm(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(ct, "cc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), b @ ct.T)


class TestSddmm:
    def test_basic(self):
        s = random_dense(5, 7, density=0.3, seed=5)
        a = random_dense(5, 4, density=1.0, seed=6)
        b = random_dense(7, 4, density=1.0, seed=7)
        kernel = build_sddmm(CsfTensor.from_dense(s, "cc"), a, b)
        kernel.run()
        assert np.allclose(kernel.result_dense(), ref_sddmm(s, a, b))

    def test_shape_checks(self):
        s = CsfTensor.from_dense(np.ones((3, 3)), "cc")
        with pytest.raises(ValueError):
            build_sddmm(s, np.ones((4, 2)), np.ones((3, 2)))
        with pytest.raises(ValueError):
            build_sddmm(s, np.ones((3, 2)), np.ones((3, 5)))

    @settings(max_examples=10, deadline=None)
    @given(
        i=st.integers(1, 5),
        j=st.integers(1, 5),
        k=st.integers(1, 4),
        density=st.floats(0.1, 1.0),
        seed=st.integers(0, 50),
    )
    def test_property_matches_numpy(self, i, j, k, density, seed):
        s = random_dense(i, j, density=density, seed=seed)
        a = random_dense(i, k, density=1.0, seed=seed + 1)
        b = random_dense(j, k, density=1.0, seed=seed + 2)
        kernel = build_sddmm(CsfTensor.from_dense(s, "cc"), a, b)
        kernel.run()
        assert np.allclose(kernel.result_dense(), ref_sddmm(s, a, b))


class TestSparseMha:
    def test_basic(self):
        mask, q, k, v = mha_inputs()
        kernel = build_sparse_mha(CsfTensor.from_dense(mask, "dcc"), q, k, v)
        kernel.run()
        assert np.allclose(kernel.result_dense(), ref_mha(q, k, v, mask))

    def test_bounded_with_adequate_softmax_depth(self):
        mask, q, k, v = mha_inputs(seed=1)
        kernel = build_sparse_mha(
            CsfTensor.from_dense(mask, "dcc"), q, k, v, depth=8, softmax_depth=64
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), ref_mha(q, k, v, mask))

    def test_undersized_softmax_buffer_deadlocks(self):
        """Section VIII-A1: data AND metadata streams deadlock when the
        row buffers are provisioned below the row population."""
        mask, q, k, v = mha_inputs(seed=2)
        kernel = build_sparse_mha(
            CsfTensor.from_dense(mask, "dcc"), q, k, v, depth=8, softmax_depth=2
        )
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_parallel_pipelines_match_and_speed_up(self):
        mask, q, k, v = mha_inputs(heads=4, seed=3)
        serial = build_parallel_mha(mask, q, k, v, parallelism=1)
        s1 = serial.run()
        parallel = build_parallel_mha(mask, q, k, v, parallelism=4)
        s4 = parallel.run()
        assert np.allclose(serial.result_dense(), parallel.result_dense())
        assert np.allclose(serial.result_dense(), ref_mha(q, k, v, mask))
        # Simulated parallelism reduces the simulated makespan.
        assert s4.elapsed_cycles < s1.elapsed_cycles
        # And multiplies the context count (the Table III effect).
        assert parallel.context_count > 3 * serial.context_count

    def test_parallelism_bounds_checked(self):
        mask, q, k, v = mha_inputs(heads=2)
        with pytest.raises(ValueError):
            build_parallel_mha(mask, q, k, v, parallelism=3)

    @settings(max_examples=5, deadline=None)
    @given(
        heads=st.integers(1, 3),
        seq=st.integers(2, 8),
        d=st.integers(1, 4),
        density=st.floats(0.2, 0.9),
        seed=st.integers(0, 30),
    )
    def test_property_matches_numpy(self, heads, seq, d, density, seed):
        mask, q, k, v = mha_inputs(heads, seq, d, density, seed)
        kernel = build_sparse_mha(CsfTensor.from_dense(mask, "dcc"), q, k, v)
        kernel.run()
        assert np.allclose(kernel.result_dense(), ref_mha(q, k, v, mask))
