"""Ablation — inner-product vs Gustavson SpMSpM dataflows.

Not a single paper figure, but the kind of design-space exploration the
paper positions DAM for ("explore various tradeoffs in the system",
Sec. XI): the same kernel, two hardware dataflows, compared on simulated
cycles across sparsity levels.

The structural expectation: the inner-product dataflow iterates every
(i, j) crossing and intersects k-fibers, so its simulated work scales
with the *cross product* of row counts; Gustavson walks only B's
nonzeros and merges scaled C rows, so its work scales with the *flops*.
At low density Gustavson should win on simulated cycles; the gap should
shrink as operands densify.
"""

import numpy as np
from conftest import report

from repro.bench import TextTable
from repro.sam import CsfTensor
from repro.sam.graphs import build_spmspm, build_spmspm_gustavson
from repro.sam.tensor import random_dense

SIZE = 16
DENSITIES = [0.05, 0.1, 0.2, 0.4]


def run_sweep():
    table = TextTable(
        ["density", "inner_cycles", "gustavson_cycles", "gustavson_advantage"],
        title=(
            "Ablation: SpMSpM dataflow choice (simulated cycles, "
            f"{SIZE}x{SIZE})"
        ),
    )
    advantages = []
    for density in DENSITIES:
        b = random_dense(SIZE, SIZE, density=density, seed=10)
        c = random_dense(SIZE, SIZE, density=density, seed=11)
        inner = build_spmspm(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c.T, "cc")
        )
        s_inner = inner.run()
        gustavson = build_spmspm_gustavson(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "dc")
        )
        s_gustavson = gustavson.run()
        assert np.allclose(inner.result_dense(), gustavson.result_dense())
        advantage = s_inner.elapsed_cycles / s_gustavson.elapsed_cycles
        advantages.append(advantage)
        table.add_row(
            density, s_inner.elapsed_cycles, s_gustavson.elapsed_cycles, advantage
        )
    report("ablation_dataflow", table.render())
    return advantages


def test_dataflow_ablation(benchmark):
    advantages = run_sweep()
    # Gustavson wins at low density...
    assert advantages[0] > 1.0
    # ...and its advantage shrinks as the operands densify.
    assert advantages[-1] < advantages[0]
    b = random_dense(SIZE, SIZE, density=0.1, seed=10)
    c = random_dense(SIZE, SIZE, density=0.1, seed=11)
    benchmark.pedantic(
        lambda: build_spmspm_gustavson(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "dc")
        ).run(),
        rounds=3,
        iterations=1,
    )
