"""Timestamped data elements carried by channels.

Every datum traversing a channel is stamped with the earliest simulated time
at which the receiver may observe it (sender's local time at the enqueue
plus the channel's latency).  The stamp is what lets channels bridge between
the sender's and receiver's time zones.
"""

from __future__ import annotations

from typing import Any

from .time import Time


class ChannelElement:
    """A datum plus the simulated time at which it becomes visible."""

    __slots__ = ("time", "data")

    def __init__(self, time: Time, data: Any):
        self.time = time
        self.data = data

    def __iter__(self):
        """Allow ``t, x = element`` unpacking."""
        yield self.time
        yield self.data

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelElement):
            return NotImplemented
        return self.time == other.time and self.data == other.data

    def __repr__(self) -> str:
        return f"ChannelElement(time={self.time}, data={self.data!r})"
