"""True in-process thread parallelism on free-threaded CPython.

The paper's runtime is one OS thread per context with SVA/SVP pairwise
synchronization — exactly what :class:`ThreadedExecutor` implements, and
exactly what the GIL has historically reduced to time-slicing.  CPython
3.13's free-threaded build (``python3.13t``) removes the GIL, so the same
runtime finally delivers the paper's wall-clock scaling without forking.

:class:`FreeThreadedExecutor` reuses the threaded runtime unchanged when
``sys._is_gil_enabled()`` reports the GIL is off:

* SVA stays sound: free-threaded CPython guarantees tear-free attribute
  loads of the integer clock values the ``ViewTime``/``WaitUntil`` paths
  read (per-object synchronization replaces the GIL's implicit acquire),
  and the values remain monotone lower bounds;
* SVP stays ``threading.Condition`` — a real futex park/unpark now that
  waiters and wakers run concurrently.

On a GIL build the executor *falls back* to :class:`ProcessExecutor`
(the fork-based route around the GIL) when fork is available, else to the
plain threaded runtime — so ``executor="free-threaded"`` is safe to
request anywhere and simply does the best the interpreter allows.
"""

from __future__ import annotations

from typing import Optional

from ...obs import Observability
from ..program import Program
from .base import RunSummary
from .registry import gil_disabled, register_executor
from .threaded import ThreadedExecutor


@register_executor("free-threaded", available=gil_disabled)
class FreeThreadedExecutor(ThreadedExecutor):
    """The threaded runtime, truly parallel on free-threaded builds.

    Parameters (beyond :class:`ThreadedExecutor`'s)
    -----------------------------------------------
    workers:
        Worker-count hint forwarded to the process-executor fallback on
        GIL builds; ignored when threads run truly in parallel (the
        runtime is one thread per context either way).
    pin_workers:
        Pin context threads round-robin onto the available CPUs
        (``os.sched_setaffinity``); only applied when the GIL is off.
    steal:
        Forwarded to the process-executor fallback (work stealing).
    """

    name = "free-threaded"

    def __init__(
        self,
        poll_interval: float = 0.05,
        deadlock_grace: float = 2.0,
        obs: Optional[Observability] = None,
        workers: Optional[int] = None,
        pin_workers: bool = False,
        steal: bool = True,
        deadline_s: Optional[float] = None,
        faults=None,
        metrics_interval_s: Optional[float] = None,
        metrics_sink=None,
        superblocks=None,
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
    ):
        super().__init__(
            poll_interval=poll_interval,
            deadlock_grace=deadlock_grace,
            obs=obs,
            deadline_s=deadline_s,
            faults=faults,
            metrics_interval_s=metrics_interval_s,
            metrics_sink=metrics_sink,
            superblocks="auto" if superblocks is None else superblocks,
            checkpoint_interval_s=checkpoint_interval_s,
            checkpoint_path=checkpoint_path,
        )
        self.workers = workers
        self.pin_workers = pin_workers
        self.steal = steal
        self._pin_cpus: dict[int, list[int]] = {}

    @staticmethod
    def parallel_capable() -> bool:
        """True when threads can actually run in parallel here."""
        return gil_disabled()

    def execute(self, program: Program) -> RunSummary:
        if not self.parallel_capable():
            return self._execute_fallback(program)
        if self.pin_workers:
            from .affinity import available_cpus

            cpus = available_cpus() or []
            if cpus:
                self._pin_cpus = {
                    id(ctx): [cpus[index % len(cpus)]]
                    for index, ctx in enumerate(program.contexts)
                }
        return super().execute(program)

    def _drive(self, ctx) -> None:
        cpu_set = self._pin_cpus.get(id(ctx))
        if cpu_set:
            from .affinity import pin_current_process

            pin_current_process(cpu_set)
        super()._drive(ctx)

    def _execute_fallback(self, program: Program) -> RunSummary:
        """GIL build: route around it, keeping the requested semantics."""
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            from .partitioned import ProcessExecutor

            fallback = ProcessExecutor(
                workers=self.workers or 2,
                obs=self.obs,
                deadlock_grace=max(self.deadlock_grace, 0.5),
                steal=self.steal,
                pin_workers=self.pin_workers,
                deadline_s=self.deadline_s,
                faults=self.faults,
                metrics_interval_s=self.metrics_interval_s,
                metrics_sink=self.metrics_sink,
                superblocks=self.superblocks,
                checkpoint_interval_s=self.checkpoint_interval_s,
                checkpoint_path=self.checkpoint_path,
            )
        else:  # pragma: no cover - no-fork platforms
            fallback = ThreadedExecutor(
                poll_interval=self.poll_interval,
                deadlock_grace=self.deadlock_grace,
                obs=self.obs,
                deadline_s=self.deadline_s,
                faults=self.faults,
                metrics_interval_s=self.metrics_interval_s,
                metrics_sink=self.metrics_sink,
                superblocks=self.superblocks,
                checkpoint_interval_s=self.checkpoint_interval_s,
                checkpoint_path=self.checkpoint_path,
            )
        summary = fallback.execute(program)
        summary.executor = f"{self.name}({fallback.name})"
        return summary
