"""Stream terminators: fiber/value writers and the raw stream sink.

Writers materialize output streams back into tensor storage: FiberWrite
builds a :class:`~repro.sam.tensor.CompressedLevel` from a coordinate
stream, ValsWrite collects the values array.  StreamSink records raw
tokens (used heavily by the primitive-level tests).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...core.channel import Receiver
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..tensor import CompressedLevel
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class FiberWrite(SamContext):
    """Build seg/crd arrays from a coordinate stream.

    Every stop closes one fiber at this level (higher stop levels close
    ancestors, which their own writers observe through their own streams).
    After the run, :meth:`to_level` returns the compressed level.
    """

    checkpoint_attrs = ("_token", "seg", "crd")

    def __init__(
        self,
        in_crd: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.seg: list[int] = [0]
        self.crd: list[int] = []
        self._token = UNSET
        self.register(in_crd)

    def run(self):
        deq = self.in_crd.dequeue()
        step = FusedOps(self.tick(), deq)
        step_control = FusedOps(self.tick_control(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                return
            if token.__class__ is Stop:
                res = yield step_control
                self.seg.append(len(self.crd))
                self._token = res[1]
            else:
                res = yield step
                self.crd.append(token)
                self._token = res[1]

    def to_level(self) -> CompressedLevel:
        return CompressedLevel(self.seg, self.crd)


class ValsWrite(SamContext):
    """Collect a value stream's payloads into a numpy array."""

    checkpoint_attrs = ("_token", "vals")

    def __init__(
        self,
        in_val: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.vals: list[float] = []
        self._token = UNSET
        self.register(in_val)

    def run(self):
        deq = self.in_val.dequeue()
        step = FusedOps(self.tick(), deq)
        step_control = FusedOps(self.tick_control(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                return
            if token.__class__ is Stop:
                res = yield step_control
                self._token = res[1]
            else:
                res = yield step
                self.vals.append(token)
                self._token = res[1]

    def to_array(self) -> np.ndarray:
        return np.array(self.vals, dtype=np.float64)


class StreamSink(SamContext):
    """Record every token of a stream verbatim (including controls)."""

    checkpoint_attrs = ("_token", "tokens")

    def __init__(
        self,
        inp: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.inp = inp
        self.tokens: list[Any] = []
        self._token = UNSET
        self.register(inp)

    def run(self):
        deq = self.inp.dequeue()
        step = FusedOps(self.tick(), deq)
        if self._token is UNSET:
            self._token = yield deq
            self.tokens.append(self._token)
        while True:
            if self._token is DONE:
                return
            res = yield step
            self._token = res[1]
            self.tokens.append(self._token)
