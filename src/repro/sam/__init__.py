"""The Sparse Abstract Machine (SAM) on DAM (paper Section VIII).

SAM [29] represents sparse tensor algebra as dataflow graphs of primitive
blocks connected by streams of data interleaved with control tokens.  The
paper's second case study reimplements the original hand-written Python
simulator for SAM's CGRA on top of DAM; this package is that
reimplementation: every primitive is a DAM context, every stream a DAM
channel.

Structure:

* :mod:`repro.sam.token` — stream tokens (stop/done) and stream helpers
* :mod:`repro.sam.tensor` — compressed-sparse-fiber tensors + generators
* :mod:`repro.sam.primitives` — fiber lookup, repeat, intersect, union,
  value arrays, ALUs, reduce, sparse accumulator, crd-drop/hold, writers
* :mod:`repro.sam.graphs` — TACO-style kernel graphs: MMAdd, SpMSpM,
  SDDMM, and sparse multi-head attention
* :mod:`repro.sam.spec` — :class:`ProgramSpec`, the wire-serializable
  description of a kernel run (graph name + tensor payloads + config),
  and the graph registry behind it
* :mod:`repro.sam.reference` — dense numpy reference kernels used by tests

The sibling package :mod:`repro.samlegacy` re-implements the same
primitives in the original simulator's cycle-by-cycle style; it is the
baseline of the Fig. 7 code-size and Fig. 8 performance comparisons.
"""

from .spec import (
    ProgramSpec,
    SpecError,
    build_spec,
    decode_tensor,
    encode_tensor,
    register_graph,
    registered_graphs,
)
from .tensor import CsfTensor, random_sparse_matrix, random_sparse_tensor
from .token import DONE, Done, Stop, clean_stream, stream_values

__all__ = [
    "CsfTensor",
    "ProgramSpec",
    "SpecError",
    "build_spec",
    "decode_tensor",
    "encode_tensor",
    "random_sparse_matrix",
    "random_sparse_tensor",
    "register_graph",
    "registered_graphs",
    "DONE",
    "Done",
    "Stop",
    "clean_stream",
    "stream_values",
]
