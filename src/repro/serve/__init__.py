"""Simulation-as-a-service: a multi-tenant run server for DAM programs.

``repro.serve`` turns the simulator into a long-lived service: clients
submit declarative :class:`~repro.sam.spec.ProgramSpec` payloads (named
graph + tensors + serialized :class:`~repro.core.executor.config.RunConfig`)
over a tiny stdlib HTTP protocol; the server admits them against
per-tenant budgets, coalesces identical in-flight requests, replays
cached partition plans for repeated graph shapes, and streams back the
:class:`~repro.core.executor.base.RunSummary` (plus live metric samples)
as ndjson.  Results are bit-identical to a direct in-process
``Program.run`` — the service adds scheduling, never semantics.

Quick start::

    from repro.serve import ServeConfig, start_in_thread, ServeClient

    handle = start_in_thread(ServeConfig(max_concurrent=2))
    client = ServeClient(handle.address)
    result = client.submit(spec, tenant="alice")
    handle.stop()

Or from a shell: ``python -m repro.serve --port 8750``.
"""

from .client import RunResult, ServeClient
from .errors import AdmissionError, ServeError, TenantBudgetError
from .plancache import CachedPlan, PlanCache
from .pool import RunPool
from .server import ServeConfig, ServerHandle, SimServer, serve, start_in_thread
from .tenants import TenantLedger, TenantPolicy

__all__ = [
    "AdmissionError",
    "CachedPlan",
    "PlanCache",
    "RunPool",
    "RunResult",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "SimServer",
    "TenantBudgetError",
    "TenantLedger",
    "TenantPolicy",
    "serve",
    "start_in_thread",
]
