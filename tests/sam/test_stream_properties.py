"""Property-based tests of the SAM stream grammar.

These pin down the algebraic structure the kernel graphs rely on:

* FiberWrite inverts FiberLookup (scan-then-write reproduces the level);
* joiners implement set algebra on fiber coordinates (intersection /
  union per fiber, order preserved, structure aligned);
* unary blocks preserve control structure exactly;
* the legacy (cycle-based) primitives are stream-for-stream equivalent to
  the DAM primitives on random inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProgramBuilder
from repro.cyclesim import CycleEngine
from repro.sam.primitives import (
    FiberLookup,
    FiberWrite,
    Intersect,
    Reduce,
    RootSource,
    UnaryAlu,
    Union,
)
from repro.sam.tensor import CompressedLevel, CsfTensor, random_dense
from repro.sam.testing import run_block
from repro.sam.token import DONE, Stop, is_control
from repro.samlegacy.primitives import (
    LegacyFiberLookup,
    LegacyStreamSink,
    LegacyStreamSource,
    LegacyUnaryAlu,
)

# ----------------------------------------------------------------------
# Stream generators.
# ----------------------------------------------------------------------


@st.composite
def fiber_stream(draw, max_fibers=4, max_len=5, max_coord=20):
    """A well-formed single-level (crd, ref) stream pair: sorted unique
    coordinates per fiber, one trailing S0 boundary, DONE."""
    n_fibers = draw(st.integers(1, max_fibers))
    crd, ref = [], []
    next_ref = 0
    for index in range(n_fibers):
        coords = sorted(
            draw(
                st.sets(st.integers(0, max_coord), min_size=0, max_size=max_len)
            )
        )
        crd.extend(coords)
        ref.extend(range(next_ref, next_ref + len(coords)))
        next_ref += len(coords)
        boundary = Stop(0) if index < n_fibers - 1 else Stop(0)
        crd.append(boundary)
        ref.append(boundary)
    crd.append(DONE)
    ref.append(DONE)
    return crd, ref


@st.composite
def aligned_pair_streams(draw, max_fibers=3, max_len=5):
    """Two (crd, ref) pairs with identical control structure."""
    n_fibers = draw(st.integers(1, max_fibers))
    streams = [[], [], [], []]  # crd1, ref1, crd2, ref2
    refs = [0, 0]
    for index in range(n_fibers):
        for side in (0, 1):
            coords = sorted(
                draw(st.sets(st.integers(0, 15), min_size=0, max_size=max_len))
            )
            streams[2 * side].extend(coords)
            streams[2 * side + 1].extend(
                range(refs[side], refs[side] + len(coords))
            )
            refs[side] += len(coords)
        boundary = Stop(0)
        for stream in streams:
            stream.append(boundary)
    for stream in streams:
        stream.append(DONE)
    return streams


def split_fibers(stream):
    """Split a single-level stream into per-fiber payload lists."""
    fibers = [[]]
    for token in stream:
        if token is DONE:
            break
        if isinstance(token, Stop):
            fibers.append([])
        else:
            fibers[-1].append(token)
    return fibers[:-1] if fibers and fibers[-1] == [] else fibers


# ----------------------------------------------------------------------
# Scanner <-> writer inversion.
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    density=st.floats(0.15, 1.0),
    seed=st.integers(0, 99),
)
def test_scan_write_roundtrip_reproduces_level(rows, cols, density, seed):
    from hypothesis import assume

    dense = random_dense(rows, cols, density=density, seed=seed)
    tensor = CsfTensor.from_dense(dense, "cc")
    # An all-zero tensor scans to a bare boundary stop, which the writer
    # records as one empty fiber — a grammar artifact covered by the
    # kernel-level empty-operand tests; the inversion property is about
    # populated levels.
    assume(tensor.nnz > 0)

    builder = ProgramBuilder()
    root_s, root_r = builder.unbounded()
    ci_s, ci_r = builder.unbounded()
    ri_s, ri_r = builder.unbounded()
    cj_s, cj_r = builder.unbounded()
    rj_s, rj_r = builder.unbounded()
    builder.add(RootSource(root_s))
    builder.add(FiberLookup(tensor.level(0), root_r, ci_s, ri_s))
    builder.add(FiberLookup(tensor.level(1), ri_r, cj_s, rj_s))
    fw_i = builder.add(FiberWrite(ci_r))
    fw_j = builder.add(FiberWrite(cj_r))
    from repro.sam.primitives.write import StreamSink

    builder.add(StreamSink(rj_r))
    builder.build().run()

    outer: CompressedLevel = tensor.level(0)
    assert fw_i.to_level().seg == outer.seg
    assert fw_i.to_level().crd == outer.crd
    inner: CompressedLevel = tensor.level(1)
    assert fw_j.to_level().seg == inner.seg
    assert fw_j.to_level().crd == inner.crd


# ----------------------------------------------------------------------
# Joiner set algebra.
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(aligned_pair_streams())
def test_intersect_is_per_fiber_set_intersection(streams):
    crd1, ref1, crd2, ref2 = streams
    crd, _, _ = run_block(
        lambda rcv, snd: Intersect(
            rcv[0], rcv[1], rcv[2], rcv[3], snd[0], snd[1], snd[2]
        ),
        [crd1, ref1, crd2, ref2],
        3,
    )
    for out, a, b in zip(
        split_fibers(crd), split_fibers(crd1), split_fibers(crd2)
    ):
        assert out == sorted(set(a) & set(b))


@settings(max_examples=30, deadline=None)
@given(aligned_pair_streams())
def test_union_is_per_fiber_set_union(streams):
    crd1, ref1, crd2, ref2 = streams
    crd, _, _ = run_block(
        lambda rcv, snd: Union(
            rcv[0], rcv[1], rcv[2], rcv[3], snd[0], snd[1], snd[2]
        ),
        [crd1, ref1, crd2, ref2],
        3,
    )
    for out, a, b in zip(
        split_fibers(crd), split_fibers(crd1), split_fibers(crd2)
    ):
        assert out == sorted(set(a) | set(b))


# ----------------------------------------------------------------------
# Control-structure preservation.
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(fiber_stream())
def test_unary_alu_preserves_control_structure(stream_pair):
    crd, _ = stream_pair
    (out,) = run_block(
        lambda rcv, snd: UnaryAlu(rcv[0], snd[0], lambda x: x + 1),
        [crd],
        1,
    )
    assert [t for t in out if is_control(t)] == [t for t in crd if is_control(t)]
    assert [t for t in out if not is_control(t)] == [
        t + 1 for t in crd if not is_control(t)
    ]


@settings(max_examples=25, deadline=None)
@given(fiber_stream())
def test_reduce_emits_one_value_per_fiber(stream_pair):
    crd, _ = stream_pair
    values = [float(t) if not is_control(t) else t for t in crd]
    (out,) = run_block(
        lambda rcv, snd: Reduce(rcv[0], snd[0]),
        [values],
        1,
    )
    fibers = split_fibers(values)
    payloads = [t for t in out if not is_control(t)]
    assert payloads == [float(sum(fiber)) for fiber in fibers]


# ----------------------------------------------------------------------
# Legacy parity on random inputs.
# ----------------------------------------------------------------------


def run_legacy_scan(level, in_ref):
    engine = CycleEngine()
    channel = engine.channel(2)
    engine.add(LegacyStreamSource(channel, in_ref))
    out_crd = engine.channel(2)
    out_ref = engine.channel(2)
    engine.add(LegacyFiberLookup(level, channel, out_crd, out_ref))
    sink_crd = engine.add(LegacyStreamSink(out_crd))
    sink_ref = engine.add(LegacyStreamSink(out_ref))
    engine.run()
    return sink_crd.tokens, sink_ref.tokens


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 99),
)
def test_legacy_scanner_parity(rows, cols, density, seed):
    dense = random_dense(rows, cols, density=density, seed=seed)
    tensor = CsfTensor.from_dense(dense, "cc")
    level = tensor.level(1)
    fibers = level.fiber_count()
    in_ref = list(range(fibers)) + [Stop(0), DONE]

    dam_crd, dam_ref = run_block(
        lambda rcv, snd: FiberLookup(level, rcv[0], snd[0], snd[1]),
        [in_ref],
        2,
    )
    legacy_crd, legacy_ref = run_legacy_scan(level, in_ref)
    assert dam_crd == legacy_crd
    assert dam_ref == legacy_ref


@settings(max_examples=25, deadline=None)
@given(fiber_stream())
def test_legacy_unary_parity(stream_pair):
    crd, _ = stream_pair
    values = [float(t) if not is_control(t) else t for t in crd]
    (dam_out,) = run_block(
        lambda rcv, snd: UnaryAlu(rcv[0], snd[0], lambda x: 3 * x),
        [values],
        1,
    )
    engine = CycleEngine()
    inp = engine.channel(2)
    out = engine.channel(2)
    engine.add(LegacyStreamSource(inp, values))
    engine.add(LegacyUnaryAlu(inp, out, lambda x: 3 * x))
    sink = engine.add(LegacyStreamSink(out))
    engine.run()
    assert dam_out == sink.tokens
