"""Source contexts: inject data into a dataflow graph."""

from __future__ import annotations

from typing import Any, Iterable

from ..core.channel import Sender
from ..core.context import Context
from ..core.ops import IncrCycles
from ..core.time import Time


class IterableSource(Context):
    """Emit every item of an iterable, one per initiation interval.

    ``initial_delay`` models fill latency before the first element; the
    initiation interval (``ii``) is the simulated cycles between issues.
    """

    def __init__(
        self,
        out: Sender,
        items: Iterable[Any],
        ii: Time = 1,
        initial_delay: Time = 0,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.out = out
        self.items = items
        self.ii = ii
        self.initial_delay = initial_delay
        self.register(out)

    def run(self):
        if self.initial_delay:
            yield IncrCycles(self.initial_delay)
        for item in self.items:
            yield self.out.enqueue(item)
            yield IncrCycles(self.ii)


class RampSource(Context):
    """Emit ``0, 1, ..., count - 1`` — a compact numeric source."""

    def __init__(self, out: Sender, count: int, ii: Time = 1, name: str | None = None):
        super().__init__(name=name)
        self.out = out
        self.count = count
        self.ii = ii
        self.register(out)

    def run(self):
        for value in range(self.count):
            yield self.out.enqueue(value)
            yield IncrCycles(self.ii)
