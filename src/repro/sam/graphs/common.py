"""Shared graph-construction helpers for SAM kernels."""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ...contexts import Broadcast
from ...core.channel import Receiver, Sender
from ...core.program import Program, ProgramBuilder
from ..primitives import TimingParams
from ..primitives.write import FiberWrite, ValsWrite


class SamGraphBuilder:
    """A thin wrapper over :class:`ProgramBuilder` with SAM conventions.

    ``depth`` is the default channel capacity (``None`` = unbounded, the
    fast configuration of Fig. 11); ``latency`` the default channel
    latency.  ``timing`` is handed to every primitive, which is how the
    calibration study sweeps timing parameters across a whole graph.
    """

    def __init__(
        self,
        depth: int | None = None,
        latency: int = 1,
        timing: TimingParams | None = None,
    ):
        self.builder = ProgramBuilder()
        self.depth = depth
        self.latency = latency
        self.timing = timing

    def ch(
        self, name: str | None = None, depth: int | None | str = "default"
    ) -> tuple[Sender, Receiver]:
        """A channel with the graph's default geometry.

        Pass an explicit ``depth`` (int or None) to override — used for
        the deep buffering channels (e.g. the softmax row buffer) whose
        sizing the deadlock analysis is about.
        """
        capacity = self.depth if depth == "default" else depth
        return self.builder.channel(capacity, latency=self.latency, name=name)

    def add(self, context: Any) -> Any:
        return self.builder.add(context)

    def fanout(
        self,
        inp: Receiver,
        n: int,
        name: str,
        depths: Sequence[int | None | str] | None = None,
    ) -> list[Receiver]:
        """Broadcast a stream to ``n`` consumers (explicit fanout unit).

        ``depths`` optionally overrides the channel depth per branch —
        used where one branch must buffer far ahead of the others (the
        deadlock-prone row buffers of the attention graphs).
        """
        outs = []
        receivers = []
        for index in range(n):
            depth = depths[index] if depths is not None else "default"
            snd, rcv = self.ch(name=f"{name}_br{index}", depth=depth)
            outs.append(snd)
            receivers.append(rcv)
        self.add(Broadcast(inp, outs, name=f"{name}_bcast"))
        return receivers

    def build(self) -> Program:
        return self.builder.build()


class KernelGraph:
    """A built kernel: the program plus its output writers.

    ``fiber_writers`` are ordered outermost-first; ``assemble`` converts
    the written levels + values into a dense numpy array for verification.
    """

    def __init__(
        self,
        program: Program,
        fiber_writers: Sequence[FiberWrite],
        vals_writer: ValsWrite,
        shape: tuple[int, ...],
        assemble: Callable[["KernelGraph"], np.ndarray] | None = None,
    ):
        self.program = program
        self.fiber_writers = list(fiber_writers)
        self.vals_writer = vals_writer
        self.shape = shape
        self._assemble = assemble
        self.summary = None

    def run(self, executor="sequential", *, config=None, obs=None):
        self.summary = self.program.run(executor=executor, config=config, obs=obs)
        return self.summary

    def result_dense(self) -> np.ndarray:
        """Materialize the output tensor (after :meth:`run`)."""
        if self._assemble is not None:
            return self._assemble(self)
        return assemble_from_levels(
            [fw.to_level() for fw in self.fiber_writers],
            self.vals_writer.to_array(),
            self.shape,
        )

    @property
    def context_count(self) -> int:
        return self.program.context_count()

    @property
    def channel_count(self) -> int:
        return self.program.channel_count()


def assemble_from_levels(levels, vals: np.ndarray, shape) -> np.ndarray:
    """Rebuild a dense array from written compressed levels + values.

    The chain is walked exactly like :meth:`CsfTensor.to_dense`, starting
    from root fiber 0 of the outermost written level.
    """
    from ..tensor import CsfTensor

    return CsfTensor(list(levels), vals, tuple(shape)).to_dense()
