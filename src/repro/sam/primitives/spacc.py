"""SpaccV1: the level-1 sparse accumulator.

Accumulates (coordinate, value) pairs across the ``S0``-separated
subfibers of an outer group, merging duplicate coordinates by addition; at
each outer boundary (``Stop(k >= 1)``) it emits the merged fiber in
coordinate-sorted order followed by ``Stop(k - 1)``.

This is the accumulator behind Gustavson-style products: for
``O(i, :) = sum_j P(i, j) * V(j, :)``, the scaled rows of ``V`` arrive as
consecutive subfibers and the spacc merges them into one output row per
``i``.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class SpaccV1(SamContext):
    """Merge subfibers: (crd, val) streams in, one merged fiber out."""

    checkpoint_attrs = ("_crd", "_val", "_acc", "_emit_index")

    def __init__(
        self,
        in_crd: Receiver,
        in_val: Receiver,
        out_crd: Sender,
        out_val: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.in_val = in_val
        self.out_crd = out_crd
        self.out_val = out_val
        self._crd = UNSET
        self._val = UNSET  # UNSET = not yet pulled for the current crd
        self._acc: dict[int, float] = {}
        self._emit_index = 0  # progress through the current merged flush
        self.register(in_crd, in_val, out_crd, out_val)

    def run(self):
        deq_crd = self.in_crd.dequeue()
        deq_val = self.in_val.dequeue()
        enq_crd = self.out_crd.enqueue(None)
        enq_val = self.out_val.enqueue(None)
        tick = self.tick()
        step = FusedOps(tick, deq_crd)
        skip_control = FusedOps(self.tick_control(), deq_crd)
        emit = FusedOps(enq_crd, enq_val, tick)
        boundary_flush = FusedOps(
            enq_crd, enq_val, self.tick_control(), deq_crd
        )
        if self._crd is UNSET:
            self._crd = yield deq_crd
        while True:
            crd = self._crd
            if crd is DONE:
                if self._val is UNSET:
                    self._val = yield deq_val
                assert self._val is DONE, f"{self.name}: crd done before val done"
                enq_crd.data = enq_val.data = DONE
                yield (enq_crd, enq_val)
                return
            if crd.__class__ is Stop:
                if self._val is UNSET:
                    self._val = yield deq_val
                val = self._val
                assert crd == val, (
                    f"{self.name}: misaligned stops {crd!r} vs {val!r}"
                )
                if crd.level == 0:
                    # Subfiber boundary: keep accumulating across it.
                    res = yield skip_control
                    self._val = UNSET
                    self._crd = res[1]
                    continue
                # Outer boundary: flush the merged fiber.
                coords = sorted(self._acc)
                while self._emit_index < len(coords):
                    coord = coords[self._emit_index]
                    enq_crd.data = coord
                    enq_val.data = self._acc[coord]
                    yield emit
                    self._emit_index += 1
                enq_crd.data = enq_val.data = Stop(crd.level - 1)
                res = yield boundary_flush
                self._acc = {}
                self._emit_index = 0
                self._val = UNSET
                self._crd = res[3]
            else:
                if self._val is UNSET:
                    self._val = yield deq_val
                val = self._val
                assert not isinstance(val, (Stop, type(DONE))), (
                    f"{self.name}: crd payload paired with control {val!r}"
                )
                res = yield step
                self._acc[crd] = self._acc.get(crd, 0.0) + val
                self._val = UNSET
                self._crd = res[1]
