"""Executor-agnostic trace collection.

A :class:`TraceCollector` hands each context its own
:class:`~repro.obs.events.ContextTraceBuffer` and merges the buffers into
one deterministic timeline at query time.  It supersedes the old
sequential-only ``repro.core.trace.Tracer`` (which survives as a thin
compatibility subclass) and is the substrate for the exporters in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

from ..core.time import Time
from .events import ContextTraceBuffer, TraceEvent


class TraceCollector:
    """Collects trace events from any executor; filterable by context
    and channel.

    ``capture_payloads=False`` (default) keeps traces light; enable it to
    record the data values moved by channel operations.  Note that with
    payload capture on, ``ViewTime``-dependent payloads may differ across
    executors (a peer clock read is a lower bound, not an exact value);
    channel payloads are always deterministic.
    """

    def __init__(self, capture_payloads: bool = False):
        self.capture_payloads = capture_payloads
        self._buffers: dict[str, ContextTraceBuffer] = {}
        self._merged: list[TraceEvent] | None = None

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def buffer(self, context: str) -> ContextTraceBuffer:
        """Return (creating if needed) the buffer for ``context``.

        Executors call this from the main thread for every context before
        the run starts, so worker threads only ever *append* to an
        existing buffer — the lock-free discipline.
        """
        buf = self._buffers.get(context)
        if buf is None:
            buf = ContextTraceBuffer(context, self.capture_payloads)
            self._buffers[context] = buf
        return buf

    def record(
        self,
        context: str,
        kind: str,
        channel: str | None,
        time: Time,
        payload: Any = None,
    ) -> None:
        """Append one event on behalf of ``context`` (compatibility API)."""
        self.buffer(context).append(kind, channel, time, payload)

    def clear(self) -> None:
        """Drop every recorded event and buffer.

        The retry ladder calls this between attempts so a failed run's
        partial events cannot pollute the retried run's merge; executors
        re-create their buffers at run start, so clearing is always safe
        between runs.
        """
        self._buffers.clear()
        self._merged = None

    # ------------------------------------------------------------------
    # The merged view.
    # ------------------------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        """All events merged into the deterministic ``(time, context,
        seq)`` order.  Cached; recomputed when new events have arrived."""
        total = sum(len(buf.events) for buf in self._buffers.values())
        if self._merged is None or len(self._merged) != total:
            # Each buffer is already sorted by the key (a context's clock
            # is monotone and seq increments), so an n-way merge suffices.
            streams = [
                buf.events
                for _, buf in sorted(self._buffers.items())
            ]
            self._merged = list(heapq.merge(*streams, key=TraceEvent.sort_key))
        return self._merged

    def buffers(self) -> dict[str, ContextTraceBuffer]:
        """The raw per-context buffers (exporters iterate these)."""
        return self._buffers

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def for_context(self, name: str) -> list[TraceEvent]:
        buf = self._buffers.get(name)
        return list(buf.events) if buf is not None else []

    def for_channel(self, name: str) -> list[TraceEvent]:
        return [event for event in self.events if event.channel == name]

    def kinds(self, kind: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.kind == kind)

    def completion_times(self, channel: str) -> list[Time]:
        """Dequeue times on a channel: the per-stream timeline that the
        calibration study matches against reference traces."""
        return [
            event.time
            for event in self.events
            if event.channel == channel and event.kind == "dequeue"
        ]

    def __len__(self) -> int:
        return sum(len(buf.events) for buf in self._buffers.values())

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)
