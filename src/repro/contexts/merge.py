"""The paper's merge unit (Listing 1).

A two-input merge that repeatedly emits the smaller head of its two sorted
input streams.  It is the paper's running example of the CSPT interface:
two peeks align the inputs, a conditional dequeue consumes the winner, the
initiation interval is charged locally, and the six-cycle pipeline latency
lives on the output channel's visibility stamp.
"""

from __future__ import annotations

from ..core.channel import Receiver, Sender
from ..core.context import Context, UNSET
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from ..core.time import Time


class Merge(Context):
    """Emit the pairwise minimum-first merge of two sorted streams.

    ``ii`` is the initiation interval (2 in the paper's listing).  The
    listing's 6-cycle latency is modeled by constructing the output channel
    with ``latency=6``.  When one input closes, the other is drained
    through unchanged; when both close, the merge finishes (closing its
    output).
    """

    checkpoint_attrs = ("_a_open", "_b_open", "_phase", "_x", "_y", "_winner")

    def __init__(
        self,
        a: Receiver,
        b: Receiver,
        out: Sender,
        ii: Time = 2,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.a = a
        self.b = b
        self.out = out
        self.ii = ii
        self._a_open = True
        self._b_open = True
        # Micro-phase within one firing: 0=peek a, 1=peek b, 2=dequeue the
        # winner, 3=charge the ii, 4=emit.  The drain loop reuses 0/3/4.
        self._phase = 0
        self._x = UNSET
        self._y = UNSET
        self._winner = UNSET
        self.register(a, b, out)

    def run(self):
        while self._a_open and self._b_open:
            if self._phase == 0:
                try:
                    self._x = yield self.a.peek()
                except ChannelClosed:
                    self._a_open = False
                    self._phase = 0
                    break
                self._phase = 1
            if self._phase == 1:
                try:
                    self._y = yield self.b.peek()
                except ChannelClosed:
                    self._b_open = False
                    self._phase = 0
                    break
                self._phase = 2
            if self._phase == 2:
                if self._x <= self._y:
                    yield self.a.dequeue()
                    self._winner = self._x
                else:
                    yield self.b.dequeue()
                    self._winner = self._y
                self._phase = 3
            if self._phase == 3:
                yield IncrCycles(self.ii)
                self._phase = 4
            if self._phase == 4:
                yield self.out.enqueue(self._winner)
                self._phase = 0
        survivor = self.a if self._a_open else self.b
        try:
            while True:
                if self._phase == 0:
                    self._winner = yield survivor.dequeue()
                    self._phase = 3
                if self._phase == 3:
                    yield IncrCycles(self.ii)
                    self._phase = 4
                if self._phase == 4:
                    yield self.out.enqueue(self._winner)
                    self._phase = 0
        except ChannelClosed:
            return
