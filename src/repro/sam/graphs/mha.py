"""Sparse multi-head attention on SAM (Section VIII-A1).

The paper's sparse MHA composes three stages, all expressed with SAM
primitives plus the new memory-movement and non-linear blocks:

1. **Masked scores (SDDMM)**: S = M .* (Q @ K^T) / sqrt(d) — iterate the
   mask's nonzeros (h, i, j), gather Q row (h, i) and K row (h, j) through
   dense fiber lookups, dot over the feature dimension.
2. **Streaming softmax**: exp on surviving scores, a per-row running sum,
   and a divide fed by the row sum *repeated per element*.  The exp stream
   must be buffered while its row sum accumulates — the channel whose
   depth requirement (max row nnz + slack) causes the paper's stochastic
   deadlocks when undersized.  ``softmax_depth`` exposes that knob.
3. **PV accumulation (SpMM)**: each P element scales V row (h, j); a
   sparse accumulator merges the scaled rows over j into O's dense rows.

Heads are an outermost dense level, so one pipeline processes any number
of heads; :func:`build_parallel_mha` instantiates ``parallelism``
independent pipelines over disjoint head slices (the Fig. 9/10 sweep).
"""

from __future__ import annotations

import math

import numpy as np

from ..primitives import (
    ArrayVals,
    BinaryAlu,
    CrdHold,
    FiberLookup,
    FiberWrite,
    Reduce,
    Repeat,
    RepeatSigGen,
    RootSource,
    SpaccV1,
    UnaryAlu,
    ValsWrite,
)
from ..primitives.alu import mul
from ..primitives.write import StreamSink
from ..tensor import CsfTensor, DenseLevel
from .common import KernelGraph, SamGraphBuilder, assemble_from_levels


def _safe_div(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def build_sparse_mha(
    mask: CsfTensor,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    depth: int | None = None,
    softmax_depth: int | None = None,
    latency: int = 1,
    timing=None,
    max_row_nonzeros: int | None = None,
) -> KernelGraph:
    """One sparse-MHA pipeline over all heads of ``mask`` (format 'dcc').

    ``q``, ``k``, ``v`` are dense (H, N, d); ``mask`` is (H, N, N).
    ``softmax_depth`` sizes the exp-stream buffer channel; ``None`` means
    unbounded (always safe), small values reproduce the stochastic
    deadlock of Section VIII-A1.

    ``max_row_nonzeros`` enables the *runtime sparsity guarantee* the
    paper leaves as future work: a :class:`NonzeroLimiter` caps every
    mask row at that many nonzeros (tail policy), which makes a
    ``softmax_depth`` of ``max_row_nonzeros + slack`` provably
    deadlock-free regardless of mask randomness, at the cost of dropping
    attention edges on over-populated rows.
    """
    heads, seq_len, _ = mask.shape
    d_model = q.shape[-1]
    scale = 1.0 / math.sqrt(d_model)
    g = SamGraphBuilder(depth=depth, latency=latency, timing=timing)
    t = g.timing

    # ------------------------------------------------------------------
    # Stage 0: scan the mask structure (h, i, j).
    # ------------------------------------------------------------------
    root_s, root_r = g.ch("rootM")
    g.add(RootSource(root_s, timing=t, name="rootM"))
    cmh_s, cmh_r = g.ch("cMh")
    rmh_s, rmh_r = g.ch("rMh")
    g.add(FiberLookup(mask.level(0), root_r, cmh_s, rmh_s, timing=t, name="scanMh"))
    cmi_s, cmi_r = g.ch("cMi")
    rmi_s, rmi_r = g.ch("rMi")
    g.add(FiberLookup(mask.level(1), rmh_r, cmi_s, rmi_s, timing=t, name="scanMi"))
    cmj_s, cmj_raw = g.ch("cMj_raw")
    rmj_s, rmj_raw = g.ch("rMj_raw")
    g.add(FiberLookup(mask.level(2), rmi_r, cmj_s, rmj_s, timing=t, name="scanMj"))
    if max_row_nonzeros is not None:
        from ..primitives import NonzeroLimiter

        cmj_lim_s, cmj_r = g.ch("cMj")
        rmj_lim_s, rmj_r = g.ch("rMj")
        g.add(
            NonzeroLimiter(
                cmj_raw,
                rmj_raw,
                cmj_lim_s,
                rmj_lim_s,
                max_nonzeros=max_row_nonzeros,
                timing=t,
                name="rowLimiter",
            )
        )
    else:
        cmj_r, rmj_r = cmj_raw, rmj_raw
    g.add(StreamSink(rmj_r, timing=t, name="sink_rMj"))

    cmi_hold, cmi_elem, cmi_write = g.fanout(cmi_r, 3, "cMi")
    cmj_elem, cmj_krow, cmj_sig, cmj_hold2 = g.fanout(cmj_r, 4, "cMj")

    # Row/head indices carried down to per-element streams.
    hi_s, hi_r = g.ch("h_per_i")
    g.add(CrdHold(cmh_r, cmi_hold, hi_s, timing=t, name="holdH"))
    he_s, he_r = g.ch("h_per_elem")
    g.add(CrdHold(hi_r, cmj_hold2, he_s, timing=t, name="holdH2"))
    he_q, he_k = g.fanout(he_r, 2, "h_elem")
    ie_s, ie_r = g.ch("i_per_elem")
    g.add(CrdHold(cmi_elem, cmj_elem, ie_s, timing=t, name="holdI"))

    # Dense row references: Q row = h * N + i, K/V row = h * N + j.
    rq_s, rq_r = g.ch("rQrow")
    g.add(
        BinaryAlu(
            he_q, ie_r, rq_s, lambda h, i: h * seq_len + i, timing=t, name="qRowRef"
        )
    )
    rk_s, rk_r = g.ch("rKrow")
    g.add(
        BinaryAlu(
            he_k, cmj_krow, rk_s, lambda h, j: h * seq_len + j, timing=t, name="kRowRef"
        )
    )
    # The V-gather branch buffers row references while P is computed (it
    # cannot drain until the softmax completes), so it shares the row
    # buffering requirement with the exp stream.
    rk_kd, rk_vc = g.fanout(rk_r, 2, "rKrow", depths=["default", softmax_depth])

    # ------------------------------------------------------------------
    # Stage 1: masked scores (the SDDMM core).
    # ------------------------------------------------------------------
    cqd_s, cqd_r = g.ch("cQd")
    rqd_s, rqd_r = g.ch("rQd")
    g.add(FiberLookup(DenseLevel(d_model), rq_r, cqd_s, rqd_s, timing=t, name="scanQd"))
    ckd_s, ckd_r = g.ch("cKd")
    rkd_s, rkd_r = g.ch("rKd")
    g.add(
        FiberLookup(DenseLevel(d_model), rk_kd, ckd_s, rkd_s, timing=t, name="scanKd")
    )
    g.add(StreamSink(cqd_r, timing=t, name="sink_cQd"))
    g.add(StreamSink(ckd_r, timing=t, name="sink_cKd"))

    vq_s, vq_r = g.ch("vQ")
    vk_s, vk_r = g.ch("vK")
    g.add(ArrayVals(q.reshape(-1), rqd_r, vq_s, timing=t, name="arrayQ"))
    g.add(ArrayVals(k.reshape(-1), rkd_r, vk_s, timing=t, name="arrayK"))
    vqk_s, vqk_r = g.ch("vQK")
    g.add(BinaryAlu(vq_r, vk_r, vqk_s, mul, timing=t, name="mulQK"))
    vdot_s, vdot_r = g.ch("vScore")
    g.add(
        Reduce(vqk_r, vdot_s, suppress_uninhabited=True, timing=t, name="reduceD")
    )

    # ------------------------------------------------------------------
    # Stage 2: streaming softmax.
    # ------------------------------------------------------------------
    vsc_s, vsc_r = g.ch("vScaled")
    g.add(
        UnaryAlu(vdot_r, vsc_s, lambda x: x * scale, timing=t, name="scaleALU")
    )
    vexp_s, vexp_r = g.ch("vExp")
    g.add(UnaryAlu(vsc_r, vexp_s, math.exp, timing=t, name="expALU"))

    # The exp stream splits: one copy feeds the row-sum reduction, the
    # other waits in the row buffer for the sum to come back around.
    esum_s, esum_r = g.ch("e_sum")
    ediv_s, ediv_r = g.ch("e_div", depth=softmax_depth)
    from ...contexts import Broadcast

    g.add(Broadcast(vexp_r, [esum_s, ediv_s], name="e_bcast"))

    vsum_s, vsum_r = g.ch("vRowSum")
    g.add(
        Reduce(esum_r, vsum_s, suppress_uninhabited=True, timing=t, name="rowSum")
    )
    # The repeat signals also pile up while the row sum accumulates, so
    # this channel shares the row-buffer depth requirement with e_div.
    sigdiv_s, sigdiv_r = g.ch("sigDiv", depth=softmax_depth)
    g.add(RepeatSigGen(cmj_sig, sigdiv_s, timing=t, name="repsigDiv"))
    vsrep_s, vsrep_r = g.ch("vSumRep")
    g.add(Repeat(vsum_r, sigdiv_r, vsrep_s, timing=t, name="repeatSum"))
    vp_s, vp_r = g.ch("vP")
    g.add(BinaryAlu(ediv_r, vsrep_r, vp_s, _safe_div, timing=t, name="divALU"))

    # ------------------------------------------------------------------
    # Stage 3: O = P @ V via scaled-row accumulation.
    # ------------------------------------------------------------------
    cvc_s, cvc_r = g.ch("cVc")
    rvc_s, rvc_r = g.ch("rVc")
    g.add(
        FiberLookup(DenseLevel(d_model), rk_vc, cvc_s, rvc_s, timing=t, name="scanVc")
    )
    cvc_acc, cvc_sig = g.fanout(cvc_r, 2, "cVc")
    vv_s, vv_r = g.ch("vV")
    g.add(ArrayVals(v.reshape(-1), rvc_r, vv_s, timing=t, name="arrayV"))

    sigp_s, sigp_r = g.ch("sigP")
    g.add(RepeatSigGen(cvc_sig, sigp_s, timing=t, name="repsigP"))
    vprep_s, vprep_r = g.ch("vPRep")
    g.add(Repeat(vp_r, sigp_r, vprep_s, timing=t, name="repeatP"))
    vpv_s, vpv_r = g.ch("vPV")
    g.add(BinaryAlu(vv_r, vprep_r, vpv_s, mul, timing=t, name="mulPV"))

    co_s, co_r = g.ch("cO")
    vo_s, vo_r = g.ch("vO")
    g.add(SpaccV1(cvc_acc, vpv_r, co_s, vo_s, timing=t, name="spaccJ"))

    # ------------------------------------------------------------------
    # Output writers: O is (H dense, i compressed-from-mask, c written).
    # ------------------------------------------------------------------
    fw_i = g.add(FiberWrite(cmi_write, timing=t, name="write_i"))
    fw_c = g.add(FiberWrite(co_r, timing=t, name="write_c"))
    vw = g.add(ValsWrite(vo_r, timing=t, name="write_vals"))

    def assemble(kernel: KernelGraph) -> np.ndarray:
        return assemble_from_levels(
            [DenseLevel(heads), fw_i.to_level(), fw_c.to_level()],
            kernel.vals_writer.to_array(),
            (heads, seq_len, d_model),
        )

    return KernelGraph(
        g.build(), [fw_i, fw_c], vw, (heads, seq_len, d_model), assemble=assemble
    )


class ParallelMha:
    """``parallelism`` independent MHA pipelines over disjoint head slices.

    All pipelines live in one DAM program, so simulated parallelism (and
    its real cost on each executor) is measured end to end — the Fig. 9
    experiment.  ``elapsed_cycles`` of the combined run is the makespan
    across pipelines.
    """

    def __init__(self, kernels: list[KernelGraph], heads_per_pipe: list[int]):
        from ...core.program import Program

        self.kernels = kernels
        self.heads_per_pipe = heads_per_pipe
        contexts = [ctx for kg in kernels for ctx in kg.program.contexts]
        channels = [ch for kg in kernels for ch in kg.program.channels]
        self.program = Program(contexts, channels)
        self.summary = None

    def run(self, executor="sequential", *, config=None, obs=None):
        self.summary = self.program.run(executor=executor, config=config, obs=obs)
        return self.summary

    def result_dense(self) -> np.ndarray:
        return np.concatenate([kg.result_dense() for kg in self.kernels], axis=0)

    @property
    def context_count(self) -> int:
        return self.program.context_count()

    @property
    def channel_count(self) -> int:
        return self.program.channel_count()


def build_parallel_mha(
    mask_dense: np.ndarray,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    parallelism: int = 1,
    depth: int | None = None,
    softmax_depth: int | None = None,
    latency: int = 1,
    timing=None,
) -> ParallelMha:
    """Split heads across ``parallelism`` pipelines (Fig. 9's sweep knob)."""
    heads = mask_dense.shape[0]
    if parallelism < 1 or parallelism > heads:
        raise ValueError(
            f"parallelism must be in [1, heads={heads}], got {parallelism}"
        )
    bounds = np.linspace(0, heads, parallelism + 1, dtype=int)
    kernels = []
    heads_per_pipe = []
    for pipe in range(parallelism):
        lo, hi = int(bounds[pipe]), int(bounds[pipe + 1])
        if lo == hi:
            continue
        mask_slice = CsfTensor.from_dense(mask_dense[lo:hi], "dcc")
        kernels.append(
            build_sparse_mha(
                mask_slice,
                q[lo:hi],
                k[lo:hi],
                v[lo:hi],
                depth=depth,
                softmax_depth=softmax_depth,
                latency=latency,
                timing=timing,
            )
        )
        heads_per_pipe.append(hi - lo)
    return ParallelMha(kernels, heads_per_pipe)
