"""Shared construction helpers for legacy kernel graphs."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ...cyclesim import CycleChannel, CycleEngine, CycleStats
from ..primitives import LegacyBroadcast, LegacyFiberWrite, LegacyValsWrite

#: The default register-channel depth of the legacy simulator.  Shallow
#: channels are the norm in the original cycle-based style; 2 avoids
#: single-entry ping-pong stalls while keeping the model register-like.
DEFAULT_LEGACY_DEPTH = 2


class LegacyGraphBuilder:
    """CycleEngine wrapper with SAM channel conventions."""

    def __init__(self, depth: int | None = DEFAULT_LEGACY_DEPTH):
        self.engine = CycleEngine()
        self.depth = depth

    def ch(self, name: str | None = None, depth: int | None | str = "default") -> CycleChannel:
        capacity = self.depth if depth == "default" else depth
        return self.engine.channel(capacity=capacity, name=name)

    def add(self, component):
        return self.engine.add(component)

    def fanout(
        self,
        inp: CycleChannel,
        n: int,
        name: str,
        depths=None,
    ) -> list[CycleChannel]:
        outs = [
            self.ch(
                f"{name}_br{i}",
                depth=depths[i] if depths is not None else "default",
            )
            for i in range(n)
        ]
        self.add(LegacyBroadcast(inp, outs, name=f"{name}_bcast"))
        return outs


class LegacyKernelGraph:
    """A built legacy kernel: engine + writers + assembly."""

    def __init__(
        self,
        engine: CycleEngine,
        fiber_writers: Sequence[LegacyFiberWrite],
        vals_writer: LegacyValsWrite,
        shape: tuple[int, ...],
        assemble: Callable[["LegacyKernelGraph"], np.ndarray] | None = None,
    ):
        self.engine = engine
        self.fiber_writers = list(fiber_writers)
        self.vals_writer = vals_writer
        self.shape = shape
        self._assemble = assemble
        self.stats: CycleStats | None = None

    def run(self) -> CycleStats:
        self.stats = self.engine.run()
        return self.stats

    def result_dense(self) -> np.ndarray:
        if self._assemble is not None:
            return self._assemble(self)
        from ...sam.tensor import CsfTensor

        return CsfTensor(
            [fw.to_level() for fw in self.fiber_writers],
            self.vals_writer.to_array(),
            self.shape,
        ).to_dense()

    @property
    def component_count(self) -> int:
        return len(self.engine.components)
