"""Executor behaviour: both runtimes, all policies, identical results.

The central claim under test is the paper's exactness/determinism property:
for the same program, the cooperative executor (any policy) and the
threaded executor report the same simulated cycle counts and deliver the
same data.
"""

import pytest

from repro import (
    Context,
    DeadlockError,
    FairPolicy,
    IncrCycles,
    ProgramBuilder,
    RunConfig,
    SequentialExecutor,
    SimulationError,
    ThreadedExecutor,
    ViewTime,
    WaitUntil,
)
from repro.contexts import (
    BinaryFunction,
    Broadcast,
    Checker,
    Collector,
    IterableSource,
    Merge,
    NullSink,
    RampSource,
    StreamReducer,
    UnaryFunction,
)

EXECUTORS = ["sequential", "threaded"]


def pipeline(n=20, capacity=4, ii=1):
    """source -> double -> +1 -> collector, returning (program, collector)."""
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(capacity)
    s2, r2 = builder.bounded(capacity)
    s3, r3 = builder.bounded(capacity)
    builder.add(RampSource(s1, n, ii=ii))
    builder.add(UnaryFunction(r1, s2, lambda x: 2 * x, ii=ii))
    builder.add(UnaryFunction(r2, s3, lambda x: x + 1, ii=ii))
    collector = builder.add(Collector(r3))
    return builder.build(), collector


@pytest.mark.parametrize("executor", EXECUTORS)
class TestBasicExecution:
    def test_pipeline_values(self, executor):
        program, collector = pipeline()
        program.run(executor=executor)
        assert collector.values == [2 * i + 1 for i in range(20)]

    def test_summary_reports_contexts(self, executor):
        program, _ = pipeline(n=5)
        summary = program.run(executor=executor)
        assert len(summary.context_times) == 4
        assert summary.elapsed_cycles == max(summary.context_times.values())
        assert summary.real_seconds >= 0

    def test_empty_source_closes_cleanly(self, executor):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(IterableSource(snd, []))
        collector = builder.add(Collector(rcv))
        builder.build().run(executor=executor)
        assert collector.values == []

    def test_backpressure_slows_producer(self, executor):
        """A consumer with II=10 backpressures an II=1 producer: the
        producer's finish time is dominated by consumer pacing."""
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2, latency=1, resp_latency=1)
        source = builder.add(RampSource(snd, 50, ii=1))
        builder.add(Collector(rcv, ii=10))
        builder.build().run(executor=executor)
        # Unthrottled the source would finish at ~50 cycles; with the slow
        # consumer it must wait for slots: well beyond 300 cycles.
        assert source.finish_time > 300

    def test_unbounded_channel_never_backpressures(self, executor):
        builder = ProgramBuilder()
        snd, rcv = builder.unbounded()
        source = builder.add(RampSource(snd, 50, ii=1))
        builder.add(Collector(rcv, ii=10))
        builder.build().run(executor=executor)
        assert source.finish_time == 50

    def test_checker_passes_on_correct_stream(self, executor):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 5))
        builder.add(Checker(rcv, [0, 1, 2, 3, 4]))
        builder.build().run(executor=executor)

    def test_checker_failure_surfaces_as_simulation_error(self, executor):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 5))
        builder.add(Checker(rcv, [0, 1, 999, 3, 4]))
        with pytest.raises(SimulationError, match="expected 999"):
            builder.build().run(executor=executor)

    def test_void_channel_lets_producer_finish(self, executor):
        """A receiver that stops early voids the channel; the producer
        completes instead of deadlocking."""

        class TakeTwo(Context):
            def __init__(self, inp):
                super().__init__()
                self.inp = inp
                self.register(inp)

            def run(self):
                yield self.inp.dequeue()
                yield self.inp.dequeue()

        builder = ProgramBuilder()
        snd, rcv = builder.bounded(1)
        source = builder.add(RampSource(snd, 100, ii=1))
        builder.add(TakeTwo(rcv))
        builder.build().run(executor=executor)
        assert source.finish_time is not None

    def test_diamond_graph(self, executor):
        """Broadcast then re-join: exercises fanout + two-input alignment."""
        builder = ProgramBuilder()
        s_in, r_in = builder.bounded(4)
        s_a, r_a = builder.bounded(4)
        s_b, r_b = builder.bounded(4)
        s_out, r_out = builder.bounded(4)
        builder.add(RampSource(s_in, 10))
        builder.add(Broadcast(r_in, [s_a, s_b]))
        builder.add(BinaryFunction(r_a, r_b, s_out, lambda a, b: a + b))
        collector = builder.add(Collector(r_out))
        builder.build().run(executor=executor)
        assert collector.values == [2 * i for i in range(10)]

    def test_merge_sorted_streams(self, executor):
        builder = ProgramBuilder()
        s_a, r_a = builder.bounded(2)
        s_b, r_b = builder.bounded(2)
        s_o, r_o = builder.bounded(2, latency=6)
        builder.add(IterableSource(s_a, [1, 4, 5, 9]))
        builder.add(IterableSource(s_b, [2, 3, 8]))
        builder.add(Merge(r_a, r_b, s_o))
        collector = builder.add(Collector(r_o))
        builder.build().run(executor=executor)
        assert collector.values == [1, 2, 3, 4, 5, 8, 9]

    def test_stream_reducer_groups(self, executor):
        builder = ProgramBuilder()
        s_i, r_i = builder.bounded(4)
        s_o, r_o = builder.bounded(4)
        builder.add(RampSource(s_i, 9))
        builder.add(StreamReducer(r_i, s_o, lambda a, b: a + b, group=3))
        collector = builder.add(Collector(r_o))
        builder.build().run(executor=executor)
        assert collector.values == [3, 12, 21]

    def test_stream_reducer_whole_stream(self, executor):
        builder = ProgramBuilder()
        s_i, r_i = builder.bounded(4)
        s_o, r_o = builder.bounded(4)
        builder.add(RampSource(s_i, 10))
        builder.add(StreamReducer(r_i, s_o, lambda a, b: a + b))
        collector = builder.add(Collector(r_o))
        builder.build().run(executor=executor)
        assert collector.values == [45]

    def test_null_sink_counts(self, executor):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 17))
        sink = builder.add(NullSink(rcv))
        builder.build().run(executor=executor)
        assert sink.count == 17

    def test_view_time_reads_peer_clock(self, executor):
        observed = []

        class Observer(Context):
            def __init__(self, peer, inp):
                super().__init__()
                self.peer = peer
                self.inp = inp
                self.register(inp)

            def run(self):
                yield self.inp.dequeue()  # peer has advanced by now
                observed.append((yield ViewTime(self.peer)))

        builder = ProgramBuilder()
        snd, rcv = builder.bounded(1)
        source = builder.add(IterableSource(snd, ["x"], initial_delay=42))
        builder.add(Observer(source, rcv))
        builder.build().run(executor=executor)
        assert observed[0] >= 42

    def test_wait_until_blocks_until_peer_advances(self, executor):
        results = []

        class Waiter(Context):
            def __init__(self, peer):
                super().__init__()
                self.peer = peer

            def run(self):
                now = yield WaitUntil(self.peer, 100)
                results.append(now)

        class Mover(Context):
            def __init__(self, out):
                super().__init__()
                self.out = out
                self.register(out)

            def run(self):
                for _ in range(20):
                    yield IncrCycles(10)
                    yield self.out.enqueue(0)

        builder = ProgramBuilder()
        snd, rcv = builder.bounded(64)
        mover = builder.add(Mover(snd))
        builder.add(NullSink(rcv))
        builder.add(Waiter(mover))
        builder.build().run(executor=executor)
        assert results[0] >= 100


@pytest.mark.parametrize("executor", EXECUTORS)
class TestDeadlock:
    def test_dependency_cycle_detected(self, executor):
        class Hold(Context):
            def __init__(self, inp, out):
                super().__init__()
                self.inp, self.out = inp, out
                self.register(inp, out)

            def run(self):
                value = yield self.inp.dequeue()
                yield self.out.enqueue(value)

        builder = ProgramBuilder()
        s1, r1 = builder.bounded(1)
        s2, r2 = builder.bounded(1)
        builder.add(Hold(r1, s2))
        builder.add(Hold(r2, s1))
        config = (
            RunConfig(deadlock_grace=0.4) if executor == "threaded" else None
        )
        with pytest.raises(DeadlockError, match="dequeue on empty"):
            builder.build().run(executor=executor, config=config)

    def test_undersized_channel_deadlocks(self, executor):
        """The paper's softmax/reduction deadlock pattern: the consumer only
        drains the data channel after a trailer arrives, but the producer
        cannot emit the trailer until all data has been accepted — so the
        data channel must hold the whole fiber (depth >= N, Section VII-A).
        An undersized channel deadlocks."""

        class ProducerWithTrailer(Context):
            def __init__(self, data, trailer, n):
                super().__init__()
                self.data, self.trailer, self.n = data, trailer, n
                self.register(data, trailer)

            def run(self):
                for i in range(self.n):
                    yield self.data.enqueue(i)
                yield self.trailer.enqueue("sum-ready")

        class TrailerFirstConsumer(Context):
            def __init__(self, data, trailer, n):
                super().__init__()
                self.data, self.trailer, self.n = data, trailer, n
                self.register(data, trailer)

            def run(self):
                yield self.trailer.dequeue()  # needs the reduction result
                for _ in range(self.n):
                    yield self.data.dequeue()

        def build(depth, n):
            builder = ProgramBuilder()
            s_d, r_d = builder.bounded(depth)
            s_t, r_t = builder.bounded(1)
            builder.add(ProducerWithTrailer(s_d, s_t, n))
            builder.add(TrailerFirstConsumer(r_d, r_t, n))
            return builder.build()

        config = (
            RunConfig(deadlock_grace=0.4) if executor == "threaded" else None
        )
        with pytest.raises(DeadlockError):
            build(depth=4, n=100).run(executor=executor, config=config)
        # The correctly sized channel (depth >= N) completes.
        build(depth=100, n=100).run(executor=executor, config=config)


class TestSequentialSpecifics:
    def test_policies_do_not_change_results(self):
        baselines = None
        for policy in ["fifo", "fair", FairPolicy(timeslice=1, boost=True)]:
            program, collector = pipeline(n=30, capacity=2)
            summary = SequentialExecutor(policy=policy).execute(program)
            result = (summary.elapsed_cycles, tuple(collector.values))
            if baselines is None:
                baselines = result
            else:
                assert result == baselines

    def test_fair_policy_counts_preemptions(self):
        program, _ = pipeline(n=50, capacity=2)
        summary = SequentialExecutor(policy=FairPolicy(timeslice=4)).execute(
            program
        )
        assert summary.preemptions > 0

    def test_fifo_fewer_switches_than_boosting_fair(self):
        """The Table I effect in miniature: wakeup boosting ping-pongs."""
        program_fifo, _ = pipeline(n=200, capacity=8)
        fifo = SequentialExecutor(policy="fifo").execute(program_fifo)
        program_fair, _ = pipeline(n=200, capacity=8)
        fair = SequentialExecutor(policy=FairPolicy(timeslice=8)).execute(
            program_fair
        )
        assert fifo.context_switches < fair.context_switches
        assert fifo.elapsed_cycles == fair.elapsed_cycles

    def test_max_ops_guard(self):
        class Spinner(Context):
            def run(self):
                while True:
                    yield IncrCycles(1)

        builder = ProgramBuilder()
        builder.add(Spinner())
        with pytest.raises(SimulationError, match="max_ops"):
            SequentialExecutor(max_ops=100).execute(builder.build())

    def test_non_op_yield_is_an_error(self):
        class Bad(Context):
            def run(self):
                yield "not an op"

        builder = ProgramBuilder()
        builder.add(Bad())
        with pytest.raises(SimulationError, match="non-op"):
            builder.build().run()


class TestCrossExecutorAgreement:
    """Same program, same simulated outcome: the determinism property."""

    def build_mixed_graph(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(3, latency=2)
        s2, r2 = builder.bounded(1, latency=4, resp_latency=3)
        s3, r3 = builder.unbounded(latency=1)
        s4, r4 = builder.bounded(2, latency=6)
        builder.add(RampSource(s1, 40, ii=2, name="src"))
        builder.add(UnaryFunction(r1, s2, lambda x: x * 3, ii=1, name="f1"))
        builder.add(UnaryFunction(r2, s3, lambda x: x - 1, ii=3, name="f2"))
        builder.add(UnaryFunction(r3, s4, lambda x: x % 7, ii=2, name="f3"))
        collector = builder.add(Collector(r4, ii=1, name="sink"))
        return builder.build(), collector

    def test_cycle_exact_agreement(self):
        program_a, col_a = self.build_mixed_graph()
        seq = program_a.run(executor="sequential")
        program_b, col_b = self.build_mixed_graph()
        thr = program_b.run(executor="threaded")
        assert col_a.values == col_b.values
        assert seq.elapsed_cycles == thr.elapsed_cycles
        assert seq.context_times == thr.context_times
