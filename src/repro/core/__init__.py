"""The DAM core: CSPT contexts, time-bridging channels, and executors.

This package implements the paper's primary contribution — see DESIGN.md
section 5 for the precise cycle semantics shared by both executors.
"""

from .channel import (
    Channel,
    ChannelStats,
    Receiver,
    Sender,
    make_channel,
    peak_simulated_occupancy,
)
from .context import Context, ContextGenerator, FunctionContext
from .element import ChannelElement
from .errors import (
    ChannelClosed,
    CheckpointError,
    DamError,
    DeadlockError,
    GraphConstructionError,
    NotCheckpointable,
    RunTimeoutError,
    SimulationError,
    WorkerCrashError,
)
from .faults import (
    ContextFault,
    FaultInjected,
    FaultPlan,
    ShuttleStall,
    WorkerKill,
)
from .ops import (
    AdvanceTo,
    Dequeue,
    Enqueue,
    FusedOps,
    IncrCycles,
    Op,
    Peek,
    ViewTime,
    WaitUntil,
)
from .program import Program, ProgramBuilder
from .time import INFINITY, Time, TimeCell
from .trace import TraceEvent, Tracer

# Executor machinery is imported lazily (PEP 562): building a program
# must not pay for runtimes it never selects, and the registry can
# reject an unknown executor name without importing any of them.
_LAZY_EXECUTOR = {
    "Executor",
    "RunSummary",
    "RunConfig",
    "register_executor",
    "registered_names",
    "resolve_executor",
    "executor_available",
    "SchedulingPolicy",
    "FifoPolicy",
    "FairPolicy",
    "make_policy",
    "SequentialExecutor",
    "ThreadedExecutor",
    "FreeThreadedExecutor",
    "ProcessExecutor",
    "PartitionPlan",
    "ClusterSpec",
    "channel_weights",
    "pins_from_placement",
    "plan_partition",
    "plan_clusters",
    "plan_affinity",
}

# Checkpoint machinery is likewise lazy: most programs never snapshot.
_LAZY_CHECKPOINT = {
    "Checkpoint",
    "CheckpointTimer",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "elastic_pins",
}


def __getattr__(name: str):
    from importlib import import_module

    if name in _LAZY_EXECUTOR:
        value = getattr(import_module(".executor", __name__), name)
    elif name in _LAZY_CHECKPOINT:
        value = getattr(import_module(".checkpoint", __name__), name)
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | _LAZY_EXECUTOR | _LAZY_CHECKPOINT)


__all__ = [
    "Channel",
    "ChannelStats",
    "Sender",
    "Receiver",
    "make_channel",
    "peak_simulated_occupancy",
    "Context",
    "ContextGenerator",
    "FunctionContext",
    "ChannelElement",
    "ChannelClosed",
    "Checkpoint",
    "CheckpointError",
    "CheckpointTimer",
    "DamError",
    "DeadlockError",
    "GraphConstructionError",
    "NotCheckpointable",
    "RunTimeoutError",
    "SimulationError",
    "WorkerCrashError",
    "ContextFault",
    "FaultInjected",
    "FaultPlan",
    "ShuttleStall",
    "WorkerKill",
    "RunSummary",
    "RunConfig",
    "SequentialExecutor",
    "ThreadedExecutor",
    "FreeThreadedExecutor",
    "ProcessExecutor",
    "register_executor",
    "registered_names",
    "resolve_executor",
    "PartitionPlan",
    "ClusterSpec",
    "channel_weights",
    "pins_from_placement",
    "plan_partition",
    "plan_clusters",
    "FifoPolicy",
    "FairPolicy",
    "Op",
    "Enqueue",
    "Dequeue",
    "FusedOps",
    "Peek",
    "IncrCycles",
    "AdvanceTo",
    "ViewTime",
    "WaitUntil",
    "Program",
    "ProgramBuilder",
    "INFINITY",
    "Time",
    "TimeCell",
    "Tracer",
    "TraceEvent",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "elastic_pins",
]
