"""The run pool: bounded execution slots with admission control.

Each admitted request occupies one *slot* while it runs a full
``spec.build() → Program.run()`` job.  Slots are worker threads — the
job inside may itself be a :class:`ProcessExecutor` run that forks
simulation workers, so the pool's ``max_concurrent`` bounds *runs*, not
processes.  Beyond the running slots a short wait queue absorbs bursts;
past that the pool **sheds**: :meth:`try_acquire` raises a typed
:class:`~repro.serve.errors.AdmissionError` instead of queueing
unboundedly.  Shedding is a feature — under sustained overload an
unbounded queue converts every request into a timeout, while a bounded
one keeps latency flat for the requests it does accept.

Accounting (``_pending``) is only touched from the server's event loop,
so it needs no lock; the thread pool below it is the only cross-thread
boundary.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from .errors import AdmissionError


class RunPool:
    """``max_concurrent`` run slots plus a ``queue_limit`` wait queue."""

    def __init__(self, max_concurrent: int = 2, queue_limit: int = 8):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self._threads = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="repro-serve-run"
        )
        #: Requests admitted and not yet finished (running + queued).
        self._pending = 0

    @property
    def capacity(self) -> int:
        return self.max_concurrent + self.queue_limit

    @property
    def pending(self) -> int:
        return self._pending

    def try_acquire(self) -> None:
        """Claim one admission slot or shed with :class:`AdmissionError`."""
        if self._pending >= self.capacity:
            raise AdmissionError(depth=self._pending, limit=self.capacity)
        self._pending += 1

    def release(self) -> None:
        self._pending = max(0, self._pending - 1)

    async def run(self, job: Callable[[], Any]) -> Any:
        """Execute ``job`` on a pool thread; the caller must hold a slot
        from :meth:`try_acquire` (released by the caller, not here)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._threads, job)

    def shutdown(self, wait: bool = True) -> None:
        self._threads.shutdown(wait=wait)

    def snapshot(self) -> dict[str, Any]:
        return {
            "pending": self._pending,
            "max_concurrent": self.max_concurrent,
            "queue_limit": self.queue_limit,
            "capacity": self.capacity,
        }
