"""Unit tests for SAM stream tokens."""

import pytest

from repro.sam.token import (
    ABSENT,
    DONE,
    REPEAT,
    Done,
    Stop,
    clean_stream,
    is_control,
    stream_values,
)


class TestStop:
    def test_equality_by_level(self):
        assert Stop(1) == Stop(1)
        assert Stop(1) != Stop(2)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            Stop(-1)

    def test_bumped(self):
        assert Stop(0).bumped() == Stop(1)
        assert Stop(2).bumped(3) == Stop(5)

    def test_repr(self):
        assert repr(Stop(0)) == "S0"
        assert repr(Stop(3)) == "S3"

    def test_hashable(self):
        assert len({Stop(0), Stop(0), Stop(1)}) == 2


class TestSingletons:
    def test_done_is_singleton(self):
        assert Done() is DONE

    def test_absent_repr(self):
        assert repr(ABSENT) == "N"

    def test_repeat_repr(self):
        assert repr(REPEAT) == "R"

    def test_done_is_not_a_stop(self):
        assert not isinstance(DONE, Stop)


class TestHelpers:
    def test_is_control(self):
        assert is_control(DONE)
        assert is_control(Stop(0))
        assert not is_control(5)
        assert not is_control(ABSENT)  # payload-position marker

    def test_stream_values(self):
        stream = [1, 2, Stop(0), 3, Stop(1), DONE]
        assert list(stream_values(stream)) == [1, 2, 3]

    def test_clean_stream(self):
        assert clean_stream([1, Stop(0), DONE]) == [1, "S0", "D"]
