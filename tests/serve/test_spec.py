"""ProgramSpec: the declarative, wire-serializable run request.

The load-bearing property: a spec that round-trips through JSON and is
then built and run produces **bit-identical** simulated results to a
graph constructed directly in process — for every registered SAM kernel
and every executor.  That equivalence is what lets ``repro.serve`` claim
the service boundary adds no semantics.
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro.core import RunConfig
from repro.sam import CsfTensor
from repro.sam.spec import (
    ProgramSpec,
    SpecError,
    build_spec,
    decode_tensor,
    encode_tensor,
    register_graph,
    registered_graphs,
)
from repro.sam.primitives import TimingParams
from repro.sam.tensor import random_dense

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="fork start method unavailable"
)


# ----------------------------------------------------------------------
# One (tensors, params, direct-builder) recipe per registered graph.
# ----------------------------------------------------------------------


def _spmspm_inputs():
    b = CsfTensor.from_dense(random_dense(6, 6, density=0.3, seed=23), "cc")
    ct = CsfTensor.from_dense(random_dense(6, 6, density=0.3, seed=24), "cc")
    return {"b": b, "c_transposed": ct}, {"depth": 4}


def _gustavson_inputs():
    b = CsfTensor.from_dense(random_dense(6, 6, density=0.3, seed=25), "cc")
    c = CsfTensor.from_dense(random_dense(6, 6, density=0.3, seed=26), "cc")
    return {"b": b, "c": c}, {"depth": 4}


def _mmadd_inputs():
    b = CsfTensor.from_dense(random_dense(6, 6, density=0.5, seed=21), "cc")
    c = CsfTensor.from_dense(random_dense(6, 6, density=0.5, seed=22), "cc")
    return {"b": b, "c": c}, {
        "depth": 3,
        "timing": TimingParams(ii=2, stop_bubble=1),
    }


def _sddmm_inputs():
    rng = np.random.default_rng(31)
    s = CsfTensor.from_dense(random_dense(6, 6, density=0.4, seed=30), "cc")
    return {
        "s": s,
        "a_dense": rng.standard_normal((6, 4)),
        "b_dense": rng.standard_normal((6, 4)),
    }, {"depth": 4, "timing": TimingParams(ii=2)}


def _mha_inputs():
    rng = np.random.default_rng(3)
    H, N, d = 2, 5, 3
    mask = (rng.random((H, N, N)) < 0.5).astype(float)
    for h in range(H):
        np.fill_diagonal(mask[h], 1.0)
    return {
        "mask": CsfTensor.from_dense(mask, "dcc"),
        "q": rng.standard_normal((H, N, d)),
        "k": rng.standard_normal((H, N, d)),
        "v": rng.standard_normal((H, N, d)),
    }, {"depth": 6, "softmax_depth": 32}


_RECIPES = {
    "spmspm": _spmspm_inputs,
    "spmspm_gustavson": _gustavson_inputs,
    "mmadd": _mmadd_inputs,
    "sddmm": _sddmm_inputs,
    "mha": _mha_inputs,
}


def _signature(built, summary):
    channel_stats = tuple(
        (ch.name, ch.stats.enqueues, ch.stats.dequeues, ch.stats.peeks)
        for ch in built.program.channels
    )
    return {
        "elapsed": summary.elapsed_cycles,
        "context_times": summary.context_times,
        "channels": channel_stats,
        "result": built.result_dense().tobytes(),
    }


_EXECUTOR_CONFIGS = [
    ("sequential", RunConfig()),
    ("threaded", RunConfig()),
    pytest.param("process", RunConfig(workers=2), marks=needs_fork),
    ("free-threaded", RunConfig(workers=2)),
]


class TestSpecEquivalence:
    """spec → JSON → spec → build → run must be bit-identical to a
    direct in-process construction, on every executor."""

    @pytest.mark.parametrize("graph", sorted(_RECIPES))
    @pytest.mark.parametrize("executor,config", _EXECUTOR_CONFIGS)
    def test_round_tripped_spec_matches_direct_build(
        self, graph, executor, config
    ):
        tensors, params = _RECIPES[graph]()

        # Direct reference: hand the live tensors to the builder.
        direct_built = ProgramSpec.from_graph_inputs(
            graph, tensors, params
        ).build()
        reference = _signature(
            direct_built, direct_built.program.run(executor, config=config)
        )

        # Wire path: encode, serialize, parse, decode, build, run.
        spec = ProgramSpec.from_graph_inputs(
            graph, tensors, params, config=config, executor=executor
        )
        rebuilt = ProgramSpec.from_json(spec.to_json())
        built, summary = rebuilt.run()
        assert _signature(built, summary) == reference, (
            f"{graph} via spec on {executor} diverged from direct build"
        )


class TestTensorCodec:
    def test_csf_round_trip(self):
        tensor = CsfTensor.from_dense(
            random_dense(5, 7, density=0.4, seed=9), "dc"
        )
        wire = encode_tensor(tensor)
        json.dumps(wire)
        back = decode_tensor(wire)
        assert isinstance(back, CsfTensor)
        assert back.shape == tensor.shape
        assert np.array_equal(back.to_dense(), tensor.to_dense())

    def test_dense_round_trip(self):
        array = np.random.default_rng(1).standard_normal((3, 4))
        back = decode_tensor(encode_tensor(array))
        assert isinstance(back, np.ndarray)
        # JSON floats round-trip exactly (shortest-repr), so bit-equal.
        assert back.tobytes() == array.tobytes()


class TestSpecStrictness:
    def test_unknown_graph_lists_registered_names(self):
        with pytest.raises(SpecError, match="spmspm"):
            ProgramSpec(graph="nope").build()

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(SpecError, match="bogus"):
            ProgramSpec.from_dict({"graph": "spmspm", "bogus": 1})

    def test_bad_config_fails_at_parse_time(self):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            ProgramSpec.from_dict(
                {"graph": "spmspm", "config": {"wrokers": 2}}
            )

    def test_missing_and_stray_tensors(self):
        tensors, params = _RECIPES["spmspm"]()
        spec = ProgramSpec.from_graph_inputs("spmspm", {}, params)
        with pytest.raises(SpecError, match="missing tensor"):
            spec.build()
        tensors["oops"] = tensors["b"]
        spec = ProgramSpec.from_graph_inputs("spmspm", tensors, params)
        with pytest.raises(SpecError, match="unexpected tensor"):
            spec.build()

    def test_builtins_are_registered(self):
        assert {"spmspm", "spmspm_gustavson", "mmadd", "sddmm", "mha"} <= set(
            registered_graphs()
        )


class TestSpecIdentity:
    def test_shape_key_ignores_values_but_not_structure(self):
        tensors, params = _RECIPES["spmspm"]()
        a = ProgramSpec.from_graph_inputs("spmspm", tensors, params)

        # Same sparsity pattern, different values → same shape.
        scaled = {
            name: (
                CsfTensor(t.levels, np.asarray(t.vals) * 2.0, t.shape)
                if isinstance(t, CsfTensor)
                else t * 2.0
            )
            for name, t in tensors.items()
        }
        b = ProgramSpec.from_graph_inputs("spmspm", scaled, params)
        assert a.shape_key() == b.shape_key()
        assert a.payload_key() != b.payload_key()

        # A param change is a different shape.
        c = ProgramSpec.from_graph_inputs("spmspm", tensors, {"depth": 5})
        assert a.shape_key() != c.shape_key()

    def test_payload_key_is_deterministic(self):
        tensors, params = _RECIPES["mmadd"]()
        a = ProgramSpec.from_graph_inputs("mmadd", tensors, params)
        b = ProgramSpec.from_json(a.to_json())
        assert a.payload_key() == b.payload_key()


class TestGraphRegistry:
    def test_registered_graph_builds_through_spec(self):
        name = "test_only_passthrough"

        @register_graph(name, tensors=("b", "c_transposed"))
        def build(b, c_transposed, depth=4):
            from repro.sam.graphs import build_spmspm

            return build_spmspm(b, c_transposed, depth=depth)

        try:
            tensors, params = _RECIPES["spmspm"]()
            direct = ProgramSpec.from_graph_inputs(
                "spmspm", tensors, params
            ).build()
            reference = _signature(direct, direct.program.run())

            spec = ProgramSpec.from_graph_inputs(name, tensors, params)
            built = build_spec(spec.to_json())
            summary = built.program.run()
            assert _signature(built, summary) == reference
        finally:
            # Keep the registry clean for other tests.
            from repro.sam import spec as spec_module

            spec_module._GRAPH_REGISTRY.pop(name, None)
