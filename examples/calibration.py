"""Case study walkthrough: automated timing calibration (Sec. VIII-A4).

Pretend a hardware team handed us RTL simulation traces (here: the same
kernels run under hidden timing parameters).  The autotuner searches the
exposed TimingParams space — initiation interval, post-control pipeline
bubble, channel latency — until the simulator's cycle counts match.

Run:  python examples/calibration.py
"""

from repro.calibrate import Autotuner, SamTimingProblem, make_reference_traces
from repro.calibrate.problem import DEFAULT_WORKLOADS, PARAMETER_SPACE


def main():
    hidden = {"ii": 2, "stop_bubble": 5, "latency": 3}
    print(f"ground truth (hidden from the tuner): {hidden}")

    traces = make_reference_traces(hidden)
    print("reference 'RTL' cycle traces:")
    for workload, cycles in zip(DEFAULT_WORKLOADS, traces):
        print(f"  {workload.kind:>7} {workload.rows}x{workload.cols} "
              f"@ {workload.density:.0%}: {cycles} cycles")

    problem = SamTimingProblem(traces)
    tuner = Autotuner(PARAMETER_SPACE, problem, seed=42)
    result = tuner.tune(iterations=200, target_error=0.0)

    print()
    print(f"evaluations:        {result.evaluations}")
    print(f"best parameters:    {result.best_params}")
    print(f"mean cycle error:   {result.best_error}")
    print(f"converged (<=1cyc): evaluation {result.converged_at(1.0)}")
    print()
    print("error trajectory (best-so-far):")
    for checkpoint in [0, 5, 10, 25, 50, len(result.history) - 1]:
        if checkpoint < len(result.history):
            print(f"  after {checkpoint:>4} evals: {result.history[checkpoint]:.1f}")


if __name__ == "__main__":
    main()
