"""Legacy Intersect and Union: cycle-based two-pointer joiners.

Each joiner must keep both stream heads in registers across cycles (a pop
may land in a cycle where the peer side has nothing yet), plus per-output
readiness checks — the alignment bookkeeping CSPT's blocking peek/dequeue
makes implicit.
"""

from __future__ import annotations

from typing import Any

from ...cyclesim.channel import CycleChannel
from ...sam.token import ABSENT, DONE, Stop
from ..base import LegacySamPrimitive

_EMPTY = object()  # head register is empty, needs a pop


class _LegacyJoinerBase(LegacySamPrimitive):
    def __init__(
        self,
        in_crd1: CycleChannel,
        in_ref1: CycleChannel,
        in_crd2: CycleChannel,
        in_ref2: CycleChannel,
        out_crd: CycleChannel,
        out_ref1: CycleChannel,
        out_ref2: CycleChannel,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.in_crd1 = in_crd1
        self.in_ref1 = in_ref1
        self.in_crd2 = in_crd2
        self.in_ref2 = in_ref2
        self.out_crd = out_crd
        self.out_ref1 = out_ref1
        self.out_ref2 = out_ref2
        # Head registers (crd, ref) for each side.
        self.head1: Any = _EMPTY
        self.href1: Any = _EMPTY
        self.head2: Any = _EMPTY
        self.href2: Any = _EMPTY

    def _fill_heads(self) -> bool:
        """Pop into empty head registers; True when both sides are loaded."""
        if self.head1 is _EMPTY:
            if self.in_crd1.can_pop() and self.in_ref1.can_pop():
                self.head1 = self.in_crd1.pop()
                self.href1 = self.in_ref1.pop()
        if self.head2 is _EMPTY:
            if self.in_crd2.can_pop() and self.in_ref2.can_pop():
                self.head2 = self.in_crd2.pop()
                self.href2 = self.in_ref2.pop()
        return self.head1 is not _EMPTY and self.head2 is not _EMPTY

    def _outputs_ready(self) -> bool:
        return (
            self.out_crd.can_push()
            and self.out_ref1.can_push()
            and self.out_ref2.can_push()
        )

    def _emit(self, crd: Any, ref1: Any, ref2: Any) -> None:
        self.out_crd.push(crd)
        self.out_ref1.push(ref1)
        self.out_ref2.push(ref2)

    def _advance1(self) -> None:
        self.head1 = _EMPTY
        self.href1 = _EMPTY

    def _advance2(self) -> None:
        self.head2 = _EMPTY
        self.href2 = _EMPTY


class LegacyIntersect(_LegacyJoinerBase):
    """Keep coordinates present on both sides."""

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled():
            return
        if not self._fill_heads():
            return
        c1, c2 = self.head1, self.head2
        s1, s2 = isinstance(c1, Stop), isinstance(c2, Stop)
        if c1 is DONE or c2 is DONE:
            if not (c1 is DONE and c2 is DONE):
                raise AssertionError(
                    f"{self.name}: streams ended at different points"
                )
            if self._outputs_ready():
                self._emit(DONE, DONE, DONE)
                self.finished = True
            return
        if s1 and s2:
            if c1.level != c2.level:
                raise AssertionError(
                    f"{self.name}: misaligned stops {c1!r} vs {c2!r}"
                )
            if self._outputs_ready():
                self._emit(c1, c1, c1)
                self.charge()
                self._advance1()
                self._advance2()
            return
        if s1:
            self.charge()
            self._advance2()
            return
        if s2:
            self.charge()
            self._advance1()
            return
        if c1 == c2:
            if self._outputs_ready():
                self._emit(c1, self.href1, self.href2)
                self.charge()
                self._advance1()
                self._advance2()
        elif c1 < c2:
            self.charge()
            self._advance1()
        else:
            self.charge()
            self._advance2()


class LegacyUnion(_LegacyJoinerBase):
    """Keep coordinates present on either side (ABSENT fills the gap)."""

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled():
            return
        if not self._fill_heads():
            return
        c1, c2 = self.head1, self.head2
        s1, s2 = isinstance(c1, Stop), isinstance(c2, Stop)
        if c1 is DONE or c2 is DONE:
            if not (c1 is DONE and c2 is DONE):
                raise AssertionError(
                    f"{self.name}: streams ended at different points"
                )
            if self._outputs_ready():
                self._emit(DONE, DONE, DONE)
                self.finished = True
            return
        if not self._outputs_ready():
            return
        self.charge()
        if s1 and s2:
            if c1.level != c2.level:
                raise AssertionError(
                    f"{self.name}: misaligned stops {c1!r} vs {c2!r}"
                )
            self._emit(c1, c1, c1)
            self._advance1()
            self._advance2()
        elif s1:
            self._emit(c2, ABSENT, self.href2)
            self._advance2()
        elif s2:
            self._emit(c1, self.href1, ABSENT)
            self._advance1()
        elif c1 == c2:
            self._emit(c1, self.href1, self.href2)
            self._advance1()
            self._advance2()
        elif c1 < c2:
            self._emit(c1, self.href1, ABSENT)
            self._advance1()
        else:
            self._emit(c2, ABSENT, self.href2)
            self._advance2()
