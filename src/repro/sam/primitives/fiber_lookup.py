"""The level scanner: SAM's FiberLookup primitive.

For every input reference it streams the referenced fiber's coordinates
and child references; input stop tokens pass through with their level
raised by one, and sibling fibers are separated by ``S0``:

* input ``ref r`` → the fiber's (crd, ref) pairs, with an ``S0`` emitted
  first if a previous fiber in the same group is still open;
* input ``Stop(k)`` → ``Stop(k + 1)``;
* input ``DONE`` → close the open fiber with ``S0`` if needed, then ``D``.

``ABSENT`` references (from a union's missing side) produce empty fibers,
keeping the stop structure aligned across both union branches.

Works over both level kinds (:class:`~repro.sam.tensor.DenseLevel` and
:class:`~repro.sam.tensor.CompressedLevel`): dense levels make this the
dense counterpart ("repeated range generator") used by SDDMM/MHA.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..tensor import Level
from ..token import ABSENT, DONE, Stop
from .base import SamContext, TimingParams


class FiberLookup(SamContext):
    """Scan ``level``: refs in, (crd, ref) fibers out."""

    checkpoint_attrs = ("_token", "_open_fiber")

    def __init__(
        self,
        level: Level,
        in_ref: Receiver,
        out_crd: Sender,
        out_ref: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.level = level
        self.in_ref = in_ref
        self.out_crd = out_crd
        self.out_ref = out_ref
        self._token = UNSET
        self._open_fiber = False  # a fiber was emitted and awaits its boundary
        self.register(in_ref, out_crd, out_ref)

    def run(self):
        level = self.level
        out_crd = self.out_crd
        out_ref = self.out_ref
        deq = self.in_ref.dequeue()
        enq_crd = out_crd.enqueue(None)
        enq_ref = out_ref.enqueue(None)
        emit_control = FusedOps(enq_crd, enq_ref, self.tick_control())
        step_control = FusedOps(enq_crd, enq_ref, self.tick_control(), deq)
        # Constant-data boundary ops (the S0 between sibling fibers) and
        # the shared per-element tick, reused by every cached batch below.
        bound_crd = out_crd.enqueue(Stop(0))
        bound_ref = out_ref.enqueue(Stop(0))
        tick_control = self.tick_control()
        tick = self.tick()
        # Whole-fiber batches keyed by (element count, needs-boundary):
        # one fused yield streams the entire fiber — optional S0 boundary,
        # each element's (crd, ref, tick), and the next input pull —
        # instead of one scheduler round-trip per element.  The op order
        # is exactly the historical one-yield-per-element form's.
        batches = {}
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                if self._open_fiber:
                    enq_crd.data = enq_ref.data = Stop(0)
                    yield emit_control
                    self._open_fiber = False
                enq_crd.data = enq_ref.data = DONE
                yield (enq_crd, enq_ref)
                return
            if token.__class__ is Stop:
                enq_crd.data = enq_ref.data = token.bumped()
                res = yield step_control
                self._open_fiber = False
                self._token = res[3]
                continue
            # A reference (or ABSENT: an empty fiber placeholder).
            if token is ABSENT:
                coords = refs = ()
            else:
                coords, refs = level.fiber(token)
            key = (len(coords), self._open_fiber)
            batch = batches.get(key)
            if batch is None:
                crd_ops = [out_crd.enqueue(None) for _ in coords]
                ref_ops = [out_ref.enqueue(None) for _ in coords]
                subs = (
                    [bound_crd, bound_ref, tick_control]
                    if self._open_fiber
                    else []
                )
                for crd_op, ref_op in zip(crd_ops, ref_ops):
                    subs += (crd_op, ref_op, tick)
                subs.append(deq)
                batch = (FusedOps(*subs), crd_ops, ref_ops)
                batches[key] = batch
            fused, crd_ops, ref_ops = batch
            for crd_op, ref_op, coord, ref in zip(
                crd_ops, ref_ops, coords, refs
            ):
                crd_op.data = coord
                ref_op.data = ref
            res = yield fused
            self._open_fiber = True
            self._token = res[-1]
