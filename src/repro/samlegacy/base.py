"""Shared plumbing for legacy cycle-based SAM primitives."""

from __future__ import annotations

from ..cyclesim.component import CycleComponent


class LegacySamPrimitive(CycleComponent):
    """Base class: a SAM block ticked every cycle.

    A primitive is *done* once it has pushed DONE on all its outputs; the
    subclass sets ``self.finished`` itself.  There is no blocking: every
    tick must re-check channel readiness and stash partial progress in
    instance state — the style the CSPT interface exists to remove.

    Multi-cycle blocks (initiation interval ``ii`` > 1) are modeled with
    yet another piece of hand-managed state: a cooldown counter burned
    down one tick at a time (``stalled``), re-armed after each processed
    token (``charge``).  Contrast with the DAM primitives, where the same
    behaviour is a single ``yield IncrCycles(ii)``.
    """

    def __init__(self, name: str | None = None, ii: int = 1):
        super().__init__(name=name)
        if ii < 1:
            raise ValueError("ii must be >= 1")
        self.ii = ii
        self._cooldown = 0

    def stalled(self) -> bool:
        """Burn one cooldown tick; True while the block is busy."""
        if self._cooldown > 0:
            self._cooldown -= 1
            return True
        return False

    def charge(self) -> None:
        """Arm the initiation-interval cooldown after processing a token."""
        self._cooldown = self.ii - 1
