"""Process executor: shm primitives, partitioning, and cross-process
equivalence with the in-process executors."""

import os

import pytest

from repro import (
    DeadlockError,
    FunctionContext,
    GraphConstructionError,
    IncrCycles,
    Observability,
    ProcessExecutor,
    ProgramBuilder,
    RunConfig,
    SimulationError,
    channel_weights,
    plan_partition,
)
from repro.core.executor.shm import (
    ArenaLayout,
    RecordTooLarge,
    SharedArena,
    SharedClockArray,
    SharedTimeCell,
    SharedTimeView,
    ShmRing,
)
from repro.core.ops import Peek, WaitUntil
from repro.core.time import INFINITY


# ----------------------------------------------------------------------
# Shared-memory primitives.
# ----------------------------------------------------------------------


class TestShmRing:
    def _ring(self, capacity):
        arena = SharedArena(ShmRing.size_for(capacity))
        ring = arena.adopt(ShmRing(arena.view(0, ShmRing.size_for(capacity)), capacity))
        return arena, ring

    def test_fifo_roundtrip(self):
        arena, ring = self._ring(4096)
        try:
            records = [("d", i, {"payload": i * 2}) for i in range(50)]
            for record in records:
                assert ring.try_push(record)
            popped = []
            while True:
                ok, record = ring.try_pop()
                if not ok:
                    break
                popped.append(record)
            assert popped == records
        finally:
            arena.close()
            arena.unlink()

    def test_wraparound_preserves_order(self):
        arena, ring = self._ring(256)
        try:
            sent = 0
            received = []
            # Push/pop interleaved far past the capacity so records wrap.
            for round_ in range(200):
                while ring.try_push(("d", sent, "x" * (sent % 17))):
                    sent += 1
                while True:
                    ok, record = ring.try_pop()
                    if not ok:
                        break
                    received.append(record)
            assert [r[1] for r in received] == list(range(len(received)))
            assert len(received) > 100
        finally:
            arena.close()
            arena.unlink()

    def test_full_ring_rejects_then_accepts(self):
        arena, ring = self._ring(64)
        try:
            pushed = 0
            while ring.try_push(("d", pushed)):
                pushed += 1
            assert pushed >= 1
            assert not ring.try_push(("d", pushed))
            ok, _ = ring.try_pop()
            assert ok
            assert ring.try_push(("d", pushed))
        finally:
            arena.close()
            arena.unlink()

    def test_oversized_record_raises(self):
        arena, ring = self._ring(64)
        try:
            with pytest.raises(RecordTooLarge):
                ring.try_push("y" * 1024)
        finally:
            arena.close()
            arena.unlink()


class TestSharedClocks:
    def test_cell_mirrors_and_view_reads(self):
        arena = SharedArena(SharedClockArray.size_for(2))
        try:
            clocks = arena.adopt(
                SharedClockArray(arena.view(0, SharedClockArray.size_for(2)), 2)
            )
            cell = SharedTimeCell(clocks, 0)
            view = SharedTimeView(clocks, 0)
            assert view.now() == 0.0
            cell.incr(5)
            assert view.now() == 5.0
            cell.advance(42)
            assert view.now() == 42.0
            cell.advance(3)  # backwards advance is a no-op
            assert view.now() == 42.0
            assert not view.finished
            cell.finish()
            assert view.now() == INFINITY
            assert view.finished
            with pytest.raises(RuntimeError):
                view.incr(1)
        finally:
            arena.close()
            arena.unlink()


# ----------------------------------------------------------------------
# Partition planning.
# ----------------------------------------------------------------------


def _chain(builder, names, capacity=4):
    """A producer -> relay... -> consumer chain; returns contexts."""
    contexts = []
    prev_rcv = None
    for index, name in enumerate(names):
        last = index == len(names) - 1
        if not last:
            snd, rcv = builder.bounded(capacity, name=f"{name}_out")
        if index == 0:
            def producer(snd=snd):
                for k in range(20):
                    yield snd.enqueue(k)
                    yield IncrCycles(1)
            ctx = FunctionContext(producer, handles=[snd], name=name)
        elif last:
            def consumer(rcv=prev_rcv):
                while True:
                    yield rcv.dequeue()
                    yield IncrCycles(1)
            ctx = FunctionContext(consumer, handles=[prev_rcv], name=name)
        else:
            def relay(rcv=prev_rcv, snd=snd):
                while True:
                    value = yield rcv.dequeue()
                    yield snd.enqueue(value)
            ctx = FunctionContext(relay, handles=[prev_rcv, snd], name=name)
        builder.add(ctx)
        contexts.append(ctx)
        if not last:
            prev_rcv = rcv
    return contexts


class TestPartitionPlan:
    def test_single_worker_is_trivial(self):
        builder = ProgramBuilder()
        _chain(builder, ["a", "b", "c"])
        program = builder.build()
        plan = plan_partition(program, 1)
        assert plan.workers_used == 1
        assert plan.cut == []
        assert plan.cut_weight == 0.0

    def test_independent_components_split_with_zero_cut(self):
        builder = ProgramBuilder()
        _chain(builder, ["a0", "b0"])
        _chain(builder, ["a1", "b1"])
        program = builder.build()
        plan = plan_partition(program, 2)
        assert plan.workers_used == 2
        assert plan.cut == []
        # Components stay whole: paired contexts share a worker.
        assignment = {ctx.name: plan.assignment[id(ctx)] for ctx in program.contexts}
        assert assignment["a0"] == assignment["b0"]
        assert assignment["a1"] == assignment["b1"]
        assert assignment["a0"] != assignment["a1"]

    def test_heavy_edges_kept_inside_partitions(self):
        builder = ProgramBuilder()
        contexts = _chain(builder, ["a", "b", "c", "d"])
        program = builder.build()
        weights = {"a_out": 100.0, "b_out": 1.0, "c_out": 100.0}
        plan = plan_partition(program, 2, weights=weights, balance=1.0)
        cut_names = [ch.name for ch in plan.cut]
        assert cut_names == ["b_out"]
        assert plan.cut_weight == 1.0

    def test_pins_are_honored(self):
        builder = ProgramBuilder()
        contexts = _chain(builder, ["a", "b"])
        program = builder.build()
        pins = {id(contexts[0]): 0, id(contexts[1]): 1}
        plan = plan_partition(program, 2, pins=pins)
        assert plan.assignment[id(contexts[0])] == 0
        assert plan.assignment[id(contexts[1])] == 1
        assert [ch.name for ch in plan.cut] == ["a_out"]

    def test_invalid_pins_rejected(self):
        builder = ProgramBuilder()
        contexts = _chain(builder, ["a", "b"])
        program = builder.build()
        with pytest.raises(GraphConstructionError):
            plan_partition(program, 2, pins={id(contexts[0]): 7})
        with pytest.raises(GraphConstructionError):
            plan_partition(program, 2, pins={12345: 0})
        with pytest.raises(GraphConstructionError):
            plan_partition(program, 0)

    def test_channel_weights_average_same_named_clones(self):
        builder = ProgramBuilder()
        _chain(builder, ["a", "b"])
        program = builder.build()
        program.run()
        weights = channel_weights(program)
        assert weights["a_out"] == 40.0  # 20 enqueues + 20 dequeues

    def test_builder_pin_validation(self):
        builder = ProgramBuilder()
        ctx = _chain(builder, ["a", "b"])[0]
        with pytest.raises(GraphConstructionError):
            builder.pin(ctx, -1)
        # Pinning a context that was never added fails at build time.
        orphan_builder = ProgramBuilder()
        _chain(orphan_builder, ["c", "d"])
        orphan = FunctionContext(lambda: iter(()), name="orphan")
        orphan_builder.pin(orphan, 0)
        with pytest.raises(GraphConstructionError):
            orphan_builder.build()

    def test_builder_pins_reach_the_program(self):
        builder = ProgramBuilder()
        contexts = _chain(builder, ["a", "b"])
        builder.pin(contexts[0], 1)
        program = builder.build()
        assert program.partition_pins == {id(contexts[0]): 1}


# ----------------------------------------------------------------------
# End-to-end equivalence on small graphs.
# ----------------------------------------------------------------------


def _pipeline_program(pin=None):
    """prod -> mid -> cons with bounded channels, peeks, and a result."""
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(3, latency=2, name="ab")
    s2, r2 = builder.bounded(2, latency=1, resp_latency=3, name="bc")

    def producer():
        for value in range(60):
            yield s1.enqueue(value)
            yield IncrCycles(1)

    def middle():
        while True:
            head = yield Peek(r1)
            value = yield r1.dequeue()
            assert head == value
            yield IncrCycles(2)
            yield s2.enqueue(value * 3)

    def consumer(ctx):
        ctx.total = 0
        while True:
            value = yield r2.dequeue()
            ctx.total += value
            yield IncrCycles(1)

    prod = builder.add(FunctionContext(producer, handles=[s1], name="prod"))
    mid = builder.add(FunctionContext(middle, handles=[r1, s2], name="mid"))
    cons = builder.add(
        FunctionContext(consumer, handles=[r2], name="cons", pass_context=True)
    )
    if pin is not None:
        for ctx, worker in zip((prod, mid, cons), pin):
            builder.pin(ctx, worker)
    return builder.build()


def _fingerprint(program, summary):
    stats = {
        ch.name: (ch.stats.enqueues, ch.stats.dequeues, ch.stats.peeks)
        for ch in program.channels
    }
    total = next(ctx for ctx in program.contexts if ctx.name == "cons").total
    return (summary.elapsed_cycles, summary.context_times, stats, total)


class TestProcessEquivalence:
    def test_matches_sequential_across_worker_counts(self):
        reference_program = _pipeline_program()
        reference = _fingerprint(reference_program, reference_program.run())
        for workers, pin in [(1, None), (2, (0, 0, 1)), (3, (0, 1, 2))]:
            program = _pipeline_program(pin=pin)
            summary = program.run(
                executor="process", config=RunConfig(workers=workers)
            )
            assert _fingerprint(program, summary) == reference

    def test_pipe_shuttle_matches_shm(self):
        program = _pipeline_program(pin=(0, 1, 1))
        summary = program.run(
            executor="process", config=RunConfig(workers=2, shuttle="pipe")
        )
        reference_program = _pipeline_program()
        reference = _fingerprint(reference_program, reference_program.run())
        assert _fingerprint(program, summary) == reference

    def test_tiny_ring_still_exact(self):
        # A 96-byte data ring forces constant backlog-and-flush cycles.
        program = _pipeline_program(pin=(0, 1, 2))
        summary = program.run(
            executor="process",
            config=RunConfig(
                workers=3,
                extra={"ring_capacity": 96, "resp_ring_capacity": 96},
            ),
        )
        reference_program = _pipeline_program()
        reference = _fingerprint(reference_program, reference_program.run())
        assert _fingerprint(program, summary) == reference

    def test_trace_merge_identical_to_sequential(self):
        obs_seq = Observability(capture_payloads=True)
        reference_program = _pipeline_program()
        reference_program.run(obs=obs_seq)

        obs_proc = Observability(capture_payloads=True)
        program = _pipeline_program(pin=(0, 0, 1))
        program.run(
            executor="process", config=RunConfig(workers=2), obs=obs_proc
        )

        def flatten(trace):
            # Worker-scoped pseudo-buffers ("<worker-N>" migrate events)
            # describe the real run, not the simulation: a startup-race
            # steal may or may not happen.  Per-context streams must
            # still match the sequential run exactly.
            return [
                (e.context, e.kind, e.channel, e.time, e.payload, e.seq)
                for e in trace.events
                if not e.context.startswith("<worker-")
            ]

        assert flatten(obs_proc.trace) == flatten(obs_seq.trace)

    def test_chrome_trace_export_identical(self, tmp_path):
        obs_seq = Observability()
        _pipeline_program().run(obs=obs_seq)
        obs_proc = Observability()
        _pipeline_program(pin=(0, 1, 1)).run(
            executor="process", config=RunConfig(workers=2), obs=obs_proc
        )
        seq_events = obs_seq.chrome_trace()["traceEvents"]
        proc_events = obs_proc.chrome_trace()["traceEvents"]

        def strip(events):
            # Drop scheduling-only artifacts (worker pseudo-tracks and
            # their migrate slices — present only if a steal happened)
            # along with the process/thread ids; everything simulated
            # must be byte-identical.
            kept = []
            for e in events:
                if e.get("name") == "migrate":
                    continue
                if e.get("ph") == "M" and str(
                    e.get("args", {}).get("name", "")
                ).startswith("<worker-"):
                    continue
                kept.append(
                    {k: v for k, v in e.items() if k not in ("pid", "tid")}
                )
            return kept

        assert strip(proc_events) == strip(seq_events)

    def test_metrics_folded_with_process_gauges(self):
        obs = Observability()
        program = _pipeline_program(pin=(0, 1, 2))
        summary = program.run(
            executor="process", config=RunConfig(workers=3), obs=obs
        )
        counters = summary.metrics["counters"]
        assert counters["channel_enqueues{channel=ab}"] == 60
        assert counters["channel_peeks{channel=ab}"] == 60
        assert counters["context_ops{context=prod}"] > 0
        gauges = summary.metrics["gauges"]
        assert gauges["process_workers"] == 3
        assert gauges["process_cut_channels"] == 2

    def test_remote_wait_until(self):
        builder = ProgramBuilder()
        # Roomy channel: `fast` must never block on backpressure, or it
        # stalls before its clock reaches the WaitUntil threshold.
        snd, rcv = builder.bounded(16, name="tick")

        def fast():
            for value in range(10):
                yield snd.enqueue(value)
                yield IncrCycles(10)

        def watcher(ctx, peer):
            reached = yield WaitUntil(peer, 50)
            ctx.reached = reached
            while True:
                yield rcv.dequeue()

        fast_ctx = builder.add(FunctionContext(fast, handles=[snd], name="fast"))

        def watcher_body(ctx):
            return watcher(ctx, fast_ctx)

        watch_ctx = builder.add(
            FunctionContext(watcher_body, handles=[rcv], name="watch",
                            pass_context=True)
        )
        builder.pin(fast_ctx, 0)
        builder.pin(watch_ctx, 1)
        program = builder.build()
        program.run(executor="process", config=RunConfig(workers=2))
        watcher_parent = next(c for c in program.contexts if c.name == "watch")
        assert watcher_parent.reached >= 50


# ----------------------------------------------------------------------
# Failure modes.
# ----------------------------------------------------------------------


def _deadlock_pair(builder):
    s1, r1 = builder.bounded(2, name="x")
    s2, r2 = builder.bounded(2, name="y")

    def ctx_a():
        value = yield r2.dequeue()
        yield s1.enqueue(value)

    def ctx_b():
        value = yield r1.dequeue()
        yield s2.enqueue(value)

    a = builder.add(FunctionContext(ctx_a, handles=[s1, r2], name="A"))
    b = builder.add(FunctionContext(ctx_b, handles=[s2, r1], name="B"))
    return a, b


class TestProcessFailures:
    def test_local_deadlock_detected_without_watchdog(self):
        builder = ProgramBuilder()
        _deadlock_pair(builder)
        program = builder.build()
        # Both contexts land in one worker: a purely local cycle, reported
        # by the worker itself (no grace period needed — keep it long to
        # prove the watchdog was not involved).
        with pytest.raises(DeadlockError) as excinfo:
            program.run(
                executor="process",
                config=RunConfig(workers=1, deadlock_grace=30.0),
            )
        message = str(excinfo.value)
        assert "A" in message and "B" in message

    def test_cross_worker_deadlock_watchdog(self):
        builder = ProgramBuilder()
        a, b = _deadlock_pair(builder)
        builder.pin(a, 0)
        builder.pin(b, 1)
        program = builder.build()
        obs = Observability()
        with pytest.raises(DeadlockError):
            program.run(
                executor="process",
                config=RunConfig(workers=2, deadlock_grace=0.3),
                obs=obs,
            )
        assert obs.stall_report is not None
        assert {stall.context for stall in obs.stall_report.stalls} == {"A", "B"}

    def test_worker_exception_propagates(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2, name="z")

        def bad():
            yield snd.enqueue(1)
            raise ValueError("boom")

        def consumer():
            while True:
                yield rcv.dequeue()

        p = builder.add(FunctionContext(bad, handles=[snd], name="bad"))
        c = builder.add(FunctionContext(consumer, handles=[rcv], name="cons"))
        builder.pin(p, 0)
        builder.pin(c, 1)
        program = builder.build()
        with pytest.raises(SimulationError) as excinfo:
            program.run(
                executor="process",
                config=RunConfig(workers=2, deadlock_grace=0.5),
            )
        assert excinfo.value.context_name == "bad"
        assert isinstance(excinfo.value.original, ValueError)

    def test_max_ops_valve(self):
        builder = ProgramBuilder()
        snd, rcv = builder.unbounded(name="loop")

        def forever():
            value = 0
            while True:
                yield snd.enqueue(value)
                yield IncrCycles(1)
                value += 1

        def drain():
            while True:
                yield rcv.dequeue()

        builder.add(FunctionContext(forever, handles=[snd], name="fw"))
        builder.add(FunctionContext(drain, handles=[rcv], name="dr"))
        program = builder.build()
        with pytest.raises(SimulationError):
            program.run(
                executor="process", config=RunConfig(workers=1, max_ops=500)
            )


# ----------------------------------------------------------------------
# Satellites: peek counting and generator cleanup on abort.
# ----------------------------------------------------------------------


class TestPeekStats:
    def test_peeks_counted_and_exported(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4, name="peeked")

        def producer():
            for value in range(5):
                yield snd.enqueue(value)

        def consumer():
            while True:
                yield Peek(rcv)
                yield Peek(rcv)
                yield rcv.dequeue()

        builder.add(FunctionContext(producer, handles=[snd], name="p"))
        builder.add(FunctionContext(consumer, handles=[rcv], name="c"))
        program = builder.build()
        obs = Observability()
        summary = program.run(obs=obs)
        channel = program.channels[0]
        assert channel.stats.peeks == 10
        assert channel.stats.dequeues == 5
        assert summary.metrics["counters"]["channel_peeks{channel=peeked}"] == 10


class TestGeneratorCleanupOnAbort:
    def test_finally_blocks_run_on_deadlock(self):
        cleaned = []
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2, name="x")
        s2, r2 = builder.bounded(2, name="y")

        def ctx_a():
            try:
                value = yield r2.dequeue()  # waits on B, which waits on A
                yield s1.enqueue(value)
            finally:
                cleaned.append("A")

        def ctx_b():
            try:
                value = yield r1.dequeue()
                yield s2.enqueue(value)
            finally:
                cleaned.append("B")

        builder.add(FunctionContext(ctx_a, handles=[s1, r2], name="A"))
        builder.add(FunctionContext(ctx_b, handles=[s2, r1], name="B"))
        program = builder.build()
        with pytest.raises(DeadlockError):
            program.run()
        assert sorted(cleaned) == ["A", "B"]

    def test_finally_blocks_run_on_context_error(self):
        cleaned = []
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(1, name="c")

        def blocked():
            try:
                yield rcv.dequeue()  # never satisfied: crasher dies first
            finally:
                cleaned.append("blocked")

        def crasher():
            yield IncrCycles(1)
            raise RuntimeError("abort the run")
            yield snd.enqueue(0)  # pragma: no cover - keeps snd owned

        builder.add(FunctionContext(blocked, handles=[rcv], name="blocked"))
        builder.add(FunctionContext(crasher, handles=[snd], name="crasher"))
        program = builder.build()
        with pytest.raises(SimulationError):
            program.run()
        assert cleaned == ["blocked"]
