"""Executor-agnostic observability: tracing, metrics, and exporters.

DAM's pitch is that functionality and timing live together in each
context; this package makes the *timing* half inspectable on every
executor.  The pieces:

* :mod:`~repro.obs.events` — per-context lock-free event buffers, merged
  deterministically by ``(time, context, seq)``;
* :mod:`~repro.obs.trace` — :class:`TraceCollector`, the executor-agnostic
  replacement for the old sequential-only ``Tracer``;
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and histograms folded into ``RunSummary.metrics``;
* :mod:`~repro.obs.export` — Chrome trace-event / Perfetto JSON and CSV;
* :mod:`~repro.obs.stall` — deadlock stall reports naming the blocking
  channel and both endpoint clocks.

:class:`Observability` bundles them for the common case::

    obs = Observability(capture_payloads=True)
    summary = program.run(executor="threaded", obs=obs)
    obs.write_chrome_trace("run.json")     # load in ui.perfetto.dev
    print(summary.metrics["counters"]["context_ops{context=worker}"])
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from .events import ContextTraceBuffer, TraceEvent
from .export import to_chrome_trace, to_csv, write_chrome_trace, write_csv
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fold_channel_metrics,
    fold_context_metrics,
)
from .stall import ContextStall, StallReport, stall_for
from .trace import TraceCollector

__all__ = [
    "ContextStall",
    "ContextTraceBuffer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "StallReport",
    "TraceCollector",
    "TraceEvent",
    "fold_channel_metrics",
    "fold_context_metrics",
    "stall_for",
    "to_chrome_trace",
    "to_csv",
    "write_chrome_trace",
    "write_csv",
]


class Observability:
    """One handle bundling a trace collector and a metrics registry.

    Pass it to either executor (or ``program.run(obs=...)``); after the
    run, query ``obs.trace`` / ``obs.metrics``, export with the ``write_*``
    methods, and — if the run deadlocked — read ``obs.stall_report``.

    ``trace=False`` or ``metrics=False`` disables that half entirely
    (disabled tracing costs one pointer check per operation).
    """

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        capture_payloads: bool = False,
    ):
        self.trace: TraceCollector | None = (
            TraceCollector(capture_payloads=capture_payloads) if trace else None
        )
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics else None
        )
        #: Populated by the executor when the run deadlocks.
        self.stall_report: StallReport | None = None
        #: Populated by the process executor's supervisor when a worker
        #: process crashes (a :class:`~repro.core.errors.WorkerCrashError`).
        self.crash_report = None

    @classmethod
    def from_trace(cls, trace: TraceCollector) -> "Observability":
        """Wrap an existing collector (the legacy ``tracer=`` path)."""
        obs = cls(trace=False, metrics=False)
        obs.trace = trace
        return obs

    # ------------------------------------------------------------------
    # Exporters.
    # ------------------------------------------------------------------

    def _require_trace(self) -> TraceCollector:
        if self.trace is None:
            raise ValueError("tracing was disabled on this Observability")
        return self.trace

    def chrome_trace(self) -> dict[str, Any]:
        return to_chrome_trace(self._require_trace(), self.metrics)

    def write_chrome_trace(self, path: str | Path) -> Path:
        return write_chrome_trace(self._require_trace(), path, self.metrics)

    def csv(self) -> str:
        return to_csv(self._require_trace())

    def write_csv(self, path: str | Path) -> Path:
        return write_csv(self._require_trace(), path)

    def metrics_snapshot(self) -> dict[str, Any] | None:
        return self.metrics.snapshot() if self.metrics is not None else None
