"""Best-effort CPU pinning for worker processes and threads.

Shuttle traffic between two workers is shared-memory ring traffic; its
cost is dominated by cache-line transfer latency, which roughly doubles
when the endpoints sit on different CPU packages.  :func:`plan_affinity`
therefore groups workers that share a cut channel onto the same package
when the host exposes one (`/sys/devices/system/cpu/*/topology/package_id`)
and stripes the package's CPUs across them; hosts without topology
information (or without ``sched_getaffinity`` at all) fall back to plain
striping or to no plan.

Everything here is advisory: pinning failures are swallowed by the
callers (``os.sched_setaffinity`` may be denied in containers), and a
worker is never given an empty CPU set.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Optional

_TOPOLOGY_ROOT = Path("/sys/devices/system/cpu")


def available_cpus() -> Optional[list[int]]:
    """CPUs this process may run on, or None when unknowable."""
    try:
        return sorted(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return None


def cpu_packages(cpus: Iterable[int]) -> dict[int, list[int]]:
    """Group ``cpus`` by physical package id (one group on failure)."""
    packages: dict[int, list[int]] = {}
    for cpu in cpus:
        try:
            raw = (
                _TOPOLOGY_ROOT / f"cpu{cpu}" / "topology" / "package_id"
            ).read_text()
            package = int(raw.strip())
        except (OSError, ValueError):
            package = 0
        packages.setdefault(package, []).append(cpu)
    return packages


def _union_groups(workers: int, peer_pairs: Iterable[tuple[int, int]]) -> list[list[int]]:
    """Workers joined by shuttle traffic, as co-location groups."""
    parent = list(range(workers))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in peer_pairs:
        if 0 <= a < workers and 0 <= b < workers:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
    groups: dict[int, list[int]] = {}
    for worker in range(workers):
        groups.setdefault(find(worker), []).append(worker)
    return [groups[root] for root in sorted(groups)]


def plan_affinity(
    workers: int,
    peer_pairs: Iterable[tuple[int, int]] = (),
    cpus: Optional[list[int]] = None,
) -> Optional[list[list[int]]]:
    """CPU sets per worker, shuttle peers co-located on one package.

    Returns ``None`` when the host gives us nothing to pin against.
    Each co-location group (workers connected by cut channels) is
    assigned to the package with the most free CPUs, and the package's
    CPUs are striped across the group's workers; a group larger than any
    package simply shares the fullest one.
    """
    if workers < 1:
        return None
    if cpus is None:
        cpus = available_cpus()
    if not cpus:
        return None

    packages = list(cpu_packages(cpus).values())
    assignment: list[Optional[list[int]]] = [None] * workers
    # Track remaining capacity per package: (free slots heuristic).
    load = [0] * len(packages)

    for group in _union_groups(workers, peer_pairs):
        # Fullest-fit by CPUs-per-already-assigned-worker keeps packages
        # balanced while honoring co-location.
        target = max(
            range(len(packages)),
            key=lambda p: (len(packages[p]) / (load[p] + 1), -p),
        )
        load[target] += len(group)
        pool = packages[target]
        for offset, worker in enumerate(group):
            if len(pool) >= len(group):
                # Stripe: worker gets every len(group)-th CPU of the pool.
                cpu_set = pool[offset :: len(group)]
            else:
                cpu_set = pool  # oversubscribed: share the package
            assignment[worker] = cpu_set or pool
    return [cpu_set if cpu_set else cpus for cpu_set in assignment]


def pin_current_process(cpu_set: Iterable[int]) -> bool:
    """Apply ``cpu_set`` to the calling process/thread; best effort."""
    try:
        os.sched_setaffinity(0, set(cpu_set))
        return True
    except (AttributeError, OSError, ValueError):
        return False
