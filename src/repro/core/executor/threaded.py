"""One-thread-per-context executor with SVA/SVP-style synchronization.

This is the Python analog of the DAM-RS runtime (paper Section IV): every
context runs on its own OS thread, there is no global clock and no event
queue, and synchronization is strictly pairwise:

* **SVA (Synchronization via Atomics)** — reading a peer's
  :class:`~repro.core.time.TimeCell` is a plain attribute load; under
  CPython the GIL gives it the acquire semantics the paper obtains from
  x86 total-store-order loads.  ``ViewTime`` compiles to exactly this.

* **SVP (Synchronization via Parking)** — when a context must wait for a
  peer's clock (or for channel state to change) it parks on a
  ``threading.Condition``, the portable analog of a futex park/unpark
  pair, and is woken by the peer's releasing operation.

The GIL means this executor does not deliver the paper's wall-clock
*speedups* (documented substitution in DESIGN.md), but the synchronization
algorithm, blocking structure, and — critically — the simulated results are
those of the paper's runtime.  Cross-executor tests assert cycle-exact
agreement with :class:`~repro.core.executor.sequential.SequentialExecutor`.

Deadlock detection: a watchdog aborts the run when every unfinished thread
has been parked with no progress for a grace period, then reports who was
blocked on what.
"""

from __future__ import annotations

import threading
import time as _wallclock
from typing import Any, Optional

from ..context import Context
from ..errors import ChannelClosed, DamError, DeadlockError, SimulationError
from ..ops import AdvanceTo, Dequeue, Enqueue, IncrCycles, Peek, ViewTime, WaitUntil
from ..program import Program
from .base import Executor, RunSummary


class _Aborted(Exception):
    """Internal: the watchdog aborted the run (deadlock or peer failure)."""


class _TimeSync:
    """Park/unpark support for WaitUntil on one context's clock."""

    __slots__ = ("cond", "waiter_count")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.waiter_count = 0


class ThreadedExecutor(Executor):
    """Executes each context on a dedicated OS thread.

    Parameters
    ----------
    poll_interval:
        How often parked threads re-check the abort flag (seconds).
    deadlock_grace:
        Abort if all unfinished threads stay parked with zero progress for
        this long (seconds).
    """

    name = "threaded"

    def __init__(self, poll_interval: float = 0.05, deadlock_grace: float = 2.0):
        self.poll_interval = poll_interval
        self.deadlock_grace = deadlock_grace
        self._abort = threading.Event()
        self._progress = 0  # monotone op counter (heuristic, GIL-atomic)
        self._blocked_count = 0
        self._blocked_lock = threading.Lock()
        self._errors: list[BaseException] = []
        self._blocked_details: dict[str, str] = {}
        self._ops_executed = 0

    # ------------------------------------------------------------------

    def execute(self, program: Program) -> RunSummary:
        start = _wallclock.perf_counter()
        self._time_sync = {id(ctx): _TimeSync() for ctx in program.contexts}
        self._unfinished = len(program.contexts)
        self._unfinished_lock = threading.Lock()

        for ctx in program.contexts:
            self._install_advance_hook(ctx)

        threads = [
            threading.Thread(
                target=self._drive, args=(ctx,), name=f"dam-{ctx.name}", daemon=True
            )
            for ctx in program.contexts
        ]
        for thread in threads:
            thread.start()

        watchdog = threading.Thread(
            target=self._watch, args=(threads,), name="dam-watchdog", daemon=True
        )
        watchdog.start()
        for thread in threads:
            thread.join()
        self._abort.set()  # stop the watchdog
        watchdog.join()

        for ctx in program.contexts:
            ctx.time.on_advance = None

        if self._errors:
            error = self._errors[0]
            if isinstance(error, DeadlockError):
                raise error
            if isinstance(error, DamError):
                raise error
            raise SimulationError("<threaded>", error) from error
        if any(ctx.finish_time is None for ctx in program.contexts):
            raise DeadlockError(sorted(
                f"{name}: {detail}"
                for name, detail in self._blocked_details.items()
            ))

        return RunSummary(
            elapsed_cycles=self._makespan(program),
            real_seconds=_wallclock.perf_counter() - start,
            context_times={ctx.name: ctx.finish_time for ctx in program.contexts},
            executor=self.name,
            policy="os",
            ops_executed=self._ops_executed,
        )

    # ------------------------------------------------------------------

    def _install_advance_hook(self, ctx: Context) -> None:
        sync = self._time_sync[id(ctx)]

        def notify(_now: Any, _sync: _TimeSync = sync) -> None:
            # Fast path: nobody is parked on this clock.
            if _sync.waiter_count:
                with _sync.cond:
                    _sync.cond.notify_all()

        ctx.time.on_advance = notify

    def _drive(self, ctx: Context) -> None:
        """Thread body: interpret one context's generator to completion."""
        gen = ctx.run()
        value: Any = None
        exc: BaseException | None = None
        try:
            while True:
                try:
                    if exc is not None:
                        pending, exc = exc, None
                        op = gen.throw(pending)
                    else:
                        op = gen.send(value)
                except StopIteration:
                    break
                except ChannelClosed:
                    break
                value, exc = None, None
                kind = type(op)
                if kind is Enqueue:
                    self._do_enqueue(ctx, op)
                elif kind is Dequeue:
                    try:
                        value = self._do_dequeue(ctx, op, remove=True)
                    except ChannelClosed as closed:
                        exc = closed
                elif kind is Peek:
                    try:
                        value = self._do_dequeue(ctx, op, remove=False)
                    except ChannelClosed as closed:
                        exc = closed
                elif kind is IncrCycles:
                    ctx.time.incr(op.cycles)
                elif kind is AdvanceTo:
                    ctx.time.advance(op.time)
                elif kind is ViewTime:
                    value = op.context.time.now()  # SVA: plain atomic load
                elif kind is WaitUntil:
                    value = self._wait_until(ctx, op)
                else:
                    raise SimulationError(
                        ctx.name, TypeError(f"non-op yielded: {op!r}")
                    )
                self._progress += 1
                self._ops_executed += 1
        except _Aborted:
            return
        except BaseException as failure:  # noqa: BLE001 - reported faithfully
            self._errors.append(
                failure
                if isinstance(failure, DamError)
                else SimulationError(ctx.name, failure)
            )
            self._abort.set()
        finally:
            gen.close()
            self._finish(ctx)

    # ------------------------------------------------------------------
    # Blocking channel operations (the SVP paths).
    # ------------------------------------------------------------------

    def _do_enqueue(self, ctx: Context, op: Enqueue) -> None:
        channel = op.sender.channel
        clock = ctx.time
        with channel.cond:
            while not channel.sender_try_reserve(clock):
                self._park(ctx, channel.cond, f"enqueue on full {channel.name}")
            channel.do_enqueue(clock, op.data)
            channel.cond.notify_all()

    def _do_dequeue(self, ctx: Context, op: Any, remove: bool) -> Any:
        channel = op.receiver.channel
        clock = ctx.time
        with channel.cond:
            while True:
                if channel.can_dequeue():
                    if remove:
                        value = channel.do_dequeue(clock)
                        channel.cond.notify_all()
                    else:
                        value = channel.do_peek(clock)
                    return value
                if channel.closed_for_receiver:
                    raise ChannelClosed(channel.name)
                self._park(ctx, channel.cond, f"dequeue on empty {channel.name}")

    def _wait_until(self, ctx: Context, op: WaitUntil) -> Any:
        target = op.context
        if target.time.now() >= op.time:  # SVA fast path
            return target.time.now()
        sync = self._time_sync[id(target)]
        with sync.cond:
            sync.waiter_count += 1
            try:
                while target.time.now() < op.time:
                    self._park(
                        ctx, sync.cond, f"wait-until {op.time} on {target.name}"
                    )
            finally:
                sync.waiter_count -= 1
        return target.time.now()

    def _park(self, ctx: Context, cond: threading.Condition, detail: str) -> None:
        """One bounded wait on ``cond`` (caller re-checks its predicate)."""
        if self._abort.is_set():
            raise _Aborted
        with self._blocked_lock:
            self._blocked_count += 1
            self._blocked_details[ctx.name] = detail
        try:
            cond.wait(timeout=self.poll_interval)
        finally:
            with self._blocked_lock:
                self._blocked_count -= 1
                self._blocked_details.pop(ctx.name, None)
        if self._abort.is_set():
            # Keep the detail for the deadlock report.
            self._blocked_details[ctx.name] = detail
            raise _Aborted

    # ------------------------------------------------------------------

    def _finish(self, ctx: Context) -> None:
        if ctx.finish_time is None and not self._errors and not self._abort.is_set():
            ctx.finish_time = ctx.time.now()
        ctx.time.finish()
        for sender in ctx.senders:
            channel = sender.channel
            with channel.cond:
                channel.close_sender()
                channel.cond.notify_all()
        for receiver in ctx.receivers:
            channel = receiver.channel
            with channel.cond:
                channel.close_receiver()
                channel.cond.notify_all()
        with self._unfinished_lock:
            self._unfinished -= 1

    def _watch(self, threads: list[threading.Thread]) -> None:
        """Abort the run when all unfinished threads are parked, stalled."""
        stall_start: Optional[float] = None
        last_progress = -1
        while not self._abort.is_set():
            _wallclock.sleep(self.poll_interval)
            with self._unfinished_lock:
                unfinished = self._unfinished
            if unfinished == 0:
                return
            progress = self._progress
            with self._blocked_lock:
                all_parked = self._blocked_count >= unfinished
            if progress == last_progress and all_parked:
                now = _wallclock.perf_counter()
                if stall_start is None:
                    stall_start = now
                elif now - stall_start >= self.deadlock_grace:
                    self._errors.append(
                        DeadlockError(sorted(
                            f"{name}: {detail}"
                            for name, detail in self._blocked_details.items()
                        ))
                    )
                    self._abort.set()
                    return
            else:
                stall_start = None
                last_progress = progress
