"""Process-parallel executor: partitioned graphs bridged by shuttles.

The GIL caps the threaded executor at one core; this executor recovers
DAM's wall-clock scaling by partitioning ``program.contexts`` across
**forked worker processes** (:mod:`repro.core.executor.partition`), running
each partition under the existing cooperative scheduler, and bridging the
*cut* channels — those whose endpoints land in different workers — with
cross-process shuttles (:mod:`repro.core.executor.shm`).

Why the simulated results stay bit-identical
--------------------------------------------

Channel semantics are pure functions of simulated state (the FIFO contents
and the endpoint clocks — see :mod:`repro.core.channel`).  A shuttle
carries exactly the records an in-process channel would queue, over two
FIFO lanes:

* **data lane** (sender partition → receiver partition): the ``(stamp,
  data)`` tuples, followed by a ``SENDER_DONE`` sentinel when the sending
  context finishes (the channel-close transition);
* **response lane** (receiver → sender): the dequeue-time responses that
  drive backpressure, followed by ``RECEIVER_DONE`` when the receiving
  context finishes (the channel-void transition).

Both lanes preserve order, so every state transition observes the same
sequence it would in-process, and the sender clock advances through the
same response times.  The only records whose *real-time* visibility can
differ from an in-process run are ones the semantics already make dead:
responses generated after the sender finished are never drained (in
process, ``close_sender`` clears them), and data enqueued after the
receiver finished is discarded (void channel) — so the lag of the done
sentinels cannot change any simulated outcome.  ``ViewTime``/``WaitUntil``
reads of a remote clock go through a shared float64 mirror
(:class:`~repro.core.executor.shm.SharedTimeCell`) that is always a lower
bound, the same contract SVA gives the threaded executor.

Work stealing
-------------

Workers do not start with their partition materialized.  The partition is
refined into **clusters** (:func:`~repro.core.executor.partition.plan_clusters`)
— connected components of a worker's group under its internal channels —
and every worker begins empty, *activating* clusters lazily: when its run
queue drains it claims its next own cold cluster from a shared
:class:`~repro.core.executor.shm.ClaimBoard`, and when it has none left it
steals another worker's cold cluster (largest first).  Because every
channel leaving a cluster is a planned-cut channel already bridged by a
shuttle, activation by *any* worker creates no new communication paths:
the adopter installs the same shuttle proxies and shared time cells the
planned owner would have, and since a cluster is claimed exactly once
(one inherited lock guards the board) the SPSC property of every shuttle
lane is preserved.  Simulated results cannot change — cluster activation
moves *where* the same pure state transitions execute, never what they
compute.  ``steal=False`` restores strict planned placement (pins keep
their separation guarantee); with stealing on, pins bind the *initial*
plan only.

Deadlock detection is two-level: a worker whose blocked contexts all wait
on *local* resources reports a local deadlock immediately (no remote
record can unblock them), while cross-worker cycles are caught by the
parent's watchdog — every live worker parked with the shared progress
total frozen for a grace period *and no cold cluster left to claim* —
which aborts the workers and merges their stall reports into one
:class:`~repro.core.errors.DeadlockError`.

The parent merges per-worker results back onto the original program
object: context finish times (and picklable result attributes), channel
stats, per-context trace buffers (so the observability layer's
``(time, context, seq)`` merge is executor-independent), and the metrics
registry.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time as _wallclock
from collections import deque
from multiprocessing import connection as _mpconn
from typing import Any, Optional

from ...obs import Observability, fold_channel_metrics, fold_context_metrics
from ...obs.stall import StallReport
from .. import checkpoint as _ckpt
from ..channel import _EMPTY, Channel, ChannelStats
from ..errors import (
    CheckpointError,
    DamError,
    DeadlockError,
    RunTimeoutError,
    SimulationError,
    WorkerCrashError,
    pack_exception,
    unpack_exception,
)
from ..faults import StalledLane
from ..ops import Dequeue, Enqueue, Peek, WaitUntil
from ..program import Program
from .affinity import pin_current_process, plan_affinity
from .base import Executor, RunSummary
from .partition import ClusterSpec, PartitionPlan, plan_clusters, plan_partition
from .policies import SchedulingPolicy, make_policy
from .registry import register_executor
from .sequential import _BLOCKED, _DONE, SequentialExecutor, _ContextState
from .shm import (
    CKPT_DUMP,
    CKPT_PAUSE,
    CKPT_RUN,
    DATA,
    RECEIVER_DONE,
    RESPONSE,
    SENDER_DONE,
    WORKER_BLOCKED,
    WORKER_DONE,
    WORKER_RUNNING,
    ArenaLayout,
    ChannelShuttle,
    CheckpointBoard,
    ClaimBoard,
    PipeLane,
    SharedArena,
    SharedClockArray,
    SharedTimeCell,
    SharedTimeView,
    ShmRing,
    StatusBoard,
)


class _WorkerAborted(BaseException):
    """Internal: the parent pulled the abort switch (peer failure or the
    global deadlock watchdog fired).  BaseException so user-level handlers
    inside context generators cannot swallow it."""


#: Context attributes that are framework state, never harvested results.
_FRAMEWORK_ATTRS = frozenset(
    {"id", "name", "time", "senders", "receivers", "finish_time",
     "_body", "_pass_context"}
)


# ----------------------------------------------------------------------
# Cut-channel proxies.
#
# After fork, each worker swaps the ``.channel`` of every cut-channel
# handle owned by a local context for one of these.  They mirror the
# pure-semantics surface of :class:`Channel` that the sequential
# executor's dispatch/finish/stall paths touch, but route records over
# the shuttle lanes instead of shared deques.  Pushes never block the
# scheduling loop: records that do not fit in the ring queue locally in
# ``_pending`` and are flushed by ``poll()``.
# ----------------------------------------------------------------------


class _ShuttleSender:
    """Sender-partition stand-in for a cut channel."""

    # Flavor codes the sequential fast path would inline on; shuttles
    # always need their method implementations (lane bookkeeping).
    _enq_code = 2
    _deq_code = 2

    __slots__ = (
        "id", "name", "capacity", "latency", "resp_latency", "real",
        "sender_owner", "receiver_owner", "stats", "profile_log",
        "waiting_sender", "waiting_receiver",
        "_delta", "_resps", "_sender_finished", "_receiver_finished",
        "_lane_out", "_lane_in", "_pending",
        "_park_enq_msg", "_park_deq_msg",
    )

    def __init__(self, channel: Channel, shuttle: ChannelShuttle):
        self.id = channel.id
        self.name = channel.name
        self._park_enq_msg = f"enqueue on full {self.name}"
        self._park_deq_msg = f"dequeue on empty {self.name}"
        self.capacity = channel.capacity
        self.latency = channel.latency
        self.resp_latency = channel.resp_latency
        self.real = channel.real
        self.sender_owner = channel.sender_owner
        self.receiver_owner = channel.receiver_owner
        #: Sender side counts enqueues; the receiver partition owns the rest.
        self.stats = ChannelStats()
        self.profile_log = None
        self.waiting_sender: Any = None
        self.waiting_receiver: Any = None
        # Seed from the wrapped channel: pristine (all empty/False) on a
        # fresh run, the restored sender-side state — in-flight count,
        # undrained responses, finished flags — when the program was
        # resumed from a checkpoint.  The queued data itself seeds the
        # *receiver* proxy in whichever worker activates that side.
        self._delta = channel._delta
        self._resps: deque = deque(channel._resps)
        self._sender_finished = channel.sender_finished
        self._receiver_finished = channel.receiver_finished
        self._lane_out = shuttle.data
        self._lane_in = shuttle.resp
        self._pending: deque = deque()

    # -- Channel surface used by the sender-side dispatch --------------

    def sender_try_reserve(self, clock) -> bool:
        if self.capacity is None:
            return True
        while self._delta >= self.capacity and self._resps:
            clock.advance(self._resps.popleft())
            self._delta -= 1
        if self._delta < self.capacity:
            return True
        return self._receiver_finished

    def do_enqueue(self, clock, data) -> None:
        self.stats.enqueues += 1
        if self._receiver_finished:
            return  # void channel: data is discarded
        stamp = 0 if self.real else clock._time + self.latency
        if self.capacity is not None:
            self._delta += 1
        self._push((DATA, stamp, data))

    def try_enqueue(self, clock, data) -> bool:
        """Single-call fast-path surface (reserve + enqueue).  Shuttle
        lanes dominate the cost here, so this composes the reference
        methods rather than specializing per flavor."""
        if self.sender_try_reserve(clock):
            self.do_enqueue(clock, data)
            return True
        return False

    def close_sender(self) -> None:
        self._sender_finished = True
        self._resps.clear()
        if not self._receiver_finished:
            self._push((SENDER_DONE,))

    def real_occupancy(self) -> int:
        return len(self._pending)

    # -- shuttle servicing ---------------------------------------------

    def _push(self, record) -> None:
        if self._pending or not self._lane_out.try_push(record):
            self._pending.append(record)

    def poll(self) -> int:
        """Flush the outbound backlog and drain the response lane;
        returns the number of records moved (truthy iff progress)."""
        moved = 0
        while self._pending and self._lane_out.try_push(self._pending[0]):
            self._pending.popleft()
            moved += 1
        while True:
            ok, record = self._lane_in.try_pop()
            if not ok:
                break
            moved += 1
            if record[0] == RESPONSE:
                self._resps.append(record[1])
            else:  # RECEIVER_DONE: channel voids, the backlog is dead letters
                self._receiver_finished = True
                self._pending.clear()
        return moved

    def outstanding(self) -> bool:
        return bool(self._pending)

    def sender_ready(self) -> bool:
        """Could a parked sender's retried reserve make progress now?"""
        return bool(self._resps) or self._receiver_finished

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_ShuttleSender({self.name}, pending={len(self._pending)})"


class _ShuttleReceiver:
    """Receiver-partition stand-in for a cut channel."""

    # See _ShuttleSender: never inline-eligible in the fast path.
    _enq_code = 2
    _deq_code = 2

    __slots__ = (
        "id", "name", "capacity", "latency", "resp_latency", "real",
        "sender_owner", "receiver_owner", "stats", "profile_log",
        "waiting_sender", "waiting_receiver",
        "_data", "_sender_finished", "_receiver_finished",
        "_lane_in", "_lane_out", "_pending",
        "_park_enq_msg", "_park_deq_msg",
    )

    def __init__(self, channel: Channel, shuttle: ChannelShuttle):
        self.id = channel.id
        self.name = channel.name
        self._park_enq_msg = f"enqueue on full {self.name}"
        self._park_deq_msg = f"dequeue on empty {self.name}"
        self.capacity = channel.capacity
        self.latency = channel.latency
        self.resp_latency = channel.resp_latency
        self.real = channel.real
        self.sender_owner = channel.sender_owner
        self.receiver_owner = channel.receiver_owner
        #: Receiver side counts dequeues/peeks/occupancy and the profile log.
        self.stats = ChannelStats()
        self.profile_log = [] if channel.profile_log is not None else None
        self.waiting_sender: Any = None
        self.waiting_receiver: Any = None
        # Seed from the wrapped channel (see _ShuttleSender.__init__):
        # restored queue contents become the proxy's local queue; lane
        # records pushed since the fork append after them, preserving
        # FIFO order across a checkpoint resume.
        self._data: deque = deque(tuple(item) for item in channel._data)
        self._sender_finished = channel.sender_finished
        self._receiver_finished = channel.receiver_finished
        self._lane_in = shuttle.data
        self._lane_out = shuttle.resp
        self._pending: deque = deque()

    # -- Channel surface used by the receiver-side dispatch ------------

    def can_dequeue(self) -> bool:
        return bool(self._data)

    @property
    def closed_for_receiver(self) -> bool:
        return self._sender_finished and not self._data

    def do_dequeue(self, clock):
        stamp, data = self._data.popleft()
        clock.advance(stamp)
        self.stats.dequeues += 1
        if self.capacity is not None and not self._sender_finished:
            self._push((RESPONSE, clock._time + self.resp_latency))
        if self.profile_log is not None:
            self.profile_log.append((stamp, clock._time))
        return data

    def do_peek(self, clock):
        stamp, data = self._data[0]
        clock.advance(stamp)
        self.stats.peeks += 1
        return data

    def fast_dequeue(self, clock):
        """Single-call fast-path surface: ``_EMPTY`` when nothing is
        visible yet (the worker loop then parks or polls the lane)."""
        if not self._data:
            return _EMPTY
        return self.do_dequeue(clock)

    def close_receiver(self) -> None:
        self._receiver_finished = True
        self._data.clear()
        # In-flight responses still flush first (FIFO lane): the remote
        # sender drains them before it observes the void transition,
        # exactly as in-process semantics require.
        if not self._sender_finished:
            self._push((RECEIVER_DONE,))

    def real_occupancy(self) -> int:
        return len(self._data)

    # -- shuttle servicing ---------------------------------------------

    def _push(self, record) -> None:
        if self._pending or not self._lane_out.try_push(record):
            self._pending.append(record)

    def poll(self) -> int:
        """Flush pending responses and drain the data lane; returns the
        number of records moved (truthy iff progress)."""
        moved = 0
        while self._pending and self._lane_out.try_push(self._pending[0]):
            self._pending.popleft()
            moved += 1
        while True:
            ok, record = self._lane_in.try_pop()
            if not ok:
                break
            moved += 1
            if record[0] == DATA:
                if not self._receiver_finished:
                    self._data.append((record[1], record[2]))
                    if len(self._data) > self.stats.max_real_occupancy:
                        self.stats.max_real_occupancy = len(self._data)
            else:  # SENDER_DONE: responses the sender will never drain die here
                self._sender_finished = True
                self._pending.clear()
        return moved

    def outstanding(self) -> bool:
        return bool(self._pending)

    def receiver_ready(self) -> bool:
        """Could a parked receiver's retried dequeue/peek make progress?"""
        return bool(self._data) or self._sender_finished

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_ShuttleReceiver({self.name}, queued={len(self._data)})"


# ----------------------------------------------------------------------
# The per-worker executor.
# ----------------------------------------------------------------------


class _WorkerExecutor(SequentialExecutor):
    """The cooperative scheduler, extended with shuttle servicing and
    lazy cluster activation (work stealing).

    Differences from the plain sequential executor:

    * the worker starts with an *empty* program and pulls work from the
      shared claim board: its own cold clusters first, then — when
      ``steal`` is on — other workers' (largest first).  Activating a
      cluster installs shared time cells on its contexts, swaps every
      cut-channel handle for a shuttle proxy, and pushes the fresh
      context states onto the ready queue;
    * a finite timeslice is forced even under run-to-block policies, so
      shuttles are serviced (outbound flushed, inbound drained, parked
      endpoints woken) at bounded intervals;
    * :meth:`_idle` — reached when the local ready queue empties — polls
      shuttles and remote-clock waiters, claims more work when the board
      has any, publishes the worker's state on the status board, and
      returns ``False`` only for a *local* deadlock or full completion
      (all activated contexts done, nothing claimable, and the outbound
      backlog flushed);
    * metrics folding is disabled: the parent folds the merged run.
    """

    name = "process-worker"

    def __init__(
        self,
        worker: int,
        program: Program,
        clusters: list[ClusterSpec],
        claim: ClaimBoard,
        claim_lock,
        shuttles: dict[int, ChannelShuttle],
        clocks: SharedClockArray,
        starts: list,
        status: StatusBoard,
        abort,
        steal: bool = True,
        policy: str | SchedulingPolicy = "fifo",
        max_ops: Optional[int] = None,
        obs: Optional[Observability] = None,
        poll_interval: float = 0.0005,
        timeslice: int = 1024,
        faults=None,
        kill=None,
        superblocks="auto",
        ckpt_board=None,
        checkpoint_dir: Optional[str] = None,
        resume_records: Optional[dict] = None,
    ):
        super().__init__(
            policy=policy,
            max_ops=max_ops,
            obs=obs,
            faults=faults,
            superblocks=superblocks,
        )
        #: Chaos hook: a WorkerKill aimed at *this* worker — the process
        #: SIGKILLs itself the first time its published progress counter
        #: reaches the trigger (see :meth:`_publish`).
        self._kill = kill
        if self.policy.timeslice is None:
            # Run-to-block would starve the shuttles on long-running
            # contexts; preemption changes only real order, never
            # simulated results (the determinism invariant).
            self.policy.timeslice = timeslice
        # ... and the run-to-block FIFO branch would additionally make the
        # worker deaf to the parent's abort flag: bounded slices, always.
        self._always_bounded = True
        self._worker = worker
        self._program = program
        self._clusters = clusters
        self._claim = claim
        self._claim_lock = claim_lock
        self._shuttles = shuttles
        self._clocks = clocks
        self._starts = starts
        self._status = status
        self._abort = abort
        self._steal = steal
        self._poll_interval = poll_interval
        self._shuttle_moves = 0
        self._send_proxies: list[_ShuttleSender] = []
        self._recv_proxies: list[_ShuttleReceiver] = []
        #: Contexts this worker activated (own or stolen), in claim order.
        self._activated: list = []
        #: Cluster-internal Channel objects of the activated clusters.
        self._active_channels: list[Channel] = []
        self.steal_count = 0
        self.migrations: list[dict] = []
        #: Checkpoint coordination (parent-driven quiescent cuts).
        self._ckpt_board = ckpt_board
        self._ckpt_dir = checkpoint_dir
        self._ckpt_on = ckpt_board is not None
        self._ckpt_seen = 0  # last epoch this worker acknowledged
        self._ckpt_rounds_done = 0
        #: Resume records (slot-keyed) applied lazily at cluster
        #: activation; the parent popped them off the program pre-fork.
        self._ckpt_resume = resume_records or None
        #: Stats already on an internal channel at activation time of a
        #: *resumed* run: harvest ships deltas past these so the parent's
        #: merge (which adds onto the restored base) never double-counts.
        self._ship_base: dict[int, dict] = {}

    # -- lazy cluster activation ---------------------------------------

    def _activate_cluster(
        self, spec: ClusterSpec, stolen_from: Optional[int] = None
    ) -> None:
        """Materialize ``spec`` in this worker: shared time cells on its
        contexts, shuttle proxies on its cut-channel handles, fresh
        context states on the ready queue.  The caller has already won
        the claim, so exactly one worker ever runs this for a given
        cluster — which is what keeps every shuttle lane single-producer
        single-consumer (a fresh adopter's cached ring counters start at
        the same zeros the planned owner's would)."""
        contexts = self._program.contexts
        channels = self._program.channels
        for slot in spec.contexts:
            ctx = contexts[slot]
            ctx.time = SharedTimeCell(
                self._clocks, slot, start=self._starts[slot]
            )
            for handle in ctx.senders:
                shuttle = self._shuttles.get(handle.channel.id)
                if shuttle is not None:
                    proxy = _ShuttleSender(handle.channel, shuttle)
                    handle.channel = proxy
                    self._send_proxies.append(proxy)
            for handle in ctx.receivers:
                shuttle = self._shuttles.get(handle.channel.id)
                if shuttle is not None:
                    proxy = _ShuttleReceiver(handle.channel, shuttle)
                    handle.channel = proxy
                    self._recv_proxies.append(proxy)
        if self._ckpt_resume is not None:
            for index in spec.channels:
                channel = channels[index]
                stats = channel.stats
                self._ship_base[channel.id] = {
                    "enqueues": stats.enqueues,
                    "dequeues": stats.dequeues,
                    "peeks": stats.peeks,
                    "log_len": (
                        len(channel.profile_log)
                        if channel.profile_log is not None
                        else 0
                    ),
                }
        self._active_channels.extend(channels[i] for i in spec.channels)
        tracer = self.tracer
        for slot in spec.contexts:
            ctx = contexts[slot]
            state = _ContextState(ctx)
            if tracer is not None:
                state.buffer = tracer.buffer(ctx.name)
            self._states[id(ctx)] = state
            record = (
                self._ckpt_resume.get(slot)
                if self._ckpt_resume is not None
                else None
            )
            if record is not None:
                self._apply_one_resume_record(ctx, state, record)
            if state.status != _DONE:
                self.policy.push(state, woken=False)
            self._activated.append(ctx)
        if (
            len(spec.contexts) >= 2
            and not self._ckpt_on
            and self._ckpt_resume is None
        ):
            # Recompile the cluster as a superblock *on the adopter*: a
            # stolen cluster's members already carry this worker's shared
            # time slots, so the driver batches against its new clocks.
            # The same gates as _compile_superblocks apply (the turn loop
            # is the fast loop; faults are slice-granular; "auto" declines
            # under per-context wall-clock metrics).
            from .superblock import Superblock, attach, normalize_mode

            mode = normalize_mode(self.superblocks)
            if (
                mode != "off"
                and self._fast_capable
                and not self._fault_map
                and not (
                    mode == "auto"
                    and self.obs is not None
                    and self.obs.metrics is not None
                )
            ):
                attach(
                    Superblock(spec.index),
                    [
                        self._states[id(contexts[slot])]
                        for slot in spec.contexts
                    ],
                )
        if stolen_from is not None:
            self.steal_count += 1
            record = {
                "cluster": spec.index,
                "from": stolen_from,
                "to": self._worker,
                "contexts": [contexts[slot].name for slot in spec.contexts],
            }
            self.migrations.append(record)
            if tracer is not None:
                # Steals land in a worker-scoped pseudo-buffer, never in
                # a migrated context's buffer: per-context event streams
                # (and their seq counters) stay schedule-independent.
                tracer.buffer(f"<worker-{self._worker}>").append(
                    "migrate", None, 0, dict(record)
                )

    def _claim_next(self) -> bool:
        """Claim and activate one cold cluster; False when none is
        claimable by this worker (own clusters exhausted and stealing is
        off or nothing foreign is cold)."""
        claim = self._claim
        if claim.cold_count() == 0:
            return False
        pick: Optional[ClusterSpec] = None
        stolen_from: Optional[int] = None
        with self._claim_lock:
            if claim.cold_count() != 0:
                own = [
                    spec for spec in self._clusters
                    if spec.owner == self._worker and claim.is_cold(spec.index)
                ]
                if own:
                    pick = own[0]
                elif self._steal:
                    foreign = [
                        spec for spec in self._clusters
                        if spec.owner != self._worker
                        and claim.is_cold(spec.index)
                    ]
                    if foreign:
                        # Largest first: the most remaining work amortizes
                        # the activation; index breaks ties.
                        pick = max(
                            foreign, key=lambda s: (s.size, -s.index)
                        )
                        stolen_from = pick.owner
            if pick is not None:
                claim.claim(pick.index, self._worker)
        if pick is None:
            return False
        self._activate_cluster(pick, stolen_from=stolen_from)
        # A claim is progress the parent watchdog must see.
        self._shuttle_moves += 1
        self._publish(WORKER_RUNNING)
        return True

    def _publish(self, state: int) -> None:
        progress = self.ops_executed + self._shuttle_moves
        self._status.publish(self._worker, progress, state)
        if (
            self._kill is not None
            and self._kill.after_ops is not None
            and progress >= self._kill.after_ops
        ):
            # Injected crash: die exactly as an external SIGKILL would —
            # no cleanup, no payload, pipe slammed shut.
            os.kill(os.getpid(), self._kill.signal)

    def _run_slice(self, state, timeslice) -> None:
        if self._abort.is_set():
            raise _WorkerAborted()
        if self._ckpt_on and self._ckpt_board.epoch() > self._ckpt_seen:
            self._ckpt_participate()
        # Publishing at every slice keeps the watchdog honest: a worker
        # crunching local work always shows RUNNING with rising progress.
        self._publish(WORKER_RUNNING)
        super()._run_slice(state, timeslice)
        self._service_shuttles()

    def _service_shuttles(self) -> int:
        moved = 0
        for proxy in self._send_proxies:
            moved += proxy.poll()
            waiter = proxy.waiting_sender
            if waiter is not None and proxy.sender_ready():
                proxy.waiting_sender = None
                self._wake(waiter)
        for proxy in self._recv_proxies:
            moved += proxy.poll()
            waiter = proxy.waiting_receiver
            if waiter is not None and proxy.receiver_ready():
                proxy.waiting_receiver = None
                self._wake(waiter)
        if moved:
            self._shuttle_moves += 1
        return moved

    # -- checkpoint participation (parent-driven quiescent cuts) -------

    def _claim_own_cold(self) -> None:
        """Claim and activate every cold cluster this worker owns.

        Called at the start of a pause round: a lane whose receiving
        cluster nobody activated has no consumer, so it could never
        drain.  Claiming through the board keeps the
        claimed-exactly-once invariant even against a concurrent steal.
        """
        claim = self._claim
        while True:
            pick: Optional[ClusterSpec] = None
            with self._claim_lock:
                for spec in self._clusters:
                    if spec.owner == self._worker and claim.is_cold(spec.index):
                        pick = spec
                        claim.claim(spec.index, self._worker)
                        break
            if pick is None:
                return
            self._activate_cluster(pick)
            self._shuttle_moves += 1

    def _ckpt_participate(self) -> None:
        """One worker's side of a pause/drain/dump round.

        Entered only at safe points (between slices or in the idle
        loop), so every local context is between ops — the worker's
        slice of the cut is quiescent by construction.  The drain loop
        keeps shuttles moving until the parent observes global lane
        quiescence, dumps the partition when told to, and returns to
        normal scheduling when the parent ends the round.
        """
        board = self._ckpt_board
        epoch = board.epoch()
        if epoch <= self._ckpt_seen:
            return
        self._ckpt_seen = epoch
        self._claim_own_cold()
        worker = self._worker
        rounds = 0
        moves = 0
        dumped = False
        board.ack(worker, epoch)
        while not self._abort.is_set():
            moves += self._service_shuttles()
            rounds += 1
            pending = sum(len(p._pending) for p in self._send_proxies)
            pending += sum(len(p._pending) for p in self._recv_proxies)
            board.publish_drain(worker, rounds, moves, pending)
            if board.epoch() != epoch:
                break  # the parent moved on (round abandoned)
            command = board.command()
            if command == CKPT_RUN:
                break
            if command == CKPT_DUMP and not dumped:
                self._dump_partition(epoch)
                board.mark_dumped(worker, epoch)
                dumped = True
                self._ckpt_rounds_done += 1
                kill = self._kill
                if (
                    kill is not None
                    and getattr(kill, "after_checkpoints", None) is not None
                    and self._ckpt_rounds_done >= kill.after_checkpoints
                ):
                    # Chaos hook: die right after publishing the dump —
                    # the worst moment for the parent's stitch.
                    os.kill(os.getpid(), kill.signal)
            _wallclock.sleep(0 if rounds <= 3 else self._poll_interval)
        if self._abort.is_set():
            raise _WorkerAborted()

    def _dump_partition(self, epoch: int) -> None:
        """Write this worker's slice of the cut (tmp + rename).

        Context records cover exactly what this worker activated;
        channel entries carry internal channels whole and cut channels
        by side (the parent stitches ``send``/``recv`` halves — queued
        data lives receiver-side, credits sender-side — into one
        partition-independent state).
        """
        slot_of = {
            id(ctx): slot
            for slot, ctx in enumerate(self._program.contexts)
        }
        records = {
            slot_of[id(ctx)]: self._context_record(self._states[id(ctx)])
            for ctx in self._activated
        }
        channels: dict[int, dict] = {}
        for channel in self._active_channels:
            channels[channel.id] = {"chan": channel.checkpoint_state()}
        for proxy in self._send_proxies:
            entry = channels.setdefault(proxy.id, {})
            entry["send"] = {
                "delta": proxy._delta,
                "resps": list(proxy._resps),
                "sender_finished": proxy._sender_finished,
                "receiver_finished": proxy._receiver_finished,
                "enqueues": proxy.stats.enqueues,
            }
        for proxy in self._recv_proxies:
            entry = channels.setdefault(proxy.id, {})
            entry["recv"] = {
                "data": list(proxy._data),
                "sender_finished": proxy._sender_finished,
                "receiver_finished": proxy._receiver_finished,
                "dequeues": proxy.stats.dequeues,
                "peeks": proxy.stats.peeks,
                "max_real_occupancy": proxy.stats.max_real_occupancy,
                "profile_log": (
                    None if proxy.profile_log is None
                    else list(proxy.profile_log)
                ),
            }
        _ckpt.save_part(
            self._ckpt_dir, epoch, self._worker,
            {"records": records, "channels": channels},
        )

    def _poll_remote_waiters(self) -> bool:
        """Wake WaitUntil waiters on remote clocks (shared-slot reads)."""
        if not self._any_time_waiters:
            return False
        woke = self.wakeups
        for target_id in list(self._time_waiters):
            if target_id in self._states:
                continue  # local target: woken by local advances
            waiters = self._time_waiters.get(target_id)
            if not waiters:
                continue
            op = waiters[0][1].retry_op
            if op is None:
                continue
            self._drain_time_waiters(op.context)
        return self.wakeups != woke

    def _remote_dependence(self, blocked) -> bool:
        """True if any blocked context could be unblocked by remote
        activity (a shuttle record or a remote clock advance)."""
        for state in blocked:
            op = state.retry_op
            if op is None:
                continue
            kind = type(op)
            if kind is Enqueue:
                if isinstance(op.sender.channel, _ShuttleSender):
                    return True
            elif kind is Dequeue or kind is Peek:
                if isinstance(op.receiver.channel, _ShuttleReceiver):
                    return True
            elif kind is WaitUntil:
                if id(op.context) not in self._states:
                    return True
        return False

    def _idle(self) -> bool:
        spins = 0
        while True:
            if self._abort.is_set():
                raise _WorkerAborted()
            if self._ckpt_on and self._ckpt_board.epoch() > self._ckpt_seen:
                self._ckpt_participate()
                spins = 0
                continue  # activation during the round may have queued work
            progress = self._service_shuttles()
            if self._poll_remote_waiters():
                progress = True
            if self.policy:
                self._publish(WORKER_RUNNING)
                return True
            # The queue is dry: pull more work off the claim board before
            # retiring, parking, or declaring a local deadlock — blocked
            # contexts may be waiting on a cluster nobody activated yet.
            if self._claim_next():
                return True
            blocked = [
                st for st in self._states.values() if st.status == _BLOCKED
            ]
            if not blocked:
                # All activated contexts finished and nothing is
                # claimable; retire once every outbound record (including
                # done sentinels) has been flushed.
                if not any(p.outstanding() for p in self._send_proxies) and \
                        not any(p.outstanding() for p in self._recv_proxies):
                    if (
                        self._ckpt_on
                        and self._ckpt_board.epoch() > self._ckpt_seen
                    ):
                        # A pause round began while we were deciding to
                        # retire: participate first (the parent counts
                        # this worker as live until its payload lands).
                        continue
                    self._publish(WORKER_DONE)
                    return False
            elif not self._remote_dependence(blocked):
                # Every blocked context waits on a purely local resource:
                # a local deadlock no remote record can break.  Fall back
                # to the sequential executor's stall reporting.
                return False
            if progress:
                spins = 0
                continue
            self._publish(WORKER_BLOCKED)
            spins += 1
            if spins <= 3:
                _wallclock.sleep(0)
            else:
                _wallclock.sleep(self._poll_interval)

    def _fold_metrics(self, program, states):
        return None  # the parent folds the merged run

    def _attach_profile(self, summary, program, obs):
        return None  # the parent profiles the merged run


# ----------------------------------------------------------------------
# Worker process entry point (fork target: everything arrives by
# inheritance, nothing is pickled — context generators included).
# ----------------------------------------------------------------------


def _shippable_events(events: list) -> list:
    """Trace events, with payloads stripped if they refuse to pickle."""
    try:
        pickle.dumps(events)
        return events
    except Exception:  # noqa: BLE001
        from ...obs.events import TraceEvent

        return [
            TraceEvent(e.context, e.kind, e.channel, e.time, None, e.seq)
            for e in events
        ]


def _harvest(executor: _WorkerExecutor, obs) -> dict:
    """Everything the parent merges back onto the original program.

    Per-context results are keyed by the context's *slot* (its index in
    ``program.contexts``, identical in parent and forked child) — names
    may legitimately repeat across replicated pipelines.  What a worker
    harvests is exactly what it *activated* — own and stolen clusters
    alike — so stolen work reports from its adopter, never its planned
    owner.
    """
    local = executor._activated
    local_channels = executor._active_channels
    send_proxies = executor._send_proxies
    recv_proxies = executor._recv_proxies
    slot_of = {
        id(ctx): slot for slot, ctx in enumerate(executor._program.contexts)
    }
    finish_times: dict[int, Any] = {}
    context_attrs: dict[int, dict] = {}
    context_stats: dict[int, dict] = {}
    for ctx in local:
        slot = slot_of[id(ctx)]
        finish_times[slot] = ctx.finish_time
        attrs = {}
        for key, value in vars(ctx).items():
            if key in _FRAMEWORK_ATTRS:
                continue
            try:
                pickle.dumps(value)
            except Exception:  # noqa: BLE001 - handles/locks/closures stay put
                continue
            attrs[key] = value
        if attrs:
            context_attrs[slot] = attrs
        state = executor._states.get(id(ctx)) if executor._states else None
        if state is not None:
            context_stats[slot] = {
                "ops": state.ops, "wall": state.wall_seconds
            }

    channel_stats: dict[int, dict] = {}

    def ship(channel_id: int, stats: ChannelStats, log) -> None:
        # Accumulate, never overwrite: after a steal one worker may hold
        # *both* proxies of a cut channel (sender-side enqueues and
        # receiver-side dequeues land in separate ChannelStats).
        entry = channel_stats.setdefault(
            channel_id,
            {
                "enqueues": 0, "dequeues": 0, "peeks": 0,
                "max_real_occupancy": 0, "profile_log": None,
            },
        )
        entry["enqueues"] += stats.enqueues
        entry["dequeues"] += stats.dequeues
        entry["peeks"] += stats.peeks
        if stats.max_real_occupancy > entry["max_real_occupancy"]:
            entry["max_real_occupancy"] = stats.max_real_occupancy
        if log:
            entry["profile_log"] = log

    ship_base = executor._ship_base
    for channel in local_channels:
        stats = channel.stats
        log = channel.profile_log
        base = ship_base.get(channel.id)
        if base is not None:
            # Resumed run: the restored channel state carries the
            # pre-checkpoint totals, but the parent *also* restored them
            # (RunSummary.merge adds shipped stats onto its own) — ship
            # only what happened after activation.
            delta = ChannelStats()
            delta.enqueues = stats.enqueues - base["enqueues"]
            delta.dequeues = stats.dequeues - base["dequeues"]
            delta.peeks = stats.peeks - base["peeks"]
            delta.max_real_occupancy = stats.max_real_occupancy
            stats = delta
            if log is not None:
                log = log[base["log_len"]:]
        ship(channel.id, stats, log)
    for proxy in send_proxies:
        ship(proxy.id, proxy.stats, None)
    for proxy in recv_proxies:
        ship(proxy.id, proxy.stats, proxy.profile_log)

    trace_events: dict[str, list] = {}
    if obs is not None and obs.trace is not None:
        for name, buf in obs.trace.buffers().items():
            if buf.events:
                trace_events[name] = _shippable_events(buf.events)

    return {
        "finish_times": finish_times,
        "context_attrs": context_attrs,
        "context_stats": context_stats,
        "channel_stats": channel_stats,
        "trace": trace_events,
        "migrations": executor.migrations,
        "counters": {
            "context_switches": executor.context_switches,
            "wakeups": executor.wakeups,
            "preemptions": executor.preemptions,
            "ops_executed": executor.ops_executed,
            "steals": executor.steal_count,
        },
    }


def _worker_main(
    worker_index: int,
    program: Program,
    clusters: list[ClusterSpec],
    claim: ClaimBoard,
    claim_lock,
    shuttles: dict[int, ChannelShuttle],
    arena: SharedArena,
    clocks: SharedClockArray,
    status: StatusBoard,
    abort,
    conn,
    options: dict,
) -> None:
    payload: dict[str, Any] = {
        "worker": worker_index, "status": "ok", "error": None, "stalls": None,
    }
    try:
        cpus = options.get("cpus")
        if cpus is not None:
            pin_current_process(cpus[worker_index])

        # Every context starts as a read-only view of its published clock
        # slot (the parent pre-wrote the start times); activating a
        # cluster promotes its contexts to mirroring cells.  Until then
        # ViewTime/WaitUntil/stall reads of *any* context — cold, local,
        # or remote — go through the shared slot.
        starts = [ctx.time.now() for ctx in program.contexts]
        for slot, ctx in enumerate(program.contexts):
            ctx.time = SharedTimeView(clocks, slot)

        obs = None
        if options["trace"] or options["metrics"]:
            obs = Observability(
                trace=options["trace"],
                metrics=options["metrics"],
                capture_payloads=options["capture_payloads"],
            )

        # Fault-injection hooks (chaos testing).  Shuttle stalls wrap the
        # named channels' data lanes *before* any proxy captures them;
        # only the receiving side ever pops a data lane, so wrapping the
        # per-process copy in every worker stalls exactly the delivery
        # path.  The kill targets this worker only if the resolved plan
        # says so; context faults ride the inherited sequential machinery.
        faults = options.get("faults")
        kill = None
        if faults is not None:
            kill = faults.kill_for(worker_index)
            if faults.stalls:
                by_name = {ch.name: ch.id for ch in program.channels}
                for stall in faults.stalls:
                    channel_id = by_name.get(stall.channel)
                    shuttle = (
                        shuttles.get(channel_id)
                        if channel_id is not None
                        else None
                    )
                    if shuttle is not None:
                        shuttle.data = StalledLane(
                            shuttle.data, stall.after_records
                        )

        ckpt = options.get("checkpoint")
        executor = _WorkerExecutor(
            worker_index, program, clusters, claim, claim_lock,
            shuttles, clocks, starts, status, abort,
            steal=options["steal"],
            policy=options["policy"], max_ops=options["max_ops"], obs=obs,
            poll_interval=options["poll_interval"],
            timeslice=options["timeslice"],
            faults=faults, kill=kill,
            superblocks=options.get("superblocks", "auto"),
            ckpt_board=ckpt["board"] if ckpt is not None else None,
            checkpoint_dir=ckpt["dir"] if ckpt is not None else None,
            resume_records=options.get("resume_records"),
        )
        try:
            # The worker starts empty; its first _idle() claims work.
            executor.execute(Program([], []))
        except DeadlockError:
            payload["status"] = "stalled"
            report = obs.stall_report if obs is not None else None
            if report is None:
                report = executor._stall_report(
                    [st for st in executor._states.values()
                     if st.status != _DONE]
                )
            payload["stalls"] = report.stalls
        except _WorkerAborted:
            payload["status"] = "aborted"
            unfinished = [
                st for st in executor._states.values() if st.status != _DONE
            ]
            if unfinished:
                payload["stalls"] = executor._stall_report(unfinished).stalls
        except SimulationError as exc:
            payload["status"] = "error"
            payload["error"] = pack_exception(exc)
        payload.update(_harvest(executor, obs))
    except BaseException as exc:  # noqa: BLE001 - everything must be reported
        payload["status"] = "error"
        if payload.get("error") is None:
            payload["error"] = pack_exception(exc)
    finally:
        try:
            conn.send(payload)
        except Exception:  # noqa: BLE001 - parent gone; nothing left to do
            pass
        try:
            conn.close()
        except Exception:  # noqa: BLE001
            pass
        status.publish(worker_index, status.progress(worker_index), WORKER_DONE)
        arena.close()  # release inherited views so the mapping unmaps cleanly


# ----------------------------------------------------------------------
# Parent-side checkpoint coordination.
# ----------------------------------------------------------------------


class _CkptCoordinator:
    """The parent's side of the quiescent-cut protocol (DESIGN.md §17).

    A tiny state machine folded into ``_collect``'s supervision ticks:

    ``idle``
        Nothing in flight.  When the timer says a capture is due, write
        the next epoch + ``CKPT_PAUSE`` to the board and move on.
    ``pausing``
        Wait until every live worker has acknowledged the epoch (each
        does so at a slice boundary, so its local contexts are all
        between operations — locally quiescent by construction).
    ``draining``
        Dijkstra-style double sweep over the workers' published drain
        telemetry.  The cut is globally quiescent when two consecutive
        sweeps observe the same live set, zero pending outbound records
        on both, frozen cumulative lane moves, and a strictly advanced
        round counter for every worker (proof each one completed a full
        service loop between the sweeps without moving anything).
    ``dumping``
        Workers write their partition dumps (tmp + rename, then publish
        ``dumped_epoch``).  When every live worker has published, stitch
        the parts with the retired workers' payloads into one
        :class:`~repro.core.checkpoint.Checkpoint`, save it, delete the
        parts, and return to ``idle``.

    Any abort (peer crash, deadline, user) cancels the round: the
    command word flips back to ``CKPT_RUN`` and draining workers resume.
    A stitch/save failure raises ``SimulationError`` — the caller aborts
    the run (a checkpointing run that cannot checkpoint should fail
    loudly, not silently stop protecting the user).
    """

    def __init__(
        self, board: CheckpointBoard, timer, path: str, program: Program,
        clusters: list[ClusterSpec], claim: ClaimBoard, executor_name: str,
    ):
        self._board = board
        self._timer = timer
        self._path = path
        self._program = program
        self._clusters = clusters
        self._claim = claim
        self._executor = executor_name
        self._phase = "idle"
        self._epoch = timer.epoch
        self._prev: Optional[dict[int, tuple]] = None

    @property
    def active(self) -> bool:
        return self._phase != "idle"

    def cancel(self) -> None:
        if self._phase != "idle":
            self._board.set_command(CKPT_RUN)
            self._phase = "idle"
            self._prev = None

    def tick(self, live: set, payloads: dict) -> None:
        """One supervision tick.  ``live`` is the set of workers whose
        payloads have not landed yet; ``payloads`` the landed ones."""
        if not live:
            # Everyone retired mid-round (or before one): nothing left
            # to cut — the run is completing normally.
            self.cancel()
            return
        if self._phase == "idle":
            if self._timer.due():
                self._epoch = self._timer.epoch + 1
                self._prev = None
                self._board.request(self._epoch, CKPT_PAUSE)
                self._phase = "pausing"
            return
        rows = {worker: self._board.row(worker) for worker in live}
        if self._phase == "pausing":
            if all(rows[w][0] == self._epoch for w in live):
                self._phase = "draining"
                self._prev = None
            return
        if self._phase == "draining":
            sweep = {
                w: (rows[w][1], rows[w][2], rows[w][3]) for w in live
            }  # (rounds, moves, pending)
            prev = self._prev
            if prev is not None and set(prev) == set(sweep):
                quiet = all(
                    sweep[w][2] == 0 and prev[w][2] == 0
                    and sweep[w][1] == prev[w][1]
                    and sweep[w][0] > prev[w][0]
                    for w in live
                )
                if quiet:
                    self._board.set_command(CKPT_DUMP)
                    self._phase = "dumping"
                    self._prev = None
                    return
            self._prev = sweep
            return
        if self._phase == "dumping":
            if all(rows[w][4] == self._epoch for w in live):
                self._finish(live, payloads)

    def _finish(self, live: set, payloads: dict) -> None:
        try:
            checkpoint = self._stitch(live, payloads)
            checkpoint.save(self._path)
        except Exception as exc:
            self._board.set_command(CKPT_RUN)
            self._phase = "idle"
            raise SimulationError("<checkpoint>", exc) from exc
        self._board.set_command(CKPT_RUN)
        self._phase = "idle"
        _ckpt.remove_parts(self._path, self._epoch)
        self._timer.mark()

    def _stitch(self, live: set, payloads: dict) -> "_ckpt.Checkpoint":
        """Merge live workers' partition dumps and retired workers'
        harvested payloads into one partition-independent checkpoint."""
        program = self._program
        parts = {
            worker: _ckpt.load_part(self._path, self._epoch, worker)
            for worker in sorted(live)
        }
        retired = [
            payloads[worker] for worker in sorted(payloads)
            if payloads[worker].get("status") == "ok"
        ]

        records: dict[int, dict] = {}
        for part in parts.values():
            records.update(part["records"])
        for payload in retired:
            attrs_by_slot = payload.get("context_attrs") or {}
            for slot, finish in (payload.get("finish_times") or {}).items():
                if slot in records:
                    continue
                ctx = program.contexts[slot]
                shipped = attrs_by_slot.get(slot) or {}
                records[slot] = {
                    "kind": "done",
                    "attrs": {
                        name: shipped[name]
                        for name in ctx.checkpoint_attrs
                        if name in shipped
                    },
                    "clock": finish,
                    "finish_time": finish,
                }
        missing = [
            slot for slot in range(len(program.contexts))
            if slot not in records
        ]
        if missing:
            names = ", ".join(
                program.contexts[slot].name for slot in missing[:5]
            )
            raise CheckpointError(
                f"epoch {self._epoch}: no state for context(s) {names} "
                f"(neither a live partition dump nor a retired worker's "
                f"payload covers them)"
            )

        channels: dict[int, dict] = {}
        for slot, channel in enumerate(program.channels):
            entries = [
                part["channels"][channel.id]
                for part in parts.values()
                if channel.id in part["channels"]
            ]
            whole = next(
                (e["chan"] for e in entries if "chan" in e), None
            )
            if whole is not None:
                # Cluster-internal on a live worker: the dumped state
                # already carries the full totals (restored base
                # inherited at fork, plus everything since).
                channels[slot] = whole
                continue
            # Cut channel (or internal to retired clusters): start from
            # the parent's fork-time base, add the retired workers'
            # shipped deltas, then the live proxies' sides.
            state = channel.checkpoint_state()
            stats = state["stats"]
            log = state["profile_log"]
            for payload in retired:
                shipped = (
                    payload.get("channel_stats") or {}
                ).get(channel.id)
                if shipped is None:
                    continue
                stats["enqueues"] += shipped["enqueues"]
                stats["dequeues"] += shipped["dequeues"]
                stats["peeks"] += shipped["peeks"]
                if shipped["max_real_occupancy"] > stats["max_real_occupancy"]:
                    stats["max_real_occupancy"] = shipped["max_real_occupancy"]
                if shipped.get("profile_log"):
                    log = (log or []) + list(shipped["profile_log"])
            send = next((e["send"] for e in entries if "send" in e), None)
            recv = next((e["recv"] for e in entries if "recv" in e), None)
            if send is not None:
                state["delta"] = send["delta"]
                state["resps"] = list(send["resps"])
                stats["enqueues"] += send["enqueues"]
            if recv is not None:
                state["data"] = list(recv["data"])
                stats["dequeues"] += recv["dequeues"]
                stats["peeks"] += recv["peeks"]
                if recv["max_real_occupancy"] > stats["max_real_occupancy"]:
                    stats["max_real_occupancy"] = recv["max_real_occupancy"]
                if recv["profile_log"]:
                    log = (log or []) + list(recv["profile_log"])
            # Finished flags: each side is authoritative for its own
            # endpoint; with the lanes drained both proxies agree, and a
            # missing side means that endpoint's cluster retired — i.e.
            # the endpoint finished.
            if send is not None:
                state["sender_finished"] = send["sender_finished"]
            elif recv is not None:
                state["sender_finished"] = recv["sender_finished"]
            elif entries or retired:
                state["sender_finished"] = True
            if recv is not None:
                state["receiver_finished"] = recv["receiver_finished"]
            elif send is not None:
                state["receiver_finished"] = send["receiver_finished"]
            elif entries or retired:
                state["receiver_finished"] = True
            if send is None and recv is None and retired:
                # Both endpoints retired: the queue is semantically
                # empty (whatever physically remains is dead letters of
                # a closed channel).
                state["data"] = []
                state["resps"] = []
                state["delta"] = 0
            state["profile_log"] = log
            channels[slot] = state

        placement: dict[str, int] = {}
        for spec in self._clusters:
            owner = self._claim.claimant(spec.index)
            if owner < 0:
                owner = spec.owner
            for slot in spec.contexts:
                placement[program.contexts[slot].name] = owner

        return _ckpt.Checkpoint.capture(
            program,
            self._epoch,
            records,
            metrics=None,
            placement=placement,
            executor=self._executor,
            channel_states=channels,
        )


# ----------------------------------------------------------------------
# The parent-side executor.
# ----------------------------------------------------------------------


@register_executor("process")
class ProcessExecutor(Executor):
    """Partition the program across forked workers; merge the results.

    Parameters
    ----------
    workers:
        Number of worker processes requested.  The partitioner may use
        fewer (e.g. a fully connected graph yields one group); empty
        groups spawn no process.
    policy:
        Scheduling policy for each worker's cooperative scheduler.  A
        finite timeslice is forced so shuttles are serviced at bounded
        intervals.
    weights:
        Optional per-channel traffic weights for the partitioner,
        typically :func:`~repro.core.executor.partition.channel_weights`
        from a profiling run of an identically-built program.
    pins:
        Manual placement: ``id(context) -> worker index``, merged over
        (and overriding) the program's builder-declared
        ``partition_pins``.  Pinning promises co-location/separation,
        not absolute worker numbering (empty groups are compacted).
        With ``steal=True`` pins bind the *initial* placement; a pinned
        cluster left cold may still be migrated to an idle worker.
    steal:
        Allow idle workers to claim (steal) cold clusters planned for
        other workers (default on).  Migration happens before a cluster
        starts running, so simulated results are unchanged;
        ``steal=False`` restores strict planned placement.
    pin_workers:
        Pin each worker process to a CPU set via ``os.sched_setaffinity``
        (default off).  Workers bridged by shuttles are kept on the same
        package (see :func:`~repro.core.executor.affinity.plan_affinity`).
    shuttle:
        ``"shm"`` (default) bridges cut channels with shared-memory SPSC
        rings; ``"pipe"`` uses ``multiprocessing.Pipe`` lanes (arbitrary
        record sizes, higher latency).
    ring_capacity / resp_ring_capacity:
        Bytes per cut channel's data / response ring in shm mode.
    deadlock_grace:
        Seconds every live worker must stay parked with frozen progress
        (and no cold cluster left) before the watchdog declares a global
        deadlock.
    max_ops:
        Per-worker safety valve (forwarded to each worker's scheduler).
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        policy: str | SchedulingPolicy = "fifo",
        max_ops: Optional[int] = None,
        tracer=None,
        obs: Optional[Observability] = None,
        weights: Optional[dict[str, float]] = None,
        pins: Optional[dict[int, int]] = None,
        balance: float = 1.2,
        steal: bool = True,
        pin_workers: bool = False,
        shuttle: str = "shm",
        ring_capacity: int = 1 << 20,
        resp_ring_capacity: int = 1 << 16,
        poll_interval: float = 0.0005,
        deadlock_grace: float = 0.5,
        timeslice: int = 1024,
        join_timeout: float = 5.0,
        deadline_s: Optional[float] = None,
        faults=None,
        metrics_interval_s: Optional[float] = None,
        metrics_sink=None,
        superblocks: Any = "auto",
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shuttle not in ("shm", "pipe"):
            raise ValueError(f"shuttle must be 'shm' or 'pipe', got {shuttle!r}")
        self.workers = workers
        self.policy_spec = policy
        self.policy = make_policy(policy)
        self.max_ops = max_ops
        if obs is None and tracer is not None:
            obs = Observability.from_trace(tracer)
        self.obs = obs
        self.tracer = obs.trace if obs is not None else None
        self.weights = weights
        self.pins = pins
        self.balance = balance
        self.steal = steal
        self.pin_workers = pin_workers
        self.shuttle = shuttle
        self.ring_capacity = ring_capacity
        self.resp_ring_capacity = resp_ring_capacity
        self.poll_interval = poll_interval
        self.deadlock_grace = deadlock_grace
        self.timeslice = timeslice
        self.join_timeout = join_timeout
        self.deadline_s = deadline_s
        self.faults = faults
        self.metrics_interval_s = metrics_interval_s
        self.metrics_sink = metrics_sink
        #: Superblock compilation mode for the worker-side schedulers
        #: ("on"/"off"/"auto"; DESIGN.md §15).  Workers compile each
        #: cluster at activation time, so stolen clusters recompile
        #: against their adopter's shared clock slots.
        self.superblocks = superblocks
        #: Checkpointing (DESIGN.md §17): when ``checkpoint_path`` is
        #: set, the parent coordinates quiescent cuts — workers pause,
        #: drain the shuttle lanes, dump partitions, and the parent
        #: stitches them into one on-disk checkpoint.
        self.checkpoint_interval_s = checkpoint_interval_s
        self.checkpoint_path = checkpoint_path
        #: Set by _collect when the run was aborted for its deadline, so
        #: _resolve_failures raises RunTimeoutError instead of reading the
        #: aborted workers' stalls as a deadlock.
        self._deadline_hit = False
        self.context_switches = 0
        self.wakeups = 0
        self.preemptions = 0
        self.ops_executed = 0
        self.steals = 0
        #: Cluster migrations performed by the last run (diagnostics):
        #: ``{"cluster", "from", "to", "contexts"}`` dicts.
        self.migrations: list[dict] = []
        #: The partition used by the last run (diagnostics).
        self.plan: Optional[PartitionPlan] = None
        #: The cluster refinement of the last run's partition.
        self.clusters: Optional[list[ClusterSpec]] = None

    # ------------------------------------------------------------------

    def execute(self, program: Program) -> RunSummary:
        start = _wallclock.perf_counter()
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                "<process-executor>",
                RuntimeError(
                    "the process executor requires the fork start method "
                    "(context generators cannot be pickled)"
                ),
            )
        mp_ctx = multiprocessing.get_context("fork")

        pins = dict(getattr(program, "partition_pins", None) or {})
        if self.pins:
            pins.update(self.pins)
        plan = plan_partition(
            program, self.workers, weights=self.weights,
            pins=pins or None, balance=self.balance,
        )
        self.plan = plan
        # Empty groups (fewer components than workers) spawn no process;
        # compaction preserves co-location and separation.
        groups = [group for group in plan.groups if group]
        compact: dict[int, int] = {}
        for worker, group in enumerate(plan.groups):
            if group:
                compact[worker] = len(compact)
        assignment = {
            ctx_id: compact[worker]
            for ctx_id, worker in plan.assignment.items()
        }
        clusters = plan_clusters(program, assignment)
        self.clusters = clusters

        # Resume bookkeeping: pop the records *before* forking so the
        # workers inherit them via options (never through the program
        # object, which a later fresh run would then misread).
        resume_records = program.__dict__.pop("_resume_records", None)
        resume_epoch = (
            getattr(program, "_resume_epoch", 0)
            if resume_records is not None
            else 0
        )
        if self.checkpoint_path is not None:
            _ckpt.validate_checkpointable(program)

        contexts = program.contexts
        layout = ArenaLayout()
        clocks_len = SharedClockArray.size_for(len(contexts))
        clocks_off = layout.reserve(clocks_len)
        status_len = StatusBoard.size_for(len(groups))
        status_off = layout.reserve(status_len)
        claim_len = ClaimBoard.size_for(len(clusters))
        claim_off = layout.reserve(claim_len)
        ckpt_len = ckpt_off = 0
        if self.checkpoint_path is not None:
            ckpt_len = CheckpointBoard.size_for(len(groups))
            ckpt_off = layout.reserve(ckpt_len)
        ring_offsets: list[tuple[int, int]] = []
        if self.shuttle == "shm":
            for _ in plan.cut:
                data_off = layout.reserve(ShmRing.size_for(self.ring_capacity))
                resp_off = layout.reserve(
                    ShmRing.size_for(self.resp_ring_capacity)
                )
                ring_offsets.append((data_off, resp_off))

        arena = SharedArena(layout.size)
        # Declared before the try so the wind-down in ``finally`` sees
        # whatever was spawned, on *every* exit path: a KeyboardInterrupt
        # (or any parent-side failure) must still terminate-then-join the
        # children and unlink the arena, or the host leaks processes and
        # /dev/shm segments.
        procs: list = []
        conns: dict = {}
        abort = None
        sampler = None
        self._deadline_hit = False
        try:
            clocks = arena.adopt(
                SharedClockArray(
                    arena.view(clocks_off, clocks_len), len(contexts)
                )
            )
            # Pre-publish every context's start time so cold contexts
            # read correctly through SharedTimeView before activation.
            for slot, ctx in enumerate(contexts):
                clocks.write(slot, float(ctx.time.now()))
            status = arena.adopt(
                StatusBoard(arena.view(status_off, status_len), len(groups))
            )
            claim = arena.adopt(
                ClaimBoard(arena.view(claim_off, claim_len), len(clusters))
            )
            for spec in clusters:
                claim.set_owner(spec.index, spec.owner)
            ckpt_board = None
            coordinator = None
            if self.checkpoint_path is not None:
                _ckpt.clean_stale_temps(self.checkpoint_path)
                ckpt_board = arena.adopt(
                    CheckpointBoard(
                        arena.view(ckpt_off, ckpt_len), len(groups)
                    )
                )
                interval = self.checkpoint_interval_s
                coordinator = _CkptCoordinator(
                    board=ckpt_board,
                    timer=_ckpt.CheckpointTimer(
                        0.0 if interval is None else interval,
                        start_epoch=resume_epoch,
                    ),
                    path=self.checkpoint_path,
                    program=program,
                    clusters=clusters,
                    claim=claim,
                    executor_name=self.name,
                )
            claim_lock = mp_ctx.Lock()
            shuttles: dict[int, ChannelShuttle] = {}
            for index, channel in enumerate(plan.cut):
                if self.shuttle == "shm":
                    data_off, resp_off = ring_offsets[index]
                    data_lane = arena.adopt(
                        ShmRing(
                            arena.view(
                                data_off, ShmRing.size_for(self.ring_capacity)
                            ),
                            self.ring_capacity,
                        )
                    )
                    resp_lane = arena.adopt(
                        ShmRing(
                            arena.view(
                                resp_off,
                                ShmRing.size_for(self.resp_ring_capacity),
                            ),
                            self.resp_ring_capacity,
                        )
                    )
                else:
                    data_lane = PipeLane(mp_ctx)
                    resp_lane = PipeLane(mp_ctx)
                shuttles[channel.id] = ChannelShuttle(
                    channel.id, data_lane, resp_lane
                )

            abort = mp_ctx.Event()
            faults = (
                self.faults.resolve(len(groups))
                if self.faults is not None
                else None
            )
            cpu_sets = None
            if self.pin_workers:
                peer_pairs = [
                    (
                        assignment[id(channel.sender_owner)],
                        assignment[id(channel.receiver_owner)],
                    )
                    for channel in plan.cut
                ]
                cpu_sets = plan_affinity(len(groups), peer_pairs)
            options = {
                "policy": self.policy_spec,
                "max_ops": self.max_ops,
                "steal": self.steal,
                "cpus": cpu_sets,
                "poll_interval": self.poll_interval,
                "timeslice": self.timeslice,
                "trace": self.obs is not None and self.obs.trace is not None,
                "metrics": self.obs is not None
                and self.obs.metrics is not None,
                "capture_payloads": (
                    self.obs.trace.capture_payloads
                    if self.obs is not None and self.obs.trace is not None
                    else False
                ),
                "faults": faults,
                "superblocks": self.superblocks,
                "checkpoint": (
                    {"board": ckpt_board, "dir": self.checkpoint_path}
                    if ckpt_board is not None
                    else None
                ),
                "resume_records": resume_records,
            }

            # Live metric streaming samples the *shared* clock slots from
            # the parent: workers publish their contexts' times to the
            # arena anyway, so the sampler adds zero work to any worker.
            sampler = self._start_sampler(
                self.metrics_interval_s,
                self._sampler_probe(contexts, clocks, status),
                self.metrics_sink,
            )

            for worker in range(len(groups)):
                parent_conn, child_conn = mp_ctx.Pipe(duplex=False)
                proc = mp_ctx.Process(
                    target=_worker_main,
                    args=(
                        worker, program, clusters, claim, claim_lock,
                        shuttles, arena, clocks, status, abort, child_conn,
                        options,
                    ),
                    name=f"dam-worker-{worker}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns[parent_conn] = worker

            payloads = self._collect(
                conns, status, abort, procs, claim, clusters, program, clocks,
                start, coordinator=coordinator,
            )
            self._resolve_failures(payloads, program, clocks, start)
            trace = self.obs.trace if self.obs is not None else None
            summary = RunSummary.merge(
                program,
                [payloads[worker] for worker in sorted(payloads)],
                trace=trace,
            )
        finally:
            # The sampler reads arena memory; stop it before the unmap.
            self._stop_sampler(sampler, self.obs)
            self._wind_down(procs, conns, abort)
            arena.close()
            arena.unlink()
            if self.checkpoint_path is not None:
                # A cancelled round (crash, deadline, abort) leaves its
                # partition dumps behind; with every worker wound down
                # it is now safe to sweep them.
                try:
                    _ckpt.clean_stale_temps(self.checkpoint_path)
                except OSError:  # pragma: no cover - directory vanished
                    pass

        self.context_switches += summary.context_switches
        self.wakeups += summary.wakeups
        self.preemptions += summary.preemptions
        self.ops_executed += summary.ops_executed
        self.steals += summary.steals
        self.migrations = [
            migration
            for worker in sorted(payloads)
            for migration in payloads[worker].get("migrations", ())
        ]
        # Observed placement: planned owners, overridden by every recorded
        # steal.  This is the feedback loop the planner consumes via
        # pins_from_placement() — without it, channel_weights-style
        # replanning keeps crediting stolen clusters to their original
        # owner and re-plans the same skew forever.
        placement = {
            program.contexts[slot].name: spec.owner
            for spec in clusters
            for slot in spec.contexts
        }
        for migration in self.migrations:
            for name in migration["contexts"]:
                placement[name] = migration["to"]
        summary.placement = placement
        summary.executor = self.name
        summary.policy = self.policy.name
        summary.real_seconds = _wallclock.perf_counter() - start
        summary.metrics = self._fold_metrics(program, plan, payloads)
        self._attach_profile(summary, program, self.obs)
        return summary

    def _sampler_probe(self, contexts, clocks: SharedClockArray, status: StatusBoard):
        """Read-only closure for the live sampler: every context's
        shared-memory clock slot, total worker progress, and the parent
        registry when metrics are enabled."""
        obs = self.obs
        registry = obs.metrics if obs is not None else None

        def probe() -> dict:
            progress, _states = status.snapshot()
            sample: dict = {
                "contexts": {
                    ctx.name: clocks.read(slot)
                    for slot, ctx in enumerate(contexts)
                },
                "progress": progress,
            }
            if registry is not None:
                sample["metrics"] = registry.snapshot()
            return sample

        return probe

    # ------------------------------------------------------------------

    def _collect(
        self, conns: dict, status: StatusBoard, abort, procs,
        claim: ClaimBoard, clusters: list[ClusterSpec], program: Program,
        clocks: SharedClockArray, start: float,
        coordinator: Optional[_CkptCoordinator] = None,
    ) -> dict:
        """Receive worker payloads; double as the crash supervisor, the
        deadline enforcer, and the global deadlock watchdog.

        Crash supervision is two-layered: a dead worker's result pipe hits
        EOF (its write end closes with the process), and its process
        sentinel fires — both are waited on, so a SIGKILLed worker is
        detected within one tick even if something keeps its pipe fd
        alive.  Either way the worker is recorded as ``"crashed"`` with
        its exit code, claimed contexts, and last-published clocks
        snapshotted off the shared boards while they are still mapped.
        """
        payloads: dict[int, dict] = {}
        pending = dict(conns)
        tick = max(self.poll_interval * 4, 0.01)
        deadline_at = (
            start + self.deadline_s if self.deadline_s is not None else None
        )
        abort_since: Optional[float] = None
        stable_since: Optional[float] = None
        last_total = -1
        while pending:
            sentinels = {
                procs[worker].sentinel: (conn, worker)
                for conn, worker in pending.items()
            }
            ready = _mpconn.wait(
                list(pending) + list(sentinels), timeout=tick
            )
            collected = False
            for item in ready or ():
                if item in pending:
                    conn, worker = item, pending[item]
                elif item in sentinels:
                    conn, worker = sentinels[item]
                    # The process died.  A final payload may still sit in
                    # the pipe (normal exit races its own sentinel); only
                    # an empty pipe means a crash, and recv below turns
                    # that into EOFError.
                else:
                    continue  # pragma: no cover - defensive
                if worker in payloads:
                    continue  # both wait objects fired for one worker
                pending.pop(conn, None)
                try:
                    payloads[worker] = conn.recv()
                except (EOFError, OSError):
                    payloads[worker] = self._crash_payload(
                        worker, procs, claim, clusters, program, clocks
                    )
                conn.close()
                collected = True
                if payloads[worker]["status"] not in ("ok", "aborted"):
                    abort.set()  # wind the surviving workers down
            if abort.is_set() and abort_since is None:
                abort_since = _wallclock.perf_counter()
            if coordinator is not None:
                if abort.is_set():
                    coordinator.cancel()
                else:
                    # A stitch failure raises out of here; the abort in
                    # between winds the workers down on the way out.
                    try:
                        coordinator.tick(set(pending.values()), payloads)
                    except BaseException:
                        abort.set()
                        raise
            if collected:
                stable_since = None
                last_total = -1
                continue
            now = _wallclock.perf_counter()
            if deadline_at is not None and not self._deadline_hit \
                    and now >= deadline_at:
                # Deadline: flip the abort switch and keep collecting —
                # workers park their state into "aborted" payloads
                # (stalls included) that feed the RunTimeoutError.
                self._deadline_hit = True
                abort.set()
                abort_since = now
                continue
            if abort_since is not None and (
                now - abort_since > self.join_timeout
            ):
                # Workers ignored the abort for a whole join_timeout
                # (wedged in uninterruptible state): stop waiting and
                # record them as crashed; _wind_down terminates them.
                for conn, worker in list(pending.items()):
                    payloads[worker] = self._crash_payload(
                        worker, procs, claim, clusters, program, clocks
                    )
                    pending.pop(conn)
                    conn.close()
                break
            # Nothing arrived this tick: check for a global deadlock.  A
            # run with cold (claimable) clusters left is never deadlocked
            # — some worker will claim one, and claiming bumps progress.
            total, states = status.snapshot()
            if coordinator is not None and coordinator.active:
                # Draining workers legitimately park with frozen
                # status-board progress; the watchdog must not read a
                # checkpoint round as a deadlock.
                stable_since = None
                last_total = total
                continue
            live = [states[w] for w in pending.values()]
            if live and all(s == WORKER_BLOCKED for s in live) \
                    and total == last_total and claim.cold_count() == 0:
                if stable_since is None:
                    stable_since = _wallclock.perf_counter()
                elif (
                    _wallclock.perf_counter() - stable_since
                    >= self.deadlock_grace
                ):
                    abort.set()
            else:
                stable_since = None
            last_total = total
        for proc in procs:
            proc.join(timeout=self.join_timeout)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        return payloads

    def _crash_payload(
        self, worker: int, procs, claim: ClaimBoard,
        clusters: list[ClusterSpec], program: Program,
        clocks: SharedClockArray,
    ) -> dict:
        """Post-mortem for a dead worker: exit code, the contexts it had
        claimed, and their last-published clocks (read off the shared
        boards before the arena is unlinked)."""
        proc = procs[worker]
        proc.join(timeout=0.2)  # give the exit code a beat to land
        contexts: list[str] = []
        clock_map: dict[str, float] = {}
        for spec in clusters:
            if claim.claimant(spec.index) != worker:
                continue
            for slot in spec.contexts:
                name = program.contexts[slot].name
                contexts.append(name)
                clock_map[name] = clocks.read(slot)
        return {
            "worker": worker, "status": "crashed", "error": None,
            "stalls": None, "exitcode": proc.exitcode,
            "contexts": contexts, "clocks": clock_map,
        }

    def _wind_down(self, procs, conns, abort) -> None:
        """Terminate-then-join every worker and close the parent pipe
        ends.  Runs in ``execute``'s finally on every exit path —
        KeyboardInterrupt included — so no exit can strand children (the
        shm segment unlink follows immediately after)."""
        if abort is not None:
            try:
                abort.set()
            except Exception:  # noqa: BLE001 - wind-down must not raise
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=self.join_timeout)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=1.0)
        for conn in conns:
            try:
                conn.close()
            except Exception:  # noqa: BLE001
                pass

    def _resolve_failures(
        self, payloads: dict, program: Program, clocks: SharedClockArray,
        start: float,
    ) -> None:
        """Raise the run's failure, if any: error > crash > timeout >
        deadlock."""
        for payload in payloads.values():
            if payload["status"] == "error":
                info = payload.get("error") or {}
                exc = unpack_exception(info)
                if isinstance(exc, SimulationError):
                    raise exc
                if isinstance(exc, DamError):
                    raise exc
                raise SimulationError(
                    f"<worker {payload['worker']}>", exc
                ) from exc
        for worker, payload in sorted(payloads.items()):
            if payload["status"] != "crashed":
                continue
            if self._deadline_hit and payload.get("exitcode") is None:
                # Not a real death: the deadline abort's escape hatch
                # force-recorded a worker that ignored the abort flag for a
                # whole join_timeout (it was still alive — no exit code).
                # That is the *timeout's* collateral, not a crash.
                continue
            error = WorkerCrashError(
                worker,
                exitcode=payload.get("exitcode"),
                contexts=payload.get("contexts"),
                clocks=payload.get("clocks"),
            )
            self._report_supervisor_event("crash", error)
            raise error
        if any(
            payload["status"] in ("stalled", "aborted")
            for payload in payloads.values()
        ):
            stalls = []
            for payload in payloads.values():
                if payload.get("stalls"):
                    stalls.extend(payload["stalls"])
            report = StallReport(stalls)
            if self.obs is not None:
                self.obs.stall_report = report
            if self._deadline_hit:
                error = self._timeout_failure(payloads, program, clocks,
                                              report, start)
                self._report_supervisor_event("timeout", error)
                raise error
            raise DeadlockError(report.lines())
        if self._deadline_hit:
            # Reached when every worker either raced to completion as the
            # deadline fired or was force-recorded by the escape hatch.
            error = self._timeout_failure(
                payloads, program, clocks, StallReport([]), start
            )
            self._report_supervisor_event("timeout", error)
            raise error

    def _timeout_failure(
        self, payloads: dict, program: Program, clocks: SharedClockArray,
        report: StallReport, start: float,
    ) -> RunTimeoutError:
        """Build the deadline abort without mutating ``program``: finish
        times come from the aborted workers' harvests, everything else
        from the shared clock board (a lower bound on each context)."""
        finish: dict[int, Any] = {}
        ops = 0
        for payload in payloads.values():
            for slot, t in payload.get("finish_times", {}).items():
                if t is not None:
                    finish[slot] = t
            ops += payload.get("counters", {}).get("ops_executed", 0)
        context_times = {
            ctx.name: finish.get(slot, clocks.read(slot))
            for slot, ctx in enumerate(program.contexts)
        }
        summary = RunSummary(
            elapsed_cycles=max(finish.values(), default=0),
            real_seconds=_wallclock.perf_counter() - start,
            context_times=context_times,
            executor=self.name,
            policy=self.policy.name,
            ops_executed=ops,
        )
        return RunTimeoutError(
            self.deadline_s,
            executor=self.name,
            summary=summary,
            stall_report=report,
        )

    def _report_supervisor_event(self, kind: str, error) -> None:
        """Feed the failure into the run's observability: a supervisor
        pseudo-buffer event in the trace merge, a crash report on the
        obs handle, and a counter in the metrics registry."""
        if self.obs is None:
            return
        if kind == "crash":
            self.obs.crash_report = error
        if self.obs.metrics is not None:
            name = "worker_crashes" if kind == "crash" else "run_timeouts"
            self.obs.metrics.counter(name).inc()
        if self.obs.trace is not None:
            payload: dict[str, Any] = {"error": str(error)}
            if kind == "crash":
                payload.update(
                    worker=error.worker,
                    exitcode=error.exitcode,
                    contexts=list(error.contexts),
                )
            self.obs.trace.buffer("<supervisor>").append(
                kind, None, 0, payload
            )

    def _fold_metrics(
        self, program: Program, plan: PartitionPlan, payloads: dict
    ) -> Optional[dict]:
        if self.obs is None or self.obs.metrics is None:
            return None
        registry = self.obs.metrics
        fold_channel_metrics(registry, program.channels)
        for payload in payloads.values():
            for slot, tallies in payload.get("context_stats", {}).items():
                ctx = program.contexts[slot]
                fold_context_metrics(
                    registry,
                    ctx.name,
                    ops=tallies["ops"],
                    finish_time=ctx.finish_time,
                    wall_seconds=tallies["wall"],
                )
        registry.counter("executor_context_switches").inc(self.context_switches)
        registry.counter("executor_wakeups").inc(self.wakeups)
        registry.counter("executor_preemptions").inc(self.preemptions)
        registry.counter("executor_ops").inc(self.ops_executed)
        registry.gauge("process_workers").set(plan.workers_used)
        registry.gauge("process_cut_channels").set(len(plan.cut))
        registry.counter("process_steals").inc(self.steals)
        registry.counter("process_migrated_contexts").inc(
            sum(len(m["contexts"]) for m in self.migrations)
        )
        return registry.snapshot()
