"""Typed run configuration shared by every executor.

:class:`RunConfig` replaces the historical ad-hoc ``**kwargs`` surface of
:meth:`repro.core.program.Program.run`: one frozen dataclass carries every
tunable any executor understands, and each executor receives exactly the
subset its constructor declares (:meth:`RunConfig.kwargs_for` filters by
signature).  That subsetting is what makes one config portable across
runtimes — ``RunConfig(workers=4)`` is honored by the process executor
and silently irrelevant to the sequential one, so the same config can be
handed to ``Program.run(executor="auto")`` without knowing which runtime
will win.

Fields default to ``None`` (= "use the executor's own default"), so a
config only ever *overrides* what the caller explicitly set.  Unknown or
experimental knobs travel in ``extra`` and are passed through verbatim —
those are validated by the target constructor, exactly like the old
kwargs form.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, field
from typing import Any, Optional

#: RunConfig fields that are configuration, not payload (``extra`` is
#: special-cased everywhere).
_CONFIG_FIELDS: Optional[frozenset] = None

#: Fields interpreted by :meth:`Program.run` itself, never forwarded to an
#: executor constructor (the retry ladder re-runs whole executions and the
#: tag stamps the finished summary; no executor could honour either from
#: the inside).
_RUN_ONLY_FIELDS = frozenset({"fallback", "tag"})

#: Fields whose values are process-local by construction and therefore can
#: never travel on the wire: live objects (``obs``, ``policy`` instances,
#: ``faults`` plans, ``metrics_sink`` callables) and ``pins``, which is
#: keyed by ``id(context)`` — rebuild it on the receiving side from a
#: name-keyed placement via
#: :func:`~repro.core.executor.partition.pins_from_placement`.
_LOCAL_ONLY_FIELDS = frozenset({"obs", "pins", "faults", "metrics_sink"})


def _config_fields() -> frozenset:
    global _CONFIG_FIELDS
    if _CONFIG_FIELDS is None:
        _CONFIG_FIELDS = frozenset(
            f.name for f in dataclasses.fields(RunConfig) if f.name != "extra"
        )
    return _CONFIG_FIELDS


def _check_wire(name: str, value: Any) -> Any:
    """Verify ``value`` is built purely of JSON-representable pieces.

    Containers are copied (so mutating the wire dict never aliases the
    frozen config); anything else — class instances, callables, numpy
    scalars — raises :class:`TypeError` naming the field.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_wire(name, item) for item in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"RunConfig.{name} has non-string dict key {key!r}; "
                    "wire dicts must be string-keyed"
                )
        return {key: _check_wire(name, item) for key, item in value.items()}
    raise TypeError(
        f"RunConfig.{name}={value!r} is not wire-serializable; only "
        "JSON-representable values travel (see RunConfig.to_dict)"
    )


@dataclass(frozen=True)
class RunConfig:
    """Executor-independent run configuration.

    Parameters
    ----------
    workers:
        Worker processes (process executor) or a hint for future
        runtimes.
    policy:
        Scheduling policy name or instance for cooperative schedulers.
    fast_path:
        Enable the sequential executor's inline fast loop.
    max_ops:
        Safety valve: abort after this many operations.
    obs:
        An :class:`repro.obs.Observability` collecting trace/metrics.
    steal:
        Allow idle workers to claim (steal) cold clusters planned for
        other workers (process executor; default on).
    pin_workers:
        Pin workers/threads to CPUs via ``os.sched_setaffinity``,
        keeping shuttle peers on the same package (default off).
    deadlock_grace:
        Seconds of global stillness before the deadlock watchdog fires.
    poll_interval:
        Polling cadence for parked workers/threads.
    timeslice:
        Forced timeslice for worker-side cooperative scheduling.
    shuttle:
        ``"shm"`` or ``"pipe"`` cut-channel transport.
    weights / pins / balance:
        Partitioner inputs (see :func:`~repro.core.executor.partition.plan_partition`).
    deadline_s:
        Wall-clock budget for the run.  Every executor aborts cleanly into
        :class:`~repro.core.errors.RunTimeoutError` (carrying a partial
        summary and a stall report) once the budget is exhausted.
    fallback:
        Retry ladder for non-deterministic host failures (worker crash,
        deadline overrun — never ``DeadlockError``/``SimulationError``).
        A name, a sequence of names, or ``True`` for the default ladder
        ``process → threaded → sequential`` below the current executor.
        Consumed by :meth:`Program.run`, never by executors.
    faults:
        A :class:`~repro.core.faults.FaultPlan` of injected failures for
        chaos testing.
    metrics_interval_s:
        Enable live metric streaming: every this many wall-clock seconds
        a read-only sampler snapshots context clocks, op counters, and
        the metrics registry (see :class:`repro.obs.stream.MetricsSampler`).
        Sampling never perturbs simulated results.
    metrics_sink:
        Where streamed samples go: a callable invoked per sample, or a
        path appended to as JSON lines.  Samples are always also kept on
        ``obs.metrics_samples`` when an ``obs`` is attached.
    superblocks:
        Superblock compilation of cold clusters (DESIGN.md §15):
        ``"on"``/``True`` compiles every multi-context cold cluster into
        a straight-line driver, ``"off"``/``False`` disables it, and
        ``"auto"`` (executor default) compiles clusters the planner
        considers worth it (``plan_clusters`` + observed channel
        weights).  Results, traces, and profiles are bit-identical in
        every mode.
    checkpoint_interval_s:
        Enable checkpointing (DESIGN.md §17): at each quiescent cut at
        least this many wall-clock seconds after the previous capture,
        the executor snapshots the full program state into
        ``checkpoint_path``.  ``0`` captures at *every* quiescent
        opportunity (deterministic cadence; what the bit-identity tests
        use).  Requires every context to honour the resumable-state
        contract — a run over an opaque-generator context refuses up
        front with :class:`~repro.core.errors.NotCheckpointable`.
    checkpoint_path:
        Directory receiving the checkpoint epoch files (created if
        missing).  With ``fallback=`` set, a crashed or timed-out
        attempt resumes from the latest valid checkpoint here instead of
        restarting from scratch (``RunSummary.attempts`` records
        ``resumed_from``).
    tag:
        An opaque identity stamped onto the finished
        :class:`~repro.core.executor.base.RunSummary` (``summary.tag``)
        and every retry-ladder attempt record.  Never interpreted by any
        executor — it exists so a caller multiplexing many runs (the
        ``repro.serve`` front end tags ``tenant/request_id``) can
        attribute summaries in logs and metrics.
    extra:
        Anything else, passed through to the executor constructor
        verbatim (and validated there).
    """

    workers: Optional[int] = None
    policy: Any = None
    fast_path: Optional[bool] = None
    max_ops: Optional[int] = None
    obs: Any = None
    steal: Optional[bool] = None
    pin_workers: Optional[bool] = None
    deadlock_grace: Optional[float] = None
    poll_interval: Optional[float] = None
    timeslice: Optional[int] = None
    shuttle: Optional[str] = None
    weights: Optional[dict] = None
    pins: Optional[dict] = None
    balance: Optional[float] = None
    deadline_s: Optional[float] = None
    fallback: Any = None
    faults: Any = None
    metrics_interval_s: Optional[float] = None
    metrics_sink: Any = None
    superblocks: Any = None
    checkpoint_interval_s: Optional[float] = None
    checkpoint_path: Optional[str] = None
    tag: Optional[str] = None
    extra: dict = field(default_factory=dict)

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied; unknown keys land in ``extra``."""
        known = {k: v for k, v in changes.items() if k in _config_fields()}
        unknown = {k: v for k, v in changes.items() if k not in _config_fields()}
        config = dataclasses.replace(self, **known) if known else self
        if unknown:
            merged = dict(config.extra)
            merged.update(unknown)
            config = dataclasses.replace(config, extra=merged)
        return config

    # ------------------------------------------------------------------
    # Wire format.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The wire form of this config: a JSON-clean dict of every field
        the caller set (``None`` fields — "use the executor default" —
        are omitted, so the dict round-trips through :meth:`from_dict`
        to an equal config).

        Only declarative values travel: a config holding a live object
        (an ``obs`` bundle, a policy *instance*, a fault plan, a metrics
        sink callable) or the ``id()``-keyed ``pins`` mapping raises
        :class:`TypeError` naming the offending field — those are
        process-local by construction and must be re-attached on the
        receiving side.
        """
        out: dict[str, Any] = {}
        for name in sorted(_config_fields()):
            value = getattr(self, name)
            if value is None:
                continue
            if name in _LOCAL_ONLY_FIELDS:
                raise TypeError(
                    f"RunConfig.{name} is process-local and cannot be "
                    f"serialized (got {value!r}); attach it after "
                    "from_dict() on the receiving side"
                )
            out[name] = _check_wire(name, value)
        if self.extra:
            out["extra"] = _check_wire("extra", dict(self.extra))
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunConfig":
        """Rebuild a config from its :meth:`to_dict` wire form, strictly.

        Unknown keys raise :class:`ValueError` listing every valid field
        (mirroring the executor registry's unknown-name error) — a typo
        in a serialized request must fail loudly at the API boundary,
        not vanish into ``extra`` to explode inside some constructor.
        Experimental knobs belong under an explicit ``"extra"`` dict.
        """
        if not isinstance(data, dict):
            raise TypeError(f"RunConfig.from_dict wants a dict, got {data!r}")
        valid = _config_fields() | {"extra"}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown RunConfig field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        extra = data.get("extra", {})
        if not isinstance(extra, dict):
            raise TypeError(f"RunConfig 'extra' must be a dict, got {extra!r}")
        fields = {k: v for k, v in data.items() if k != "extra"}
        return cls(**fields, extra=dict(extra))

    def kwargs_for(self, executor_cls: type) -> dict[str, Any]:
        """The constructor kwargs of this config that ``executor_cls``
        accepts.

        Fields left at ``None`` are omitted (the executor default wins);
        set fields the constructor does not declare are dropped — that is
        the portability contract.  ``extra`` entries are never dropped:
        they are passed through so a typo fails loudly in the
        constructor, matching the legacy kwargs behavior.
        """
        params = inspect.signature(executor_cls.__init__).parameters
        accepts_any = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        )
        kwargs: dict[str, Any] = {}
        for name in _config_fields():
            if name in _RUN_ONLY_FIELDS:
                continue
            value = getattr(self, name)
            if value is None:
                continue
            if accepts_any or name in params:
                kwargs[name] = value
        kwargs.update(self.extra)
        return kwargs
