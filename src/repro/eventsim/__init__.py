"""An SST-style event-driven simulation engine (baseline for Fig. 3).

This package reproduces the *architecture* DAM is compared against
(Section II and VI-B): components register event handlers, communicate over
latency-annotated links, and a central ordered event queue drives
execution.  A barrier-synchronized parallel engine mirrors SST's
conservative multi-worker execution, where the barrier period is bounded by
the minimum cross-worker link latency.

The qualitative drawbacks the paper highlights are faithfully present:

* handlers may not reject events, so components buffer inputs locally and
  cannot model backpressure (all links are effectively unbounded);
* alignment of multi-input units needs explicit buffering code
  (compare :class:`~repro.eventsim.component.MergeComponent` with the CSPT
  merge in :mod:`repro.contexts.merge`);
* every event pays for global time ordering through the queue.
"""

from .component import Component, MergeComponent, PortBuffer
from .engine import Engine, Link, SimulationStats
from .event import Event, EventQueue
from .parallel import ParallelEngine

__all__ = [
    "Component",
    "MergeComponent",
    "PortBuffer",
    "Engine",
    "Link",
    "SimulationStats",
    "Event",
    "EventQueue",
    "ParallelEngine",
]
