"""Value array lookup: SAM's Array (vals) primitive."""

from __future__ import annotations

import numpy as np

from ...core.channel import Receiver, Sender
from ..token import ABSENT, DONE, Stop
from .base import SamContext, TimingParams


class ArrayVals(SamContext):
    """Map leaf references to stored values.

    References index the tensor's values array; ``ABSENT`` references (a
    union's missing side) read as 0.0, which is what makes union-based
    addition work without special cases downstream.  Control tokens pass
    through unchanged.
    """

    def __init__(
        self,
        vals: np.ndarray,
        in_ref: Receiver,
        out_val: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.in_ref = in_ref
        self.out_val = out_val
        self.register(in_ref, out_val)

    def run(self):
        vals = self.vals
        while True:
            token = yield self.in_ref.dequeue()
            if token is DONE:
                yield self.out_val.enqueue(DONE)
                return
            if isinstance(token, Stop):
                yield self.out_val.enqueue(token)
                yield self.tick_control()
            elif token is ABSENT:
                yield self.out_val.enqueue(0.0)
                yield self.tick()
            else:
                yield self.out_val.enqueue(float(vals[token]))
                yield self.tick()
