"""Coordinate bookkeeping primitives: CrdDrop and CrdHold.

* **CrdDrop** removes outer coordinates whose inner fiber turned out empty
  (after an intersect, a row may contribute no output).  It consumes the
  outer crd stream plus the inner crd stream that resulted from it, and
  re-emits only the surviving outer coordinates.

* **CrdHold** replicates the current outer coordinate once per inner
  payload, producing a stream aligned with the inner one (used to carry
  row indices alongside per-element streams, e.g. SDDMM's dense gathers).
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class CrdDrop(SamContext):
    """Keep outer coordinates with nonempty inner fibers."""

    checkpoint_attrs = ("_outer", "_inner", "_nonempty", "_matching")

    def __init__(
        self,
        in_outer_crd: Receiver,
        in_inner_crd: Receiver,
        out_crd: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_outer_crd = in_outer_crd
        self.in_inner_crd = in_inner_crd
        self.out_crd = out_crd
        self._outer = UNSET
        self._inner = UNSET  # UNSET = not yet pulled for the current outer
        self._nonempty = False
        self._matching = UNSET  # the mirrored outer stop, once pulled
        self.register(in_outer_crd, in_inner_crd, out_crd)

    def run(self):
        deq_outer = self.in_outer_crd.dequeue()
        deq_inner = self.in_inner_crd.dequeue()
        enq = self.out_crd.enqueue(None)
        # Hot path: one tick per surviving inner payload, refill inner.
        scan = FusedOps(self.tick(), deq_inner)
        emit_pull = FusedOps(enq, self.tick_control(), deq_outer)
        skip_pull = FusedOps(self.tick_control(), deq_outer)
        emit_next = FusedOps(enq, deq_outer)
        if self._outer is UNSET:
            self._outer = yield deq_outer
        while True:
            outer = self._outer
            if outer is DONE:
                if self._inner is UNSET:
                    self._inner = yield deq_inner
                assert self._inner is DONE, (
                    f"{self.name}: outer done but inner sent {self._inner!r}"
                )
                enq.data = DONE
                yield enq
                return
            if outer.__class__ is Stop:
                # An empty outer fiber: the inner stream presents the
                # matching one-deeper stop; mirror the outer stop through.
                if self._inner is UNSET:
                    self._inner = yield deq_inner
                inner = self._inner
                assert isinstance(inner, Stop) and inner.level == outer.level + 1, (
                    f"{self.name}: outer stop {outer!r} paired with inner "
                    f"{inner!r} (expected Stop({outer.level + 1}))"
                )
                enq.data = outer
                res = yield emit_pull
                self._inner = UNSET
                self._outer = res[2]
                continue
            # Scan this outer coordinate's inner fiber.
            if self._inner is UNSET:
                self._inner = yield deq_inner
            while self._inner.__class__ is not Stop:
                assert self._inner is not DONE, (
                    f"{self.name}: inner stream done mid-fiber"
                )
                res = yield scan
                self._nonempty = True
                self._inner = res[1]
            inner = self._inner
            if inner.level >= 1:
                # Inner boundary also closes outer levels: mirror it on the
                # outer stream (consume) and the output (emit, one level
                # shallower).
                if self._matching is UNSET:
                    if self._nonempty:
                        enq.data = outer
                        res = yield emit_pull
                        self._matching = res[2]
                    else:
                        res = yield skip_pull
                        self._matching = res[1]
                matching = self._matching
                expected = inner.level - 1
                assert isinstance(matching, Stop) and matching.level == expected, (
                    f"{self.name}: expected outer Stop({expected}), got "
                    f"{matching!r}"
                )
                enq.data = matching
                res = yield emit_next
                self._outer = res[1]
                self._inner = UNSET
                self._matching = UNSET
                self._nonempty = False
            elif self._nonempty:
                enq.data = outer
                res = yield emit_pull
                self._outer = res[2]
                self._inner = UNSET
                self._nonempty = False
            else:
                res = yield skip_pull
                self._outer = res[1]
                self._inner = UNSET
                self._nonempty = False


class CrdHold(SamContext):
    """Emit the held outer coordinate once per inner payload."""

    checkpoint_attrs = ("_outer", "_inner", "_matching")

    def __init__(
        self,
        in_outer_crd: Receiver,
        in_inner_crd: Receiver,
        out_crd: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_outer_crd = in_outer_crd
        self.in_inner_crd = in_inner_crd
        self.out_crd = out_crd
        self._outer = UNSET
        self._inner = UNSET  # UNSET = not yet pulled for the current outer
        self._matching = UNSET  # the consumed outer stop, once pulled
        self.register(in_outer_crd, in_inner_crd, out_crd)

    def run(self):
        deq_outer = self.in_outer_crd.dequeue()
        deq_inner = self.in_inner_crd.dequeue()
        enq = self.out_crd.enqueue(None)
        # Hot path: emit the held outer crd, tick, refill inner.
        hold_step = FusedOps(enq, self.tick(), deq_inner)
        emit_pull = FusedOps(enq, self.tick_control(), deq_outer)
        if self._outer is UNSET:
            self._outer = yield deq_outer
        while True:
            outer = self._outer
            if outer is DONE:
                if self._inner is UNSET:
                    self._inner = yield deq_inner
                assert self._inner is DONE, (
                    f"{self.name}: outer done but inner sent {self._inner!r}"
                )
                enq.data = DONE
                yield enq
                return
            if outer.__class__ is Stop:
                # Empty outer fiber: pass the inner stream's matching
                # one-deeper stop through (output aligns with the inner).
                if self._inner is UNSET:
                    self._inner = yield deq_inner
                inner = self._inner
                assert isinstance(inner, Stop) and inner.level == outer.level + 1, (
                    f"{self.name}: outer stop {outer!r} paired with inner "
                    f"{inner!r} (expected Stop({outer.level + 1}))"
                )
                enq.data = inner
                res = yield emit_pull
                self._outer = res[2]
                self._inner = UNSET
                continue
            if self._inner is UNSET:
                self._inner = yield deq_inner
            while self._inner.__class__ is not Stop:
                assert self._inner is not DONE, (
                    f"{self.name}: inner stream done mid-fiber"
                )
                enq.data = outer
                res = yield hold_step
                self._inner = res[2]
            inner = self._inner
            enq.data = inner
            if inner.level >= 1:
                if self._matching is UNSET:
                    res = yield emit_pull
                    self._matching = res[2]
                matching = self._matching
                expected = inner.level - 1
                assert (
                    isinstance(matching, Stop)
                    and matching.level == expected
                ), (
                    f"{self.name}: expected outer Stop({expected}), "
                    f"got {matching!r}"
                )
                res = yield deq_outer
                self._outer = res
                self._inner = UNSET
                self._matching = UNSET
            else:
                res = yield emit_pull
                self._outer = res[2]
                self._inner = UNSET
