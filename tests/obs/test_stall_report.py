"""Deadlock stall reports: the blocking channel and both endpoint clocks."""

import pytest

from repro import (
    Context,
    DeadlockError,
    IncrCycles,
    Observability,
    ProgramBuilder,
    RunConfig,
)


class Hold(Context):
    """Advances ``delay`` cycles, then dequeues before it ever enqueues."""

    def __init__(self, inp, out, name, delay):
        super().__init__(name=name)
        self.inp, self.out, self.delay = inp, out, delay
        self.register(inp, out)

    def run(self):
        yield IncrCycles(self.delay)
        value = yield self.inp.dequeue()
        yield self.out.enqueue(value)


def build_cycle():
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(1, name="a2b")
    s2, r2 = builder.bounded(1, name="b2a")
    builder.add(Hold(r1, s2, "ctx_a", 5))
    builder.add(Hold(r2, s1, "ctx_b", 3))
    return builder.build()


EXECUTOR_CONFIGS = {
    "sequential": RunConfig(),
    "threaded": RunConfig(poll_interval=0.01, deadlock_grace=0.2),
}


@pytest.mark.parametrize("executor", ["sequential", "threaded"])
class TestStallReport:
    def run_deadlocked(self, executor):
        obs = Observability(trace=False)
        with pytest.raises(DeadlockError) as excinfo:
            build_cycle().run(
                executor=executor, config=EXECUTOR_CONFIGS[executor], obs=obs
            )
        return obs, excinfo.value

    def test_error_names_blocking_channels(self, executor):
        _, error = self.run_deadlocked(executor)
        message = str(error)
        assert "a2b" in message
        assert "b2a" in message
        assert "dequeue on empty" in message

    def test_error_names_both_endpoint_times(self, executor):
        _, error = self.run_deadlocked(executor)
        message = str(error)
        # ctx_a stalled at its local t=5 with its peer visible at t=3.
        assert "ctx_a: dequeue on empty a2b @ t=5" in message
        assert "peer ctx_b @ t=3" in message
        assert "ctx_b: dequeue on empty b2a @ t=3" in message
        assert "peer ctx_a @ t=5" in message

    def test_report_attached_to_observability(self, executor):
        obs, _ = self.run_deadlocked(executor)
        report = obs.stall_report
        assert report is not None and len(report) == 2
        stall = report.for_context("ctx_a")
        assert stall.channel == "a2b"
        assert stall.local_time == 5
        assert stall.peer == "ctx_b"
        assert stall.peer_time == 3
        assert stall.occupancy == 0
        assert stall.capacity == 1

    def test_report_renders_human_readable(self, executor):
        obs, _ = self.run_deadlocked(executor)
        text = str(obs.stall_report)
        assert text.startswith("stall report (2 blocked context(s)):")
        assert "occupancy 0/1" in text


class TestClockGap:
    def test_gap_computed_and_rendered(self):
        obs = Observability(trace=False)
        with pytest.raises(DeadlockError):
            build_cycle().run(obs=obs)
        report = obs.stall_report
        # ctx_a local t=5, peer ctx_b at t=3 -> gap -2 (we outran the
        # peer); ctx_b sees the mirror image.
        assert report.for_context("ctx_a").gap == -2
        assert report.for_context("ctx_b").gap == 2
        text = str(report)
        assert "gap=-2" in text
        assert "gap=2" in text

    def test_lines_sorted_by_gap_magnitude(self):
        from repro.obs.stall import ContextStall, StallReport

        report = StallReport(
            stalls=[
                ContextStall("near", "dequeue on empty x", 10,
                             peer="p", peer_time=11),
                ContextStall("far", "dequeue on empty y", 2,
                             peer="p", peer_time=50),
                ContextStall("unknown", "wait-until 99 on p", 4),
            ]
        )
        ordering = [line.split(":")[0] for line in report.lines()]
        # Widest |gap| first; unknown gaps last.
        assert ordering == ["far", "near", "unknown"]

    def test_gap_none_when_peer_clock_unknown(self):
        from repro.obs.stall import ContextStall

        stall = ContextStall("lone", "dequeue on empty z", 7)
        assert stall.gap is None
        assert "gap" not in stall.describe()


class TestFullChannelStall:
    def test_enqueue_stall_reports_occupancy(self):
        """A sender stuck on a full channel reports occupancy cap/cap."""

        class Stuffer(Context):
            def __init__(self, out):
                super().__init__(name="stuffer")
                self.out = out
                self.register(out)

            def run(self):
                for i in range(10):
                    yield self.out.enqueue(i)

        class Sleeper(Context):
            def __init__(self, inp, peer):
                super().__init__(name="sleeper")
                self.inp = inp
                self.peer = peer
                self.register(inp)

            def run(self):
                from repro import WaitUntil

                yield WaitUntil(self.peer, 10_000)
                yield self.inp.dequeue()

        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2, name="jam")
        stuffer = builder.add(Stuffer(snd))
        builder.add(Sleeper(rcv, stuffer))
        obs = Observability(trace=False)
        with pytest.raises(DeadlockError) as excinfo:
            builder.build().run(obs=obs)
        message = str(excinfo.value)
        assert "enqueue on full jam" in message
        assert "occupancy 2/2" in message
        # The WaitUntil stall names the peer clock dependency.
        assert "wait-until 10000 on stuffer" in message
