"""Quickstart: build and run your first DAM program.

A three-stage pipeline — a source, the paper's merge unit (Listing 1),
and a collecting sink — demonstrating the core CSPT ideas:

* contexts are generators yielding channel operations,
* timing is injected with IncrCycles (initiation intervals) and channel
  latency (pipeline depth),
* the same program runs on the deterministic cooperative executor, on
  the one-thread-per-context executor, and on whatever runtime
  ``executor="auto"`` picks for this host — with identical simulated
  results.

Run:  python examples/quickstart.py
"""

from repro import Context, IncrCycles, ProgramBuilder
from repro.contexts import Collector, IterableSource, Merge


class Scaler(Context):
    """A simple user-defined context: multiply every element by 10."""

    def __init__(self, inp, out, ii=1):
        super().__init__(name="scaler")
        self.inp = inp
        self.out = out
        self.ii = ii
        self.register(inp, out)  # declare channel ownership (static wiring)

    def run(self):
        while True:
            value = yield self.inp.dequeue()  # blocks while empty
            yield IncrCycles(self.ii)         # initiation interval
            yield self.out.enqueue(10 * value)  # blocks while full


def build():
    builder = ProgramBuilder()
    # bounded(capacity, latency): capacity simulates backpressure,
    # latency is the sender->receiver visibility delay in cycles.
    a_snd, a_rcv = builder.bounded(4, latency=1, name="streamA")
    b_snd, b_rcv = builder.bounded(4, latency=1, name="streamB")
    merged_snd, merged_rcv = builder.bounded(4, latency=6, name="merged")
    out_snd, out_rcv = builder.bounded(4, latency=1, name="scaled")

    builder.add(IterableSource(a_snd, [1, 4, 5, 9], ii=1, name="srcA"))
    builder.add(IterableSource(b_snd, [2, 3, 8], ii=1, name="srcB"))
    # The paper's Listing 1: a merge unit with a 2-cycle II; its 6-cycle
    # pipeline latency lives on the 'merged' channel.
    builder.add(Merge(a_rcv, b_rcv, merged_snd, ii=2))
    builder.add(Scaler(merged_rcv, out_snd))
    sink = builder.add(Collector(out_rcv, name="sink"))
    return builder.build(), sink


def main():
    program, sink = build()
    summary = program.run(executor="sequential")
    print("merged and scaled:", sink.values)
    print(f"simulated cycles:  {summary.elapsed_cycles}")
    print(f"real seconds:      {summary.real_seconds:.4f}")

    # Determinism: the threaded executor (one OS thread per context,
    # SVA/SVP-style synchronization) produces identical simulated results.
    # Tunables travel in a typed RunConfig; each executor picks out the
    # fields its constructor understands, so the same config is portable
    # across runtimes.
    from repro.core import RunConfig

    program2, sink2 = build()
    summary2 = program2.run(executor="threaded", config=RunConfig())
    assert sink2.values == sink.values
    assert summary2.elapsed_cycles == summary.elapsed_cycles
    print("threaded executor agrees cycle-exactly:", summary2.elapsed_cycles)

    # "auto" asks the registry for the best runtime this host supports
    # (free-threaded > process > threaded > sequential) — a no-GIL build
    # gets the free-threaded runtime, a multi-core GIL build gets the
    # work-stealing process executor, a one-core box stays sequential.
    program3, sink3 = build()
    summary3 = program3.run(executor="auto", config=RunConfig(workers=2))
    assert sink3.values == sink.values
    assert summary3.elapsed_cycles == summary.elapsed_cycles
    print(f"auto picked {summary3.executor!r}; cycle-exact again:",
          summary3.elapsed_cycles)


if __name__ == "__main__":
    main()
