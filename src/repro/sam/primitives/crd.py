"""Coordinate bookkeeping primitives: CrdDrop and CrdHold.

* **CrdDrop** removes outer coordinates whose inner fiber turned out empty
  (after an intersect, a row may contribute no output).  It consumes the
  outer crd stream plus the inner crd stream that resulted from it, and
  re-emits only the surviving outer coordinates.

* **CrdHold** replicates the current outer coordinate once per inner
  payload, producing a stream aligned with the inner one (used to carry
  row indices alongside per-element streams, e.g. SDDMM's dense gathers).
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class CrdDrop(SamContext):
    """Keep outer coordinates with nonempty inner fibers."""

    def __init__(
        self,
        in_outer_crd: Receiver,
        in_inner_crd: Receiver,
        out_crd: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_outer_crd = in_outer_crd
        self.in_inner_crd = in_inner_crd
        self.out_crd = out_crd
        self.register(in_outer_crd, in_inner_crd, out_crd)

    def run(self):
        while True:
            outer = yield self.in_outer_crd.dequeue()
            if outer is DONE:
                inner = yield self.in_inner_crd.dequeue()
                assert inner is DONE, (
                    f"{self.name}: outer done but inner sent {inner!r}"
                )
                yield self.out_crd.enqueue(DONE)
                return
            if isinstance(outer, Stop):
                # An empty outer fiber: the inner stream presents the
                # matching one-deeper stop; mirror the outer stop through.
                inner = yield self.in_inner_crd.dequeue()
                assert isinstance(inner, Stop) and inner.level == outer.level + 1, (
                    f"{self.name}: outer stop {outer!r} paired with inner "
                    f"{inner!r} (expected Stop({outer.level + 1}))"
                )
                yield self.out_crd.enqueue(outer)
                yield self.tick_control()
                continue
            # Scan this outer coordinate's inner fiber.
            nonempty = False
            while True:
                inner = yield self.in_inner_crd.dequeue()
                if isinstance(inner, Stop):
                    break
                assert inner is not DONE, (
                    f"{self.name}: inner stream done mid-fiber"
                )
                nonempty = True
                yield self.tick()
            if nonempty:
                yield self.out_crd.enqueue(outer)
            yield self.tick_control()
            if inner.level >= 1:
                # Inner boundary also closes outer levels: mirror it on the
                # outer stream (consume) and the output (emit, one level
                # shallower).
                matching = yield self.in_outer_crd.dequeue()
                expected = inner.level - 1
                assert isinstance(matching, Stop) and matching.level == expected, (
                    f"{self.name}: expected outer Stop({expected}), got "
                    f"{matching!r}"
                )
                yield self.out_crd.enqueue(matching)


class CrdHold(SamContext):
    """Emit the held outer coordinate once per inner payload."""

    def __init__(
        self,
        in_outer_crd: Receiver,
        in_inner_crd: Receiver,
        out_crd: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_outer_crd = in_outer_crd
        self.in_inner_crd = in_inner_crd
        self.out_crd = out_crd
        self.register(in_outer_crd, in_inner_crd, out_crd)

    def run(self):
        while True:
            outer = yield self.in_outer_crd.dequeue()
            if outer is DONE:
                inner = yield self.in_inner_crd.dequeue()
                assert inner is DONE, (
                    f"{self.name}: outer done but inner sent {inner!r}"
                )
                yield self.out_crd.enqueue(DONE)
                return
            if isinstance(outer, Stop):
                # Empty outer fiber: pass the inner stream's matching
                # one-deeper stop through (output aligns with the inner).
                inner = yield self.in_inner_crd.dequeue()
                assert isinstance(inner, Stop) and inner.level == outer.level + 1, (
                    f"{self.name}: outer stop {outer!r} paired with inner "
                    f"{inner!r} (expected Stop({outer.level + 1}))"
                )
                yield self.out_crd.enqueue(inner)
                yield self.tick_control()
                continue
            while True:
                inner = yield self.in_inner_crd.dequeue()
                if isinstance(inner, Stop):
                    yield self.out_crd.enqueue(inner)
                    yield self.tick_control()
                    if inner.level >= 1:
                        matching = yield self.in_outer_crd.dequeue()
                        expected = inner.level - 1
                        assert (
                            isinstance(matching, Stop)
                            and matching.level == expected
                        ), (
                            f"{self.name}: expected outer Stop({expected}), "
                            f"got {matching!r}"
                        )
                    break
                assert inner is not DONE, (
                    f"{self.name}: inner stream done mid-fiber"
                )
                yield self.out_crd.enqueue(outer)
                yield self.tick()
