"""The serve layer end to end: equivalence, admission, tenancy, caching.

Everything here runs a real :class:`SimServer` on a background thread
and talks to it over real sockets with the stdlib :class:`ServeClient` —
no mocked transports.  The core claims under test:

* a served run is **bit-identical** to a direct in-process ``Program.run``
  of the same spec;
* admission control sheds with a typed :class:`AdmissionError` (and a
  per-tenant :class:`TenantBudgetError`) instead of queueing unboundedly;
* repeated shapes hit the plan cache (visible as a ``/metrics`` counter);
* identical in-flight payloads coalesce onto one execution.
"""

import json
import threading

import pytest

from repro.core import RunConfig
from repro.sam import CsfTensor
from repro.sam.spec import ProgramSpec, SpecError
from repro.sam.tensor import random_dense
from repro.serve import (
    AdmissionError,
    ServeClient,
    ServeConfig,
    TenantBudgetError,
    TenantPolicy,
    start_in_thread,
)


def _spmspm_spec(seed=23, executor="sequential", config=None):
    b = CsfTensor.from_dense(random_dense(6, 6, density=0.3, seed=seed), "cc")
    ct = CsfTensor.from_dense(
        random_dense(6, 6, density=0.3, seed=seed + 1), "cc"
    )
    return ProgramSpec.from_graph_inputs(
        "spmspm",
        {"b": b, "c_transposed": ct},
        params={"depth": 4},
        config=config,
        executor=executor,
    )


def _mmadd_spec(seed=40):
    b = CsfTensor.from_dense(random_dense(6, 6, density=0.5, seed=seed), "cc")
    c = CsfTensor.from_dense(
        random_dense(6, 6, density=0.5, seed=seed + 1), "cc"
    )
    return ProgramSpec.from_graph_inputs(
        "mmadd", {"b": b, "c": c}, params={"depth": 3}
    )


@pytest.fixture
def server():
    """A live server with small, test-friendly limits."""
    handle = start_in_thread(
        ServeConfig(
            max_concurrent=2,
            queue_limit=2,
            tenants={
                "metered": TenantPolicy(
                    name="metered", max_in_flight=1, run_budget_s=0.0
                ),
                "solo": TenantPolicy(name="solo", max_in_flight=1),
            },
        )
    )
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def client(server):
    return ServeClient(server.address)


class TestEquivalence:
    def test_served_run_is_bit_identical_to_local(self, client):
        spec = _spmspm_spec()
        built, local = spec.run()
        result = client.submit(spec, tenant="alice", request_id="r1")
        assert result.summary.elapsed_cycles == local.elapsed_cycles
        assert result.summary.context_times == local.context_times
        assert result.result_dense().tobytes() == built.result_dense().tobytes()
        assert result.summary.tag == "alice/r1"

    def test_mixed_graphs_both_match(self, client):
        for spec in (_spmspm_spec(), _mmadd_spec()):
            built, local = spec.run()
            result = client.submit(spec)
            assert result.summary.elapsed_cycles == local.elapsed_cycles
            assert (
                result.result_dense().tobytes()
                == built.result_dense().tobytes()
            )

    def test_streamed_samples_arrive(self, client):
        # A sampling interval far below the run time guarantees at least
        # one live sample event on the stream.
        spec = _spmspm_spec(config=RunConfig())
        result = client.submit(spec, stream_metrics_s=0.001)
        assert result.samples, "no live metric samples were streamed"
        assert all("wall_s" in s or s for s in result.samples)


class TestPlanCache:
    def test_second_identical_shape_hits(self, client):
        first = client.submit(_spmspm_spec(seed=23))
        assert first.plan == "miss"
        # Different values, same structure → same shape key.
        second = client.submit(_spmspm_spec(seed=23))
        third = client.submit(_spmspm_spec(seed=23))
        assert {second.plan, third.plan} == {"hit"}
        metrics = client.metrics()
        assert metrics["plan_cache"]["hits"] >= 2
        assert metrics["metrics"]["counters"]["plan_cache_hits"] >= 2
        # The hit replays the same simulation: results stay identical.
        assert (
            second.summary.elapsed_cycles == first.summary.elapsed_cycles
        )


class TestAdmission:
    def test_overloaded_pool_sheds_with_typed_error(self):
        # Capacity 1 (one slot, no queue).  Occupy the slot directly on
        # the server's event loop — a submit race between two clients can
        # shed either one, which makes assertions flaky.
        handle = start_in_thread(ServeConfig(max_concurrent=1, queue_limit=0))
        try:
            client = ServeClient(handle.address)

            def pool_call(fn):
                done = threading.Event()
                out = {}

                def call():
                    out["value"] = fn(handle.server.pool)
                    done.set()

                handle.loop.call_soon_threadsafe(call)
                assert done.wait(timeout=10)
                return out.get("value")

            pool_call(lambda pool: pool.try_acquire())
            try:
                with pytest.raises(AdmissionError) as info:
                    client.submit(_mmadd_spec(seed=61), tenant="b")
            finally:
                pool_call(lambda pool: pool.release())
            shed = info.value
            assert not isinstance(shed, TenantBudgetError)
            assert shed.limit == 1
            assert "in flight" in str(shed)
            metrics = client.metrics()
            assert any(
                key.startswith("requests_shed")
                for key in metrics["metrics"]["counters"]
            )
            # Slot released: the same request now completes normally.
            ok = client.submit(_mmadd_spec(seed=61), tenant="b")
            assert ok.summary is not None
        finally:
            handle.stop()

    def test_exhausted_budget_tenant_rejected_typed(self, client):
        with pytest.raises(TenantBudgetError) as info:
            client.submit(_spmspm_spec(), tenant="metered")
        assert info.value.tenant == "metered"
        assert "budget" in str(info.value)

    def test_in_flight_cap_rejects_concurrent_second(self, server):
        client = ServeClient(server.address)
        spec = _spmspm_spec(seed=80)
        start = threading.Event()
        errors: list = []
        results: list = []

        def submit(seed):
            start.wait()
            try:
                results.append(
                    client.submit(_spmspm_spec(seed=seed), tenant="solo")
                )
            except TenantBudgetError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(80 + i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        start.set()
        for t in threads:
            t.join(timeout=60)
        # At least one must succeed; any rejection must be the typed
        # per-tenant error naming the tenant.
        assert results, "no request for the capped tenant succeeded"
        for exc in errors:
            assert exc.tenant == "solo"
            assert "in flight" in exc.reason

    def test_malformed_spec_is_a_400_with_spec_error(self, client):
        with pytest.raises(SpecError, match="unknown graph"):
            client.submit(
                {"graph": "nope", "tensors": {}, "params": {},
                 "config": {}, "executor": "sequential"}
            )
        with pytest.raises(SpecError, match="bogus"):
            client.submit({"graph": "spmspm", "bogus": 1})

    def test_bad_config_rejected_at_boundary(self, client):
        wire = _spmspm_spec().to_dict()
        wire["config"] = {"wrokers": 2}
        with pytest.raises(Exception, match="unknown RunConfig field"):
            client.submit(wire)


class TestMultiTenantConcurrency:
    def test_concurrent_mixed_tenants_one_over_budget(self, client):
        """Six concurrent requests across two healthy tenants plus one
        over-budget tenant: the healthy runs all succeed bit-identically,
        the metered tenant is rejected with the typed budget error."""
        spec = _spmspm_spec(seed=90)
        _, local = spec.run()

        results: dict = {}
        errors: dict = {}
        barrier = threading.Barrier(7)

        def run(tenant, request_id):
            barrier.wait()
            try:
                results[request_id] = client.submit(
                    spec, tenant=tenant, request_id=request_id
                )
            except Exception as exc:  # noqa: BLE001 - recorded for asserts
                errors[request_id] = exc

        threads = [
            threading.Thread(target=run, args=(tenant, f"{tenant}-{i}"))
            for i, tenant in enumerate(
                ["alice", "alice", "alice", "bob", "bob", "bob", "metered"]
            )
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)

        # The over-budget tenant was rejected, with the typed error.
        assert "metered-6" in errors
        assert isinstance(errors["metered-6"], TenantBudgetError)
        assert errors["metered-6"].tenant == "metered"

        # Every healthy request succeeded with identical simulated results.
        healthy = [r for rid, r in results.items() if "metered" not in rid]
        assert len(healthy) == 6
        for result in healthy:
            assert result.summary.elapsed_cycles == local.elapsed_cycles

        snapshot = client.metrics()["tenants"]
        assert snapshot["metered"]["rejected"] >= 1
        assert snapshot["alice"]["admitted"] == 3
        assert snapshot["bob"]["admitted"] == 3
        assert snapshot["alice"]["in_flight"] == 0
        assert snapshot["bob"]["in_flight"] == 0

    def test_identical_payloads_coalesce(self, client):
        """The same payload fired concurrently shares one execution: at
        most one plan-cache miss, and every response is identical."""
        spec = _spmspm_spec(seed=99)
        wire = spec.to_dict()
        barrier = threading.Barrier(4)
        results: list = []
        lock = threading.Lock()

        def run(i):
            barrier.wait()
            result = ServeClient.submit(
                client, wire, tenant="alice", request_id=f"c{i}"
            )
            with lock:
                results.append(result)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)

        assert len(results) == 4
        cycles = {r.summary.elapsed_cycles for r in results}
        assert len(cycles) == 1
        coalesced = [r for r in results if r.coalesced]
        metrics = client.metrics()
        counters = metrics["metrics"]["counters"]
        observed = sum(
            v for k, v in counters.items()
            if k.startswith("coalesced_requests")
        )
        # Coalescing is timing-dependent; when it happened, the counter
        # and the response flags must agree.
        assert observed == len(coalesced)


class TestMetricsEndpoint:
    def test_metrics_serves_registry_and_subsystems(self, client):
        client.submit(_spmspm_spec())
        payload = client.metrics()
        assert set(payload) == {"metrics", "plan_cache", "tenants", "pool"}
        assert "counters" in payload["metrics"]
        assert payload["pool"]["pending"] == 0
        assert payload["plan_cache"]["entries"] >= 1
        json.dumps(payload)  # the endpoint is JSON end to end

    def test_healthz(self, client):
        assert client.healthy()


class TestKeepAlive:
    """Control-plane GETs ride one persistent connection (§16)."""

    def test_sequential_gets_reuse_the_socket(self, server):
        with ServeClient(server.address) as client:
            client.metrics()
            sock = client._sock
            assert sock is not None, "GET did not cache its connection"
            client.healthy()
            client.metrics()
            assert client._sock is sock, "keep-alive socket was not reused"

    def test_reconnects_transparently_when_peer_dies(self, server):
        with ServeClient(server.address) as client:
            client.metrics()
            stale = client._sock
            assert stale is not None
            # Kill the cached connection underneath the client; the next
            # GET must reconnect once instead of surfacing the error.
            stale.close()
            payload = client.metrics()
            assert "metrics" in payload
            assert client._sock is not None and client._sock is not stale

    def test_run_stream_does_not_disturb_the_cached_socket(self, server):
        with ServeClient(server.address) as client:
            client.metrics()
            sock = client._sock
            result = client.submit(_spmspm_spec())  # /run: own connection
            assert result.summary.elapsed_cycles > 0
            assert client._sock is sock
            assert client.metrics()["pool"]["pending"] == 0


class TestPlanCachePersistence:
    def test_save_load_round_trip(self, tmp_path):
        from repro.serve.plancache import CachedPlan, PlanCache

        cache = PlanCache()
        cache.store(
            CachedPlan(
                key="shape:process:2",
                placement={"ctx_a": 0, "ctx_b": 1},
                weights={"chan_x": 12.0},
                context_count=2,
                channel_count=1,
                uses=3,
            )
        )
        cache.store(CachedPlan(key="other:sequential:auto"))
        path = tmp_path / "plans.json"
        assert cache.save_json(str(path)) == 2

        fresh = PlanCache()
        assert fresh.load_json(str(path)) == 2
        plan = fresh.lookup("shape:process:2")
        assert plan is not None
        assert plan.placement == {"ctx_a": 0, "ctx_b": 1}
        assert plan.weights == {"chan_x": 12.0}
        assert plan.uses == 4  # 3 persisted + the lookup above

    def test_load_rejects_corrupt_and_wrong_version(self, tmp_path):
        from repro.serve.plancache import PlanCache

        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"version": 999, "entries": []}))
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json at all {")
        cache = PlanCache()
        with pytest.raises(ValueError):
            cache.load_json(str(wrong))
        with pytest.raises(ValueError):  # JSONDecodeError is a ValueError
            cache.load_json(str(garbage))

    def test_warm_plans_survive_a_server_restart(self, tmp_path):
        path = str(tmp_path / "plans.json")
        first = start_in_thread(ServeConfig(plan_cache_path=path))
        try:
            result = ServeClient(first.address).submit(_spmspm_spec())
            assert result.plan == "miss"
        finally:
            first.stop()  # shutdown persists the learned plans

        second = start_in_thread(ServeConfig(plan_cache_path=path))
        try:
            with ServeClient(second.address) as client:
                # The very first request of the restarted server replays
                # the plan learned before the restart.
                assert client.submit(_spmspm_spec()).plan == "hit"
                assert client.metrics()["plan_cache"]["entries"] >= 1
        finally:
            second.stop()
