"""Time-bridging channels (paper Section V).

A channel is a directed, statically-connected link between a sender context
and a receiver context.  It is *time-bridging*: the two endpoints may sit at
wildly different simulated times (asynchronous distributed time), and the
channel reconciles them using only timestamps:

* The **data queue** carries :class:`~repro.core.element.ChannelElement`
  values stamped with the earliest simulated time the receiver may observe
  them (sender time at enqueue + channel ``latency``).

* The **response queue** carries, for every dequeue, the simulated time at
  which the sender should *see* the freed slot (receiver dequeue time +
  ``resp_latency``).  A sender that finds the channel full drains responses
  in FIFO order, advancing its own clock to each response time — this is
  how backpressure advances simulated time (local time acceleration on the
  send side).

* The receiver's clock jumps to ``max(now, element.time)`` on dequeue —
  local time acceleration on the receive side; starvation costs simulated
  time without any polling.

Every state transition is a function of *simulated* state only (the FIFO
contents and the endpoint clocks), never of the real schedule.  That is the
determinism argument: the cooperative and threaded executors drive the same
transitions in the same per-channel order, so simulated results are
identical (asserted by the cross-executor test suite).

Termination semantics mirror DAM-RS:

* When the **sender** finishes, the channel *closes*: the receiver may drain
  remaining data, after which dequeue/peek raise
  :class:`~repro.core.errors.ChannelClosed`.

* When the **receiver** finishes, the channel becomes *void*: enqueues
  succeed immediately and the data is discarded.  Responses already in
  flight are still drained first so the sender's clock advances identically
  regardless of when the receiver's finish became visible.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from .errors import GraphConstructionError
from .time import Time, TimeCell

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context

from . import ops as _ops

_channel_ids = itertools.count()

#: Sentinel returned by ``fast_dequeue`` when no element is ready.  A
#: private object so it can never collide with queued payloads.
_EMPTY = object()


class ChannelStats:
    """Lightweight per-channel counters.

    ``enqueues``/``dequeues``/``peeks``/``max_real_occupancy`` are always
    maintained (a length check per enqueue is cheap enough for the hot
    path) and surfaced through the observability metrics registry as
    ``channel_enqueues``/``channel_dequeues``/``channel_peeks``/
    ``channel_max_occupancy``.  The heavier simulated-occupancy log still
    requires an explicit :meth:`Channel.enable_profiling`.

    The traffic counters (``enqueues``/``dequeues``/``peeks``) are pure
    functions of simulated state, identical across executors; only
    ``max_real_occupancy`` depends on the real schedule.
    """

    __slots__ = ("enqueues", "dequeues", "peeks", "max_real_occupancy")

    def __init__(self) -> None:
        self.enqueues = 0
        self.dequeues = 0
        self.peeks = 0
        self.max_real_occupancy = 0

    def __repr__(self) -> str:
        return (
            f"ChannelStats(enqueues={self.enqueues}, dequeues={self.dequeues}, "
            f"peeks={self.peeks}, "
            f"max_real_occupancy={self.max_real_occupancy})"
        )


class Channel:
    """The shared state of a sender/receiver pair.

    Users normally create channels through
    :meth:`repro.core.program.ProgramBuilder.bounded` /
    :meth:`~repro.core.program.ProgramBuilder.unbounded`, which return the
    ``(Sender, Receiver)`` handle pair; the :class:`Channel` itself is an
    implementation detail.

    Parameters
    ----------
    capacity:
        Maximum number of in-flight elements from the sender's perspective,
        or ``None`` for an unbounded channel (no backpressure simulation,
        which is why unbounded channels simulate faster — Fig. 11).
    latency:
        Simulated cycles between an enqueue and the element becoming
        visible to the receiver.
    resp_latency:
        Simulated cycles between a dequeue and the sender observing the
        freed slot.
    """

    __slots__ = (
        "id",
        "name",
        "capacity",
        "latency",
        "resp_latency",
        "real",
        "sender_owner",
        "receiver_owner",
        "_data",
        "_resps",
        "_delta",
        "_sender_finished",
        "_receiver_finished",
        "stats",
        "cond",
        "waiting_sender",
        "waiting_receiver",
        "profile_log",
        # Flavor-specialized fast methods, selected once per state
        # transition (construction, close_sender, close_receiver,
        # enable_profiling) instead of branch-checked per op.
        "try_enqueue",
        "fast_dequeue",
        # Small-int mirrors of the selected flavors, letting the
        # sequential executor's inline fast path open-code the hot
        # transitions without even a bound-method call (DESIGN.md §11).
        "_enq_code",
        "_deq_code",
        # Park messages, precomputed once (the name is immutable) so the
        # executors' block sites never pay an f-string on the hot path.
        "_park_enq_msg",
        "_park_deq_msg",
    )

    def __init__(
        self,
        capacity: Optional[int] = None,
        latency: Time = 1,
        resp_latency: Time = 1,
        name: str | None = None,
        real: bool = False,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"channel capacity must be >= 1, got {capacity}")
        if latency < 0 or resp_latency < 0:
            raise ValueError("channel latencies must be nonnegative")
        if real and capacity is not None:
            raise ValueError("real channels are unbounded (no backpressure)")
        self.real = real
        self.id = next(_channel_ids)
        self.name = name or f"channel{self.id}"
        self._park_enq_msg = f"enqueue on full {self.name}"
        self._park_deq_msg = f"dequeue on empty {self.name}"
        self.capacity = capacity
        self.latency = latency
        self.resp_latency = resp_latency
        self.sender_owner: "Context | None" = None
        self.receiver_owner: "Context | None" = None
        self._data: deque[tuple[Time, Any]] = deque()
        self._resps: deque[Time] = deque()
        self._delta = 0  # sender's view of in-flight element count
        self._sender_finished = False
        self._receiver_finished = False
        self.stats = ChannelStats()
        # Used only by the threaded executor; harmless elsewhere.
        self.cond = threading.Condition()
        # Used only by the sequential executor (at most one waiter per side).
        self.waiting_sender: Any = None
        self.waiting_receiver: Any = None
        # Optional (stamp, dequeue_time) log for simulated-occupancy analysis.
        self.profile_log: list[tuple[Time, Time]] | None = None
        self._select_flavor()

    # ------------------------------------------------------------------
    # Flavor specialization (the Fig. 11 lever, applied to the simulator
    # itself).  ``try_enqueue``/``fast_dequeue`` are the executors' hot
    # entry points: one bound-method call that either completes the op or
    # reports that it would block.  The right variant for the channel's
    # current state (unbounded / real / void / bounded, profiled or not)
    # is picked here — once per state *transition*, so the per-op path
    # pays zero flavor branches.  Every variant performs exactly the
    # transition the generic reference methods below describe.
    # ------------------------------------------------------------------

    def _select_flavor(self) -> None:
        # Enqueue codes: 0 = unbounded, 1 = bounded (inline-able in the
        # executor); 2 = everything else (real/void: call the method).
        if self._receiver_finished:
            self.try_enqueue = (
                self._try_enqueue_void_bounded
                if self.capacity is not None
                else self._try_enqueue_void
            )
            self._enq_code = 2
        elif self.capacity is not None:
            self.try_enqueue = self._try_enqueue_bounded
            self._enq_code = 1
        elif self.real:
            self.try_enqueue = self._try_enqueue_real
            self._enq_code = 2
        else:
            self.try_enqueue = self._try_enqueue_unbounded
            self._enq_code = 0
        # Dequeue codes: 0 = plain, 1 = responding (both inline-able);
        # 2 = profiled (cold: call the method).
        if self.profile_log is not None:
            self.fast_dequeue = self._fast_dequeue_profiled
            self._deq_code = 2
        elif self.capacity is not None and not self._sender_finished:
            self.fast_dequeue = self._fast_dequeue_resp
            self._deq_code = 1
        else:
            self.fast_dequeue = self._fast_dequeue_plain
            self._deq_code = 0

    def _try_enqueue_void(self, clock: TimeCell, data: Any) -> bool:
        # Receiver finished: count the enqueue, discard the data.  (The
        # old generic path also re-observed occupancy here, but
        # ``close_receiver()`` clears ``_data``, so the observation was
        # always of an empty queue — dead code, folded away.)
        self.stats.enqueues += 1
        return True

    def _try_enqueue_void_bounded(self, clock: TimeCell, data: Any) -> bool:
        # Void, but responses already in flight are still drained while
        # the sender's window is full, so its clock advances identically
        # regardless of when the receiver's finish became visible (the
        # module-docstring guarantee; matches ``sender_try_reserve``).
        resps = self._resps
        while self._delta >= self.capacity and resps:
            clock.advance(resps.popleft())
            self._delta -= 1
        self.stats.enqueues += 1
        return True

    def _try_enqueue_real(self, clock: TimeCell, data: Any) -> bool:
        # Real channels carry data without time coupling: stamp 0, no
        # backpressure (they are unbounded by construction).
        self.stats.enqueues += 1
        data_q = self._data
        data_q.append((0, data))
        stats = self.stats
        if len(data_q) > stats.max_real_occupancy:
            stats.max_real_occupancy = len(data_q)
        return True

    def _try_enqueue_unbounded(self, clock: TimeCell, data: Any) -> bool:
        # No capacity: no reserve step, no ``_delta`` bookkeeping.
        stats = self.stats
        stats.enqueues += 1
        data_q = self._data
        data_q.append((clock._time + self.latency, data))
        if len(data_q) > stats.max_real_occupancy:
            stats.max_real_occupancy = len(data_q)
        return True

    def _try_enqueue_bounded(self, clock: TimeCell, data: Any) -> bool:
        # Reserve (draining responses advances the sender clock — the
        # backpressure timeline), then enqueue.  False = would block.
        resps = self._resps
        while self._delta >= self.capacity and resps:
            clock.advance(resps.popleft())
            self._delta -= 1
        if self._delta >= self.capacity:
            return False
        stats = self.stats
        stats.enqueues += 1
        data_q = self._data
        data_q.append((clock._time + self.latency, data))
        self._delta += 1
        if len(data_q) > stats.max_real_occupancy:
            stats.max_real_occupancy = len(data_q)
        return True

    def _fast_dequeue_plain(self, clock: TimeCell) -> Any:
        # Unbounded/real channels, or a bounded channel whose sender has
        # finished: no response queue to feed.
        data_q = self._data
        if not data_q:
            return _EMPTY
        stamp, data = data_q.popleft()
        clock.advance(stamp)
        self.stats.dequeues += 1
        return data

    def _fast_dequeue_resp(self, clock: TimeCell) -> Any:
        # Bounded channel with a live sender: every dequeue responds.
        data_q = self._data
        if not data_q:
            return _EMPTY
        stamp, data = data_q.popleft()
        clock.advance(stamp)
        self.stats.dequeues += 1
        self._resps.append(clock._time + self.resp_latency)
        return data

    def _fast_dequeue_profiled(self, clock: TimeCell) -> Any:
        # Cold variant: profiling on — delegate to the reference method.
        if not self._data:
            return _EMPTY
        return self.do_dequeue(clock)

    # ------------------------------------------------------------------
    # Pure semantics (generic reference surface).  These methods never
    # block; executors orchestrate blocking around them.  All mutate only
    # under the caller's exclusion discipline (channel lock in threaded
    # mode, single thread otherwise).  The flavor methods above are the
    # specialized equivalents the executors actually call per op.
    # ------------------------------------------------------------------

    def sender_try_reserve(self, clock: TimeCell) -> bool:
        """Try to secure a slot for one enqueue from the sender's view.

        Drains available responses first (each advances the sender's clock
        to the response time), so that slot observations — and therefore
        the sender's simulated timeline — are schedule-independent.
        Returns ``True`` if an enqueue may proceed now.
        """
        if self.capacity is None:
            return True
        while self._delta >= self.capacity and self._resps:
            release_time = self._resps.popleft()
            clock.advance(release_time)
            self._delta -= 1
        if self._delta < self.capacity:
            return True
        # Full with no responses left: only a finished receiver unblocks us.
        return self._receiver_finished

    def do_enqueue(self, clock: TimeCell, data: Any) -> None:
        """Append ``data`` stamped at ``sender_now + latency``.

        Caller must have obtained ``True`` from :meth:`sender_try_reserve`.
        If the receiver has finished the element is discarded (void).

        Elements are stored as plain ``(stamp, data)`` tuples internally
        (the hot path); :class:`ChannelElement` remains the public shape.
        """
        self.stats.enqueues += 1
        if self._receiver_finished:
            # Void enqueue: nothing is queued, the data is discarded.
            return
        stamp = 0 if self.real else clock._time + self.latency
        self._data.append((stamp, data))
        if self.capacity is not None:
            self._delta += 1
        occupancy = len(self._data)
        if occupancy > self.stats.max_real_occupancy:
            self.stats.max_real_occupancy = occupancy

    def can_dequeue(self) -> bool:
        return bool(self._data)

    @property
    def closed_for_receiver(self) -> bool:
        """True once the sender finished and all data has been drained."""
        return self._sender_finished and not self._data

    def do_dequeue(self, clock: TimeCell) -> Any:
        """Pop the front element, advance the receiver clock, respond.

        Real channels (the Section IX mechanism) carry data without any
        time coupling: the receiver's clock is untouched.
        """
        stamp, data = self._data.popleft()
        clock.advance(stamp)
        self.stats.dequeues += 1
        if self.capacity is not None and not self._sender_finished:
            self._resps.append(clock._time + self.resp_latency)
        if self.profile_log is not None:
            self.profile_log.append((stamp, clock._time))
        return data

    def do_peek(self, clock: TimeCell) -> Any:
        """Observe the front element (advancing the clock) without removal."""
        stamp, data = self._data[0]
        clock.advance(stamp)
        self.stats.peeks += 1
        return data

    # ------------------------------------------------------------------
    # Termination transitions.
    # ------------------------------------------------------------------

    def close_sender(self) -> None:
        """The sender context finished: no further data will arrive."""
        self._sender_finished = True
        self._resps.clear()  # the sender will never drain them
        self._select_flavor()  # remaining dequeues stop responding

    def close_receiver(self) -> None:
        """The receiver context finished: the channel becomes void."""
        self._receiver_finished = True
        self._data.clear()
        self._select_flavor()  # enqueues become void (discard) fast path

    def reset(self) -> None:
        """Restore pristine pre-run state (wiring and parameters kept).

        The retry ladder (``RunConfig(fallback=...)``) calls this through
        :meth:`~repro.core.program.Program.reset` before re-running a
        program whose previous attempt crashed or timed out, so the retry
        observes exactly the state a fresh build would.  Occupancy,
        response queues, finished flags, stats, parked waiters, and the
        profiling log (re-armed empty if profiling was enabled) are all
        cleared; the flavor-specialized fast methods are re-selected for
        the restored state.
        """
        self._data.clear()
        self._resps.clear()
        self._delta = 0
        self._sender_finished = False
        self._receiver_finished = False
        self.stats = ChannelStats()
        self.waiting_sender = None
        self.waiting_receiver = None
        if self.profile_log is not None:
            self.profile_log = []
        self._select_flavor()

    # ------------------------------------------------------------------
    # Checkpointing (DESIGN.md §17).
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> dict[str, Any]:
        """Capture the channel's full run state as a picklable dict.

        Everything :meth:`reset` clears is captured: queued data and
        responses, the sender's in-flight count, the finished flags, the
        stats counters, and the profiling log.  Parked-waiter fields are
        *not* captured — at a quiescent cut every context's suspension is
        recorded on the context side, and :meth:`restore_state` re-arms
        waiters empty.
        """
        stats = self.stats
        return {
            "data": list(self._data),
            "resps": list(self._resps),
            "delta": self._delta,
            "sender_finished": self._sender_finished,
            "receiver_finished": self._receiver_finished,
            "stats": {
                "enqueues": stats.enqueues,
                "dequeues": stats.dequeues,
                "peeks": stats.peeks,
                "max_real_occupancy": stats.max_real_occupancy,
            },
            "profile_log": None if self.profile_log is None else list(self.profile_log),
        }

    def restore_state(self, record: dict[str, Any]) -> None:
        """Install a state dict produced by :meth:`checkpoint_state`.

        The flavor-specialized fast methods are re-selected for the
        restored state, exactly as :meth:`reset` does for pristine state.
        """
        self._data = deque(tuple(item) for item in record["data"])
        self._resps = deque(record["resps"])
        self._delta = record["delta"]
        self._sender_finished = record["sender_finished"]
        self._receiver_finished = record["receiver_finished"]
        stats = ChannelStats()
        for field in ChannelStats.__slots__:
            setattr(stats, field, record["stats"][field])
        self.stats = stats
        self.waiting_sender = None
        self.waiting_receiver = None
        logged = record.get("profile_log")
        if self.profile_log is not None or logged is not None:
            self.profile_log = list(logged or [])
        self._select_flavor()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def sender_finished(self) -> bool:
        return self._sender_finished

    @property
    def receiver_finished(self) -> bool:
        return self._receiver_finished

    def real_occupancy(self) -> int:
        """Number of elements physically queued right now (debug metric)."""
        return len(self._data)

    def enable_profiling(self) -> None:
        """Record (visibility stamp, dequeue time) pairs for every dequeue.

        Post-process with :func:`peak_simulated_occupancy` to measure how
        deep the channel got *in simulated time* — the metric behind the
        attention case study's O(N) vs O(1) local-memory argument.

        Note: peak *real* occupancy no longer needs this toggle; it is
        always tracked in ``stats.max_real_occupancy`` and exported via
        the observability metrics registry.
        """
        self.profile_log = []
        self._select_flavor()  # dequeues switch to the profiled variant

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"Channel({self.name}, cap={cap}, len={len(self._data)})"


def peak_simulated_occupancy(log: list[tuple[Time, Time]]) -> int:
    """Compute peak occupancy in simulated time from a channel profile log.

    An element occupies the channel from its visibility stamp until it is
    dequeued.  (Elements enqueued but never dequeued are not in the log;
    run-to-completion graphs drain everything.)
    """
    events: list[tuple[Time, int]] = []
    for stamp, dequeue_time in log:
        events.append((stamp, 1))
        events.append((dequeue_time, -1))
    # Process departures before arrivals at the same instant: an element
    # dequeued at exactly time t frees its slot "at" t.
    events.sort(key=lambda pair: (pair[0], pair[1]))
    peak = 0
    occupancy = 0
    for _, delta in events:
        occupancy += delta
        if occupancy > peak:
            peak = occupancy
    return peak


class Sender:
    """The send endpoint handle given to the producing context."""

    __slots__ = ("channel", "owner")

    def __init__(self, channel: Channel):
        self.channel = channel
        self.owner: "Context | None" = None

    def attach(self, context: "Context") -> None:
        if self.owner is not None:
            raise GraphConstructionError(
                f"sender of {self.channel.name} already owned by "
                f"{self.owner.name}, cannot attach to {context.name}"
            )
        self.owner = context
        self.channel.sender_owner = context

    def enqueue(self, data: Any) -> "_ops.Enqueue":
        """Build an enqueue op for ``yield``-ing."""
        return _ops.Enqueue(self, data)

    def __repr__(self) -> str:
        return f"Sender({self.channel.name})"


class Receiver:
    """The receive endpoint handle given to the consuming context."""

    __slots__ = ("channel", "owner")

    def __init__(self, channel: Channel):
        self.channel = channel
        self.owner: "Context | None" = None

    def attach(self, context: "Context") -> None:
        if self.owner is not None:
            raise GraphConstructionError(
                f"receiver of {self.channel.name} already owned by "
                f"{self.owner.name}, cannot attach to {context.name}"
            )
        self.owner = context
        self.channel.receiver_owner = context

    def dequeue(self) -> "_ops.Dequeue":
        """Build a dequeue op for ``yield``-ing."""
        return _ops.Dequeue(self)

    def peek(self) -> "_ops.Peek":
        """Build a peek op for ``yield``-ing."""
        return _ops.Peek(self)

    def __repr__(self) -> str:
        return f"Receiver({self.channel.name})"


def make_channel(
    capacity: Optional[int] = None,
    latency: Time = 1,
    resp_latency: Time = 1,
    name: str | None = None,
    real: bool = False,
) -> tuple[Sender, Receiver]:
    """Create a channel and return its ``(Sender, Receiver)`` handle pair."""
    channel = Channel(
        capacity=capacity,
        latency=latency,
        resp_latency=resp_latency,
        name=name,
        real=real,
    )
    return Sender(channel), Receiver(channel)
