"""Legacy SpMSpM: X = B @ C (inner-product form) on the cycle simulator."""

from __future__ import annotations

from ...sam.tensor import CsfTensor
from ..primitives import (
    LegacyArrayVals,
    LegacyBinaryAlu,
    LegacyFiberLookup,
    LegacyFiberWrite,
    LegacyIntersect,
    LegacyReduce,
    LegacyRepeat,
    LegacyRepeatSigGen,
    LegacyRootSource,
    LegacyStreamSink,
    LegacyValsWrite,
)
from .common import DEFAULT_LEGACY_DEPTH, LegacyGraphBuilder, LegacyKernelGraph


def build_legacy_spmspm(
    b: CsfTensor,
    c_transposed: CsfTensor,
    depth: int | None = DEFAULT_LEGACY_DEPTH,
    ii: int = 1,
) -> LegacyKernelGraph:
    """The cycle-based mirror of :func:`repro.sam.graphs.build_spmspm`."""
    if b.shape[1] != c_transposed.shape[1]:
        raise ValueError(
            f"inner dimensions differ: B is {b.shape}, C^T is {c_transposed.shape}"
        )
    rows, cols = b.shape[0], c_transposed.shape[0]
    g = LegacyGraphBuilder(depth=depth)

    rootb = g.ch("rootB")
    g.add(LegacyRootSource(rootb, name="rootB", ii=ii))
    cbi, rbi = g.ch("cBi"), g.ch("rBi")
    g.add(LegacyFiberLookup(b.level(0), rootb, cbi, rbi, name="scanBi", ii=ii))
    cbi_out, cbi_sig = g.fanout(cbi, 2, "cBi")

    sigi = g.ch("sigI")
    g.add(LegacyRepeatSigGen(cbi_sig, sigi, name="repsigI", ii=ii))
    rootc = g.ch("rootC")
    g.add(LegacyRootSource(rootc, name="rootC", ii=ii))
    rcrep = g.ch("rC_rep")
    g.add(LegacyRepeat(rootc, sigi, rcrep, name="repeatC", ii=ii))

    ccj, rcj = g.ch("cCj"), g.ch("rCj")
    g.add(LegacyFiberLookup(c_transposed.level(0), rcrep, ccj, rcj, name="scanCj", ii=ii))
    ccj_out, ccj_sig = g.fanout(ccj, 2, "cCj")

    sigj = g.ch("sigJ")
    g.add(LegacyRepeatSigGen(ccj_sig, sigj, name="repsigJ", ii=ii))
    rbrep = g.ch("rB_rep")
    g.add(LegacyRepeat(rbi, sigj, rbrep, name="repeatB", ii=ii))

    cbk, rbk = g.ch("cBk"), g.ch("rBk")
    g.add(LegacyFiberLookup(b.level(1), rbrep, cbk, rbk, name="scanBk", ii=ii))
    cck, rck = g.ch("cCk"), g.ch("rCk")
    g.add(LegacyFiberLookup(c_transposed.level(1), rcj, cck, rck, name="scanCk", ii=ii))

    ck, rbx, rcx = g.ch("crd_k"), g.ch("rBk_x"), g.ch("rCk_x")
    g.add(LegacyIntersect(cbk, rbk, cck, rck, ck, rbx, rcx, name="intersectK", ii=ii))
    g.add(LegacyStreamSink(ck, name="sink_crd_k", ii=ii))

    vb, vc = g.ch("vB"), g.ch("vC")
    g.add(LegacyArrayVals(b.vals, rbx, vb, name="arrayB", ii=ii))
    g.add(LegacyArrayVals(c_transposed.vals, rcx, vc, name="arrayC", ii=ii))
    vm = g.ch("vMul")
    g.add(LegacyBinaryAlu(vb, vc, vm, lambda x, y: x * y, name="mulALU", ii=ii))
    vx = g.ch("vX")
    g.add(LegacyReduce(vm, vx, name="reduceK", ii=ii))

    fw_i = g.add(LegacyFiberWrite(cbi_out, name="write_i", ii=ii))
    fw_j = g.add(LegacyFiberWrite(ccj_out, name="write_j", ii=ii))
    vw = g.add(LegacyValsWrite(vx, name="write_vals", ii=ii))

    return LegacyKernelGraph(g.engine, [fw_i, fw_j], vw, (rows, cols))
