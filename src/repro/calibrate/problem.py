"""The calibration problem: match SAM kernel timing to reference traces.

The "RTL simulation" is simulated (per DESIGN.md's substitution table) by
running the very same SAM-on-DAM kernels under *hidden* timing parameters;
the tuner only sees the resulting cycle counts.  A candidate parameter set
is scored by the mean absolute cycle error across a workload suite —
exactly the objective of Section VIII-A4, where discrepancies of hundreds
of cycles were tuned down to ~0.8 cycles on average.

Tuned parameters (all integers):

* ``ii`` — initiation interval per payload token,
* ``stop_bubble`` — extra pipeline bubble after control tokens (the
  paper's explicit example knob),
* ``latency`` — channel forwarding latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..sam.graphs import build_mmadd, build_spmspm
from ..sam.primitives import TimingParams
from ..sam.tensor import CsfTensor, random_dense
from .tuner import IntParameter

#: The tunable space (paper: timing behaviors exposed to the autotuner).
PARAMETER_SPACE = [
    IntParameter("ii", 1, 4),
    IntParameter("stop_bubble", 0, 6),
    IntParameter("latency", 1, 4),
]


@dataclass(frozen=True)
class Workload:
    """One calibration stream: a kernel on one input set."""

    kind: str  # "mmadd" or "spmspm"
    rows: int
    cols: int
    density: float
    seed: int


DEFAULT_WORKLOADS = [
    Workload("mmadd", 8, 8, 0.5, 11),
    Workload("mmadd", 12, 6, 0.3, 12),
    Workload("spmspm", 6, 6, 0.4, 13),
    Workload("spmspm", 8, 5, 0.25, 14),
]


def _run_workload(workload: Workload, params: dict[str, int]) -> int:
    """Simulated cycles for one workload under candidate parameters."""
    timing = TimingParams(ii=params["ii"], stop_bubble=params["stop_bubble"])
    latency = params["latency"]
    if workload.kind == "mmadd":
        a = random_dense(
            workload.rows, workload.cols, density=workload.density, seed=workload.seed
        )
        b = random_dense(
            workload.rows,
            workload.cols,
            density=workload.density,
            seed=workload.seed + 1,
        )
        kernel = build_mmadd(
            CsfTensor.from_dense(a, "cc"),
            CsfTensor.from_dense(b, "cc"),
            timing=timing,
            latency=latency,
        )
    elif workload.kind == "spmspm":
        a = random_dense(
            workload.rows, workload.cols, density=workload.density, seed=workload.seed
        )
        bt = random_dense(
            workload.rows,
            workload.cols,
            density=workload.density,
            seed=workload.seed + 1,
        )
        kernel = build_spmspm(
            CsfTensor.from_dense(a, "cc"),
            CsfTensor.from_dense(bt, "cc"),
            timing=timing,
            latency=latency,
        )
    else:
        raise ValueError(f"unknown workload kind {workload.kind!r}")
    summary = kernel.run()
    return int(summary.elapsed_cycles)


def make_reference_traces(
    hidden_params: dict[str, int],
    workloads: Sequence[Workload] = tuple(DEFAULT_WORKLOADS),
) -> list[int]:
    """The 'RTL' traces: cycle counts under the hidden ground truth."""
    return [_run_workload(w, hidden_params) for w in workloads]


class SamTimingProblem:
    """Objective: mean absolute cycle error against reference traces."""

    def __init__(
        self,
        reference_traces: Sequence[int],
        workloads: Sequence[Workload] = tuple(DEFAULT_WORKLOADS),
    ):
        if len(reference_traces) != len(workloads):
            raise ValueError("one reference trace per workload required")
        self.reference_traces = list(reference_traces)
        self.workloads = list(workloads)
        self.evaluations = 0

    def __call__(self, params: dict[str, int]) -> float:
        self.evaluations += 1
        errors = [
            abs(_run_workload(w, params) - ref)
            for w, ref in zip(self.workloads, self.reference_traces)
        ]
        return sum(errors) / len(errors)

    def parameters(self) -> list[IntParameter]:
        return list(PARAMETER_SPACE)
