"""Unit tests for the Locate (random access) primitive."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sam.primitives import Locate
from repro.sam.tensor import CompressedLevel, DenseLevel
from repro.sam.testing import run_block
from repro.sam.token import ABSENT, DONE, Stop

S0, S1 = Stop(0), Stop(1)


def locate(level, stream, fiber_ref=0):
    (out,) = run_block(
        lambda rcv, snd: Locate(level, rcv[0], snd[0], fiber_ref=fiber_ref),
        [stream],
        1,
    )
    return out


class TestLocate:
    def test_compressed_hits_and_misses(self):
        level = CompressedLevel(seg=[0, 3], crd=[2, 5, 9])
        out = locate(level, [5, 3, 9, S0, DONE])
        assert out == [1, ABSENT, 2, S0, DONE]

    def test_compressed_other_fiber(self):
        level = CompressedLevel(seg=[0, 2, 4], crd=[1, 3, 0, 7])
        out = locate(level, [7, 1, S0, DONE], fiber_ref=1)
        assert out == [3, ABSENT, S0, DONE]

    def test_dense_level(self):
        out = locate(DenseLevel(4), [0, 3, 4, S1, DONE], fiber_ref=2)
        assert out == [8, 11, ABSENT, S1, DONE]

    def test_controls_pass_through(self):
        level = CompressedLevel(seg=[0, 1], crd=[0])
        out = locate(level, [S0, S1, DONE])
        assert out == [S0, S1, DONE]

    @settings(max_examples=25, deadline=None)
    @given(
        coords=st.sets(st.integers(0, 30), min_size=0, max_size=10),
        queries=st.lists(st.integers(0, 30), max_size=10),
    )
    def test_property_matches_dict_lookup(self, coords, queries):
        ordered = sorted(coords)
        level = CompressedLevel(seg=[0, len(ordered)], crd=ordered)
        expected_map = {crd: pos for pos, crd in enumerate(ordered)}
        out = locate(level, list(queries) + [S0, DONE])
        results = out[: len(queries)]
        for query, result in zip(queries, results):
            assert result == expected_map.get(query, ABSENT)
