"""The DAM core: CSPT contexts, time-bridging channels, and executors.

This package implements the paper's primary contribution — see DESIGN.md
section 5 for the precise cycle semantics shared by both executors.
"""

from .channel import (
    Channel,
    ChannelStats,
    Receiver,
    Sender,
    make_channel,
    peak_simulated_occupancy,
)
from .context import Context, ContextGenerator, FunctionContext
from .element import ChannelElement
from .errors import (
    ChannelClosed,
    DamError,
    DeadlockError,
    GraphConstructionError,
    SimulationError,
)
from .executor import (
    FairPolicy,
    FifoPolicy,
    PartitionPlan,
    ProcessExecutor,
    RunSummary,
    SequentialExecutor,
    ThreadedExecutor,
    channel_weights,
    plan_partition,
)
from .ops import (
    AdvanceTo,
    Dequeue,
    Enqueue,
    FusedOps,
    IncrCycles,
    Op,
    Peek,
    ViewTime,
    WaitUntil,
)
from .program import Program, ProgramBuilder
from .time import INFINITY, Time, TimeCell
from .trace import TraceEvent, Tracer

__all__ = [
    "Channel",
    "ChannelStats",
    "Sender",
    "Receiver",
    "make_channel",
    "peak_simulated_occupancy",
    "Context",
    "ContextGenerator",
    "FunctionContext",
    "ChannelElement",
    "ChannelClosed",
    "DamError",
    "DeadlockError",
    "GraphConstructionError",
    "SimulationError",
    "RunSummary",
    "SequentialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "PartitionPlan",
    "channel_weights",
    "plan_partition",
    "FifoPolicy",
    "FairPolicy",
    "Op",
    "Enqueue",
    "Dequeue",
    "FusedOps",
    "Peek",
    "IncrCycles",
    "AdvanceTo",
    "ViewTime",
    "WaitUntil",
    "Program",
    "ProgramBuilder",
    "INFINITY",
    "Time",
    "TimeCell",
    "Tracer",
    "TraceEvent",
]
