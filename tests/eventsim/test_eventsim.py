"""Tests for the SST-style event-driven baseline engine."""

import pytest

from repro.eventsim import (
    Component,
    Engine,
    Event,
    EventQueue,
    Link,
    MergeComponent,
    ParallelEngine,
)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        c = Component("c")
        for t in [5, 1, 3]:
            q.push(Event(t, c, "p", None))
        assert [q.pop().time for _ in range(3)] == [1, 3, 5]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        c = Component("c")
        e1 = Event(2, c, "p", "first")
        e2 = Event(2, c, "p", "second")
        q.push(e2)
        q.push(e1)
        # Same time: sequence numbers (creation order) decide.
        assert q.pop().payload == "first"

    def test_counters(self):
        q = EventQueue()
        q.push(Event(1, Component(), "p", None))
        q.pop()
        assert q.pushes == 1 and q.pops == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(Event(7, Component(), "p", None))
        assert q.peek_time() == 7


class Echo(Component):
    """Records (time, payload) for every delivery."""

    def __init__(self, name=None):
        super().__init__(name=name)
        self.received = []
        self.on("in", lambda t, p: self.received.append((t, p)))


class TestEngine:
    def test_link_latency_applied(self):
        engine = Engine()
        echo = engine.add(Echo())
        sender = engine.add(Component("src"))
        link = Link(echo, "in", latency=5)
        sender.send(link, 10, "hello")
        engine.run()
        assert echo.received == [(15, "hello")]

    def test_zero_latency_link_rejected(self):
        with pytest.raises(ValueError):
            Link(Component(), "in", latency=0)

    def test_self_events(self):
        engine = Engine()

        class Timer(Component):
            def __init__(self):
                super().__init__()
                self.fires = []
                self.on("tick", self._tick)

            def start(self):
                self.schedule_self("tick", 0)

            def _tick(self, time, _):
                self.fires.append(time)
                if time < 30:
                    self.schedule_self("tick", time + 10)

        timer = engine.add(Timer())
        stats = engine.run()
        assert timer.fires == [0, 10, 20, 30]
        assert stats.final_time == 30

    def test_missing_handler_raises(self):
        engine = Engine()
        component = engine.add(Component("c"))
        engine.schedule_event(component, "nope", 1)
        with pytest.raises(KeyError):
            engine.run()

    def test_scheduling_into_past_rejected(self):
        engine = Engine()
        echo = engine.add(Echo())
        engine.schedule_event(echo, "in", 5)

        class Rogue(Component):
            def __init__(self):
                super().__init__()
                self.on("go", self._go)

            def start(self):
                self.schedule_self("go", 10)

            def _go(self, time, _):
                self.engine.schedule_event(self, "go", time - 5)

        engine.add(Rogue())
        with pytest.raises(ValueError, match="past"):
            engine.run()

    def test_merge_component_merges(self):
        """Listing 2's event-driven merge produces the sorted merge."""
        engine = Engine()
        sink = engine.add(Echo("sink"))
        merge = MergeComponent(Link(sink, "in", latency=1), ii=2)
        engine.add(merge)

        class Feeder(Component):
            def __init__(self, link, values, name):
                super().__init__(name=name)
                self.link = link
                self.values = values
                self.on("emit", self._emit)

            def start(self):
                self.schedule_self("emit", 0, 0)

            def _emit(self, time, index):
                self.send(self.link, time, self.values[index])
                if index + 1 < len(self.values):
                    self.schedule_self("emit", time + 1, index + 1)

        engine.add(Feeder(Link(merge, "a", latency=1), [1, 4, 6], "fa"))
        engine.add(Feeder(Link(merge, "b", latency=1), [2, 3, 9], "fb"))
        engine.run()
        # The event-driven merge has no end-of-stream concept (one of the
        # interface gaps the paper highlights), so the tail element left
        # in one buffer when the other runs dry is never emitted.
        assert [p for _, p in sink.received] == [1, 2, 3, 4, 6]


class TestParallelEngine:
    def test_matches_sequential_results(self):
        from repro.bench import TreeConfig, run_eventsim_forest

        config = TreeConfig(trees=2, depth=3, reductions=8, fib_index=3)
        seq = run_eventsim_forest(config, workers=1)
        par = run_eventsim_forest(config, workers=3)
        assert seq["root_sums"] == par["root_sums"]
        assert seq["final_time"] == par["final_time"]

    def test_sync_window_is_min_link_latency(self):
        engine = ParallelEngine(workers=2)
        sink = engine.add(Echo())
        engine.link(sink, "in", latency=4)
        engine.link(sink, "in", latency=2)
        assert engine.sync_window() == 2

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ParallelEngine(workers=0)

    def test_barriers_executed_counted(self):
        from repro.bench import TreeConfig, build_eventsim_forest

        engine = ParallelEngine(workers=2)
        build_eventsim_forest(
            TreeConfig(trees=1, depth=2, reductions=5, fib_index=2), engine
        )
        engine.run()
        assert engine.barriers_executed > 1


class TestRunUntil:
    def test_run_stops_at_horizon(self):
        engine = Engine()

        class Ticker(Component):
            def __init__(self):
                super().__init__()
                self.fires = []
                self.on("tick", self._tick)

            def start(self):
                self.schedule_self("tick", 0)

            def _tick(self, time, _):
                self.fires.append(time)
                self.schedule_self("tick", time + 10)

        ticker = engine.add(Ticker())
        stats = engine.run(until=35)
        assert ticker.fires == [0, 10, 20, 30]
        assert stats.final_time <= 35

    def test_stats_render(self):
        engine = Engine()
        echo = engine.add(Echo())
        engine.schedule_event(echo, "in", 3, "x")
        stats = engine.run()
        assert "final_time=3" in str(stats)
