"""Fig. 7 — code-size comparison: SAM primitives, DAM vs cycle-based.

Paper: the Repeat block shown side by side; overall the SAM-on-DAM
reimplementation used 57% fewer lines than the original cycle-based
Python simulator, because the cycle abstraction forces every scrap of
inter-cycle progress into hand-managed state.

Reproduction: both implementations live in this repository
(:mod:`repro.sam.primitives` vs :mod:`repro.samlegacy.primitives`); the
counts below are effective source lines (no blanks/comments/docstrings).
"""

from conftest import report

from repro.bench import TextTable
from repro.tools import loc_comparison


def test_fig7_loc_comparison(benchmark):
    rows = benchmark.pedantic(loc_comparison, rounds=3, iterations=1)
    table = TextTable(
        ["primitive", "dam_loc", "legacy_loc", "reduction_%"],
        title=(
            "Fig. 7: lines of code per primitive, CSPT (DAM) vs cycle-based "
            "(legacy)\npaper: 57% fewer lines overall; Repeat block shown"
        ),
    )
    for row in rows:
        table.add_row(
            row["primitive"], row["dam_loc"], row["legacy_loc"],
            row["reduction_pct"],
        )
    report("fig7_loc", table.render())

    by_name = {row["primitive"]: row for row in rows}
    # The stateful primitives — where the cycle model hurts — shrink.
    for name in ["FiberLookup", "Repeat", "Reduce", "SpaccV1", "CrdHold"]:
        assert by_name[name]["reduction_pct"] > 25, name
    assert by_name["TOTAL"]["reduction_pct"] > 15
