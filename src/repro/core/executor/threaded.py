"""One-thread-per-context executor with SVA/SVP-style synchronization.

This is the Python analog of the DAM-RS runtime (paper Section IV): every
context runs on its own OS thread, there is no global clock and no event
queue, and synchronization is strictly pairwise:

* **SVA (Synchronization via Atomics)** — reading a peer's
  :class:`~repro.core.time.TimeCell` is a plain attribute load; under
  CPython the GIL gives it the acquire semantics the paper obtains from
  x86 total-store-order loads.  ``ViewTime`` compiles to exactly this.

* **SVP (Synchronization via Parking)** — when a context must wait for a
  peer's clock (or for channel state to change) it parks on a
  ``threading.Condition``, the portable analog of a futex park/unpark
  pair, and is woken by the peer's releasing operation.

The GIL means this executor does not deliver the paper's wall-clock
*speedups* (documented substitution in DESIGN.md), but the synchronization
algorithm, blocking structure, and — critically — the simulated results are
those of the paper's runtime.  Cross-executor tests assert cycle-exact
agreement with :class:`~repro.core.executor.sequential.SequentialExecutor`.

Deadlock detection: a watchdog aborts the run when every unfinished thread
has been parked with no progress for a grace period, then dumps a stall
report — each blocked context, the channel it is parked on, and the
simulated clocks of both of that channel's endpoints.

Observability: attach a :class:`repro.obs.Observability` (``obs=``) to
trace the run.  Each context appends to its own lock-free buffer from its
own thread, so tracing does not perturb the synchronization schedule;
buffers are merged deterministically at query time, yielding the same
event order the sequential executor produces.
"""

from __future__ import annotations

import threading
import time as _wallclock
from typing import Any, Optional

from ...obs import Observability, fold_channel_metrics, fold_context_metrics
from ...obs.stall import StallReport, stall_for
from .. import checkpoint as _ckpt
from ..channel import _EMPTY, Channel
from ..context import Context
from ..errors import (
    ChannelClosed,
    DamError,
    DeadlockError,
    RunTimeoutError,
    SimulationError,
    unpack_exception,
)
from ..ops import (
    AdvanceTo,
    Dequeue,
    Enqueue,
    FusedOps,
    IncrCycles,
    Peek,
    ViewTime,
    WaitUntil,
)
from ..program import Program
from .base import Executor, RunSummary
from .registry import register_executor
from .sequential import SequentialExecutor


class _Aborted(Exception):
    """Internal: the watchdog aborted the run (deadlock or peer failure)."""


class _TimeSync:
    """Park/unpark support for WaitUntil on one context's clock."""

    __slots__ = ("cond", "waiter_count")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.waiter_count = 0


@register_executor("threaded")
class ThreadedExecutor(Executor):
    """Executes each context on a dedicated OS thread.

    Parameters
    ----------
    poll_interval:
        How often parked threads re-check the abort flag (seconds).
    deadlock_grace:
        Abort if all unfinished threads stay parked with zero progress for
        this long (seconds).
    obs:
        A :class:`repro.obs.Observability` collecting the run's trace
        and/or metrics.
    """

    name = "threaded"

    def __init__(
        self,
        poll_interval: float = 0.05,
        deadlock_grace: float = 2.0,
        obs: Optional[Observability] = None,
        deadline_s: Optional[float] = None,
        faults=None,
        metrics_interval_s: Optional[float] = None,
        metrics_sink=None,
        superblocks: Any = "auto",
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
    ):
        self.poll_interval = poll_interval
        self.deadlock_grace = deadlock_grace
        self.obs = obs
        self.checkpoint_interval_s = checkpoint_interval_s
        self.checkpoint_path = checkpoint_path
        #: Superblock mode (DESIGN.md §15): eligible cold clusters run on
        #: one thread each via an embedded sequential cluster driver with
        #: shared-clock shadow cells; every other context keeps its own
        #: thread.  Scheduling-independent results are identical either
        #: way (the determinism invariant).
        self.superblocks = superblocks
        self.deadline_s = deadline_s
        self.faults = faults
        self.metrics_interval_s = metrics_interval_s
        self.metrics_sink = metrics_sink
        self._fault_map: dict = {}
        self._deadline_at: Optional[float] = None
        self._abort = threading.Event()
        self._progress = 0  # monotone op counter (heuristic, GIL-atomic)
        self._blocked_count = 0
        self._blocked_lock = threading.Lock()
        self._errors: list[BaseException] = []
        self._blocked_details: dict[str, str] = {}
        # Structured park sites for stall reports: name -> (detail,
        # channel, peer context).  Written under _blocked_lock.
        self._blocked_sites: dict[str, tuple[str, Optional[Channel], Optional[Context]]] = {}
        self._ops_executed = 0
        # -- checkpoint pause protocol (DESIGN.md §17) -----------------
        # The controller raises ``_ckpt_request``; every live thread
        # acknowledges at its next safe point — the top of its op loop
        # (executed record) or between bounded parks on an un-executed
        # op — then waits on ``_ckpt_cv`` without executing anything.
        # When every live thread has acknowledged, nothing can mutate a
        # channel or clock: a quiescent cut by construction.
        self._ckpt_timer: Any = None
        self._ckpt_request = False
        self._ckpt_cv = threading.Condition()
        # Round counter: an acknowledging thread waits for the *round it
        # acked in* to end, not for a boolean to flip — back-to-back
        # rounds (interval <= 0) would otherwise swallow the flip and
        # strand every thread in a stale wait.
        self._ckpt_round = 0
        self._ckpt_acked = 0
        self._ckpt_records: dict[int, dict] = {}
        # Mid-batch bookkeeping per context, maintained only while
        # checkpointing is on: [fused_index, live results list, batch
        # length] — None index means "not inside a fused batch".
        self._ckpt_cells: dict[int, list] = {}
        self._resume_records: Optional[dict[int, dict]] = None
        self._resuming = False
        self._slots: dict[int, int] = {}

    # ------------------------------------------------------------------

    def execute(self, program: Program) -> RunSummary:
        start = _wallclock.perf_counter()
        self._start = start
        self._deadline_at = (
            start + self.deadline_s if self.deadline_s is not None else None
        )
        # Each thread only ever reads/deletes its own context's entry, so
        # plain dict operations suffice (GIL- and per-object-lock safe).
        self._fault_map = (
            dict(self.faults.context_faults)
            if self.faults is not None and self.faults.context_faults
            else {}
        )
        self._program = program
        self._slots = {id(ctx): slot for slot, ctx in enumerate(program.contexts)}
        self._ckpt_timer = None
        if self.checkpoint_path is not None:
            _ckpt.validate_checkpointable(program)
            _ckpt.clean_stale_temps(self.checkpoint_path)
            interval = self.checkpoint_interval_s
            self._ckpt_timer = _ckpt.CheckpointTimer(
                0.0 if interval is None else interval,
                start_epoch=getattr(program, "_resume_epoch", 0),
            )
            self._ckpt_cells = {
                id(ctx): [None, None, None] for ctx in program.contexts
            }
        resume = program.__dict__.pop("_resume_records", None)
        self._resuming = resume is not None
        self._resume_records = resume
        # Contexts restored as done never get a thread: their finish
        # times and their channels' closure flags came back with the
        # checkpoint, so there is nothing left to drive (and _finish must
        # not run — it would re-close and re-stamp).
        done_ids = (
            {
                id(ctx)
                for slot, ctx in enumerate(program.contexts)
                if resume.get(slot, {}).get("kind") == "done"
            }
            if resume
            else set()
        )
        self._time_sync = {id(ctx): _TimeSync() for ctx in program.contexts}
        self._unfinished = len(program.contexts) - len(done_ids)
        self._unfinished_lock = threading.Lock()

        obs = self.obs
        trace = obs.trace if obs is not None else None
        # Per-context trace buffers and metric tallies are created here,
        # on the main thread, so worker threads only ever touch their own
        # entry (the lock-free discipline).
        self._buffers = (
            {ctx.name: trace.buffer(ctx.name) for ctx in program.contexts}
            if trace is not None
            else {}
        )
        collect_metrics = obs is not None and obs.metrics is not None
        self._collect_metrics = collect_metrics
        self._ctx_ops = {ctx.name: 0 for ctx in program.contexts}
        self._ctx_parks = {ctx.name: 0 for ctx in program.contexts}
        self._ctx_spins = {ctx.name: 0 for ctx in program.contexts}
        self._ctx_wall = {ctx.name: 0.0 for ctx in program.contexts}

        for ctx in program.contexts:
            self._install_advance_hook(ctx)

        cluster_groups = self._plan_superblocks(program)
        clustered = {
            id(ctx) for contexts, _ in cluster_groups for ctx in contexts
        }
        threads = [
            threading.Thread(
                target=self._drive, args=(ctx,), name=f"dam-{ctx.name}", daemon=True
            )
            for ctx in program.contexts
            if id(ctx) not in clustered and id(ctx) not in done_ids
        ]
        threads.extend(
            threading.Thread(
                target=self._drive_cluster,
                args=(contexts, channels),
                name=f"dam-cluster-{contexts[0].name}",
                daemon=True,
            )
            for contexts, channels in cluster_groups
        )
        for thread in threads:
            thread.start()

        watchdog = threading.Thread(
            target=self._watch, args=(threads,), name="dam-watchdog", daemon=True
        )
        watchdog.start()
        controller = None
        if self._ckpt_timer is not None:
            controller = threading.Thread(
                target=self._ckpt_loop, name="dam-checkpointer", daemon=True
            )
            controller.start()
        sampler = self._start_sampler(
            self.metrics_interval_s, self._sampler_probe(program), self.metrics_sink
        )
        try:
            for thread in threads:
                thread.join()
        finally:
            self._abort.set()  # stop the watchdog
            watchdog.join()
            if controller is not None:
                with self._ckpt_cv:
                    self._ckpt_cv.notify_all()
                controller.join()
            self._stop_sampler(sampler, obs)

        for ctx in program.contexts:
            ctx.time.on_advance = None

        if self._errors:
            error = self._errors[0]
            if isinstance(error, DeadlockError):
                raise error
            if isinstance(error, DamError):
                raise error
            raise SimulationError("<threaded>", error) from error
        if any(ctx.finish_time is None for ctx in program.contexts):
            report = self._stall_report()
            if obs is not None:
                obs.stall_report = report
            raise DeadlockError(report.lines())

        summary = RunSummary(
            elapsed_cycles=self._makespan(program),
            real_seconds=_wallclock.perf_counter() - start,
            context_times={ctx.name: ctx.finish_time for ctx in program.contexts},
            executor=self.name,
            policy="os",
            ops_executed=self._ops_executed,
            metrics=self._fold_metrics(program),
        )
        self._attach_profile(summary, program, obs)
        return summary

    def _sampler_probe(self, program: Program):
        """Read-only closure for the live metrics sampler: each context's
        published clock, the op counter, and the registry when enabled."""
        obs = self.obs
        registry = obs.metrics if obs is not None else None
        contexts = list(program.contexts)

        def probe() -> dict:
            sample: dict = {
                "contexts": {ctx.name: ctx.time.now() for ctx in contexts},
                "ops_executed": self._ops_executed,
            }
            if registry is not None:
                sample["metrics"] = registry.snapshot()
            return sample

        return probe

    # ------------------------------------------------------------------

    def _stall_report(self) -> StallReport:
        """Build the deadlock diagnosis from the recorded park sites."""
        with self._blocked_lock:
            sites = dict(self._blocked_sites)
        stalls = []
        contexts = {ctx.name: ctx for ctx in self._program.contexts}
        for name, ctx in contexts.items():
            if ctx.finish_time is not None:
                continue
            detail, channel, peer = sites.get(name, ("not started", None, None))
            stalls.append(stall_for(ctx, detail, channel=channel, peer=peer))
        return StallReport(stalls)

    def _fold_metrics(self, program: Program) -> Optional[dict]:
        if not self._collect_metrics:
            return None
        registry = self.obs.metrics
        fold_channel_metrics(registry, program.channels)
        for ctx in program.contexts:
            fold_context_metrics(
                registry,
                ctx.name,
                ops=self._ctx_ops[ctx.name],
                finish_time=ctx.finish_time,
                wall_seconds=self._ctx_wall[ctx.name],
                parks=self._ctx_parks[ctx.name],
                spin_reads=self._ctx_spins[ctx.name],
            )
        registry.counter("executor_ops").inc(self._ops_executed)
        return registry.snapshot()

    # ------------------------------------------------------------------

    def _install_advance_hook(self, ctx: Context) -> None:
        sync = self._time_sync[id(ctx)]

        def notify(_now: Any, _sync: _TimeSync = sync) -> None:
            # Fast path: nobody is parked on this clock.
            if _sync.waiter_count:
                with _sync.cond:
                    _sync.cond.notify_all()

        ctx.time.on_advance = notify

    # ------------------------------------------------------------------
    # Superblocks (DESIGN.md §15): shared-clock twins of the sequential
    # cluster driver.  Each eligible cold cluster runs on ONE thread via
    # an embedded SequentialExecutor whose superblock turns run against
    # shadow cells and publish one clock leap per turn through the
    # parent-installed advance hooks — preserving the SVA lower-bound
    # contract for every non-member observer.

    def _plan_superblocks(
        self, program: Program
    ) -> list[tuple[list[Context], list[Any]]]:
        """Resolve which cold clusters get a single cluster-driver thread.

        Declines whenever per-op observability or fault injection needs
        the per-context thread structure (tracing buffers and fault
        triggers are wired to ``_drive``).
        """
        from .partition import plan_clusters
        from .superblock import normalize_mode, select_clusters

        mode = normalize_mode(self.superblocks)
        if mode == "off" or self.obs is not None or self._fault_map:
            return []
        # Checkpointed (and resumed) runs need one thread per context:
        # the pause protocol's safe points live in _drive, and cluster-
        # driver sb_* state is not part of any capturable record.
        if self._ckpt_timer is not None or self._resuming:
            return []
        clusters = plan_clusters(
            program, {id(ctx): 0 for ctx in program.contexts}
        )
        specs = select_clusters(program, clusters, mode)
        return [
            (
                [program.contexts[slot] for slot in spec.contexts],
                [program.channels[slot] for slot in spec.channels],
            )
            for spec in specs
        ]

    def _drive_cluster(
        self, contexts: list[Context], channels: list[Any]
    ) -> None:
        """Thread body: drive one cold cluster to completion through an
        embedded sequential engine (superblocks included)."""
        driver = _ClusterDriver(self)
        try:
            driver.execute(Program(contexts, channels))
        except _Aborted:
            return
        except BaseException as failure:  # noqa: BLE001 - reported faithfully
            self._errors.append(
                failure
                if isinstance(failure, DamError)
                else SimulationError(contexts[0].name, failure)
            )
            self._abort.set()
        finally:
            states = getattr(driver, "_states", None) or {}
            for ctx in contexts:
                # Parent-side wind-down per member: close channels under
                # their conditions (waking any foreign parked threads)
                # and decrement the unfinished count — mirroring the tail
                # of ``_drive``.  The embedded driver already stamped
                # finish times for members that completed.
                self._finish(ctx)
                state = states.get(id(ctx))
                if state is not None:
                    self._ctx_ops[ctx.name] = state.ops

    def _drive(self, ctx: Context) -> None:
        """Thread body: interpret one context's generator to completion."""
        gen = ctx.run()
        value: Any = None
        exc: BaseException | None = None
        started = False  # the generator has been primed (first send done)
        resume_batch: Optional[tuple] = None
        # The buffer is this thread's own: appends need no locking and,
        # unlike a shared event log, cannot perturb peer scheduling.
        buf = self._buffers.get(ctx.name)
        ops = 0
        spins = 0
        wall_start = _wallclock.perf_counter() if self._collect_metrics else 0.0
        abort_is_set = self._abort.is_set
        fault = self._fault_map.pop(ctx.name, None)
        cell = self._ckpt_cells.get(id(ctx))
        record = (
            self._resume_records.pop(self._slots[id(ctx)], None)
            if self._resume_records
            else None
        )
        try:
            if record is not None and record["kind"] == "suspended":
                # Resume prologue (DESIGN.md §17): prime the fresh
                # generator so it re-derives the suspended yield from the
                # restored attributes, then route the recorded outcome
                # back in instead of re-executing the op.  Un-executed
                # simple suspensions skip all of this — the loop below
                # re-derives and re-attempts them naturally.
                packed = record.get("pending_exc")
                pending_exc = (
                    unpack_exception(packed) if packed is not None else None
                )
                fused_index = record.get("fused_index")
                if fused_index is not None:
                    op0 = self._resume_prime(ctx, gen)
                    started = True
                    subs0 = op0.ops if type(op0) is FusedOps else op0
                    if not isinstance(subs0, (tuple, list)):
                        raise SimulationError(
                            ctx.name,
                            RuntimeError(
                                "resumed context yielded a non-fused op "
                                "where the checkpoint recorded a fused "
                                f"batch: {op0!r}"
                            ),
                        )
                    results0 = list(record.get("fused_prefix") or [])
                    start_at = fused_index
                    if record["executed"]:
                        results0.append(record["pending_value"])
                        start_at = fused_index + 1
                    resume_batch = (subs0, start_at, results0, pending_exc)
                elif record["executed"] or pending_exc is not None:
                    self._resume_prime(ctx, gen)
                    started = True
                    value, exc = record["pending_value"], pending_exc
            while True:
                # Per-op abort check: without it a context that never
                # blocks (pure IncrCycles loops) would ignore deadline and
                # peer-failure aborts until it happened to park.
                if abort_is_set():
                    raise _Aborted
                if resume_batch is not None:
                    # Finish the checkpointed mid-batch suspension before
                    # the first checkpoint gate: the pending prefix is
                    # thread-local state no record could describe twice.
                    subs, start_at, results, exc = resume_batch
                    resume_batch = None
                    if exc is None:
                        value, exc, count = self._run_batch(
                            ctx, subs, buf, results, start_at, cell
                        )
                        ops += count
                        continue
                    # The recorded batch outcome was an exception (a
                    # closing dequeue): fall through and deliver it.
                if self._ckpt_request:
                    self._ckpt_ack(
                        ctx, self._ready_record(ctx, started, value, exc)
                    )
                if fault is not None and ops >= fault.after_ops:
                    exc, fault = fault.make(), None
                try:
                    if exc is not None:
                        pending, exc = exc, None
                        op = gen.throw(pending)
                    else:
                        op = gen.send(value)
                except StopIteration:
                    break
                except ChannelClosed:
                    break
                started = True
                value, exc = None, None
                kind = type(op)
                if kind is FusedOps or kind is tuple or kind is list:
                    subs = op.ops if kind is FusedOps else op
                    value, exc, count = self._run_batch(
                        ctx, subs, buf, [], 0, cell
                    )
                    ops += count
                    continue
                if kind is Enqueue:
                    self._do_enqueue(ctx, op)
                    if buf is not None:
                        buf.append(
                            "enqueue", op.sender.channel.name,
                            ctx.time.now(), op.data,
                        )
                elif kind is Dequeue:
                    try:
                        value = self._do_dequeue(ctx, op, remove=True)
                        if buf is not None:
                            buf.append(
                                "dequeue", op.receiver.channel.name,
                                ctx.time.now(), value,
                            )
                    except ChannelClosed as closed:
                        exc = closed
                elif kind is Peek:
                    try:
                        value = self._do_dequeue(ctx, op, remove=False)
                        if buf is not None:
                            buf.append(
                                "peek", op.receiver.channel.name,
                                ctx.time.now(), value,
                            )
                    except ChannelClosed as closed:
                        exc = closed
                elif kind is IncrCycles:
                    ctx.time.incr(op.cycles)
                    if buf is not None:
                        buf.append("advance", None, ctx.time.now())
                elif kind is AdvanceTo:
                    ctx.time.advance(op.time)
                    if buf is not None:
                        buf.append("advance", None, ctx.time.now())
                elif kind is ViewTime:
                    value = op.context.time.now()  # SVA: plain atomic load
                    spins += 1
                elif kind is WaitUntil:
                    value = self._wait_until(ctx, op)
                else:
                    raise SimulationError(
                        ctx.name, TypeError(f"non-op yielded: {op!r}")
                    )
                self._progress += 1
                self._ops_executed += 1
                ops += 1
        except _Aborted:
            return
        except BaseException as failure:  # noqa: BLE001 - reported faithfully
            self._errors.append(
                failure
                if isinstance(failure, DamError)
                else SimulationError(ctx.name, failure)
            )
            self._abort.set()
        finally:
            gen.close()
            self._finish(ctx)
            if buf is not None and ctx.finish_time is not None:
                buf.append("finish", None, ctx.finish_time)
            self._ctx_ops[ctx.name] = ops
            self._ctx_spins[ctx.name] += spins
            if self._collect_metrics:
                self._ctx_wall[ctx.name] = (
                    _wallclock.perf_counter() - wall_start
                )

    def _run_batch(
        self,
        ctx: Context,
        subs,
        buf,
        results: list,
        start: int,
        cell: Optional[list],
    ) -> tuple:
        """Execute constituents ``[start:]`` of a fused batch.

        Returns ``(value, exc, count)``: the delivery for the generator
        (the results list, or ``None`` paired with the closing exception)
        and the number of constituents executed here.  ``cell`` — present
        only while checkpointing is on — tracks the in-progress position
        so a pause while blocked on a constituent records the exact
        mid-batch suspension.
        """
        exc: BaseException | None = None
        count = 0
        try:
            for index in range(start, len(subs)):
                sub = subs[index]
                if cell is not None:
                    cell[0], cell[1], cell[2] = index, results, len(subs)
                # Accounting is per constituent, matching the sequential
                # executor: the batch itself is not an op, and a closing
                # dequeue is still counted.
                self._progress += 1
                self._ops_executed += 1
                count += 1
                skind = type(sub)
                if skind is Enqueue:
                    self._do_enqueue(ctx, sub)
                    if buf is not None:
                        buf.append(
                            "enqueue", sub.sender.channel.name,
                            ctx.time.now(), sub.data,
                        )
                    results.append(None)
                elif skind is Dequeue or skind is Peek:
                    try:
                        result = self._do_dequeue(
                            ctx, sub, remove=skind is Dequeue
                        )
                    except ChannelClosed as closed:
                        exc = closed
                        break  # abandon the rest of the batch
                    if buf is not None:
                        buf.append(
                            "dequeue" if skind is Dequeue else "peek",
                            sub.receiver.channel.name,
                            ctx.time.now(), result,
                        )
                    results.append(result)
                elif skind is IncrCycles:
                    ctx.time.incr(sub.cycles)
                    if buf is not None:
                        buf.append("advance", None, ctx.time.now())
                    results.append(None)
                elif skind is AdvanceTo:
                    ctx.time.advance(sub.time)
                    if buf is not None:
                        buf.append("advance", None, ctx.time.now())
                    results.append(None)
                elif skind is ViewTime:
                    results.append(sub.context.time.now())
                    self._ctx_spins[ctx.name] += 1
                elif skind is WaitUntil:
                    results.append(self._wait_until(ctx, sub))
                else:
                    raise SimulationError(
                        ctx.name,
                        TypeError(
                            "FusedOps constituent must be a "
                            f"non-fused op: {sub!r}"
                        ),
                    )
        finally:
            if cell is not None:
                cell[0] = None
        # A list, matching the sequential fast path's reused plan buffer
        # (same type either way).
        return (results if exc is None else None, exc, count)

    # ------------------------------------------------------------------
    # Checkpoint pause protocol (DESIGN.md §17).
    # ------------------------------------------------------------------

    def _resume_prime(self, ctx: Context, gen):
        """Prime a resumed generator; its first yield re-derives the
        suspended op (discarded — the recorded outcome replaces it)."""
        try:
            return gen.send(None)
        except BaseException as failure:  # noqa: BLE001 - contract breach
            raise SimulationError(
                ctx.name,
                RuntimeError(
                    "context did not re-derive its suspended yield on "
                    f"resume (resumable-state contract breach): {failure!r}"
                ),
            ) from failure

    def _ready_record(self, ctx: Context, started: bool, value, exc) -> dict:
        """The resume record for a thread paused at the top of its op
        loop: the last op executed fully and its outcome awaits delivery
        (or the generator never started)."""
        if not started:
            return _ckpt.record_fresh(ctx)
        return _ckpt.record_suspended(
            ctx, executed=True, pending_value=value, pending_exc=exc
        )

    def _ckpt_gate_blocked(self, ctx: Context) -> None:
        """Safe point between bounded parks on an un-executed op.

        Called with no channel condition held (the park's ``with`` block
        has exited), so acknowledging here can never stop a peer from
        reaching its own gate.
        """
        if not self._ckpt_request:
            return
        cell = self._ckpt_cells.get(id(ctx))
        if cell is not None and cell[0] is not None:
            record = _ckpt.record_suspended(
                ctx,
                executed=False,
                fused_index=cell[0],
                fused_prefix=list(cell[1][: cell[0]]),
                fused_len=cell[2],
            )
        else:
            record = _ckpt.record_suspended(ctx, executed=False)
        self._ckpt_ack(ctx, record)

    def _ckpt_ack(self, ctx: Context, record: dict) -> None:
        """Publish this context's record, then stay parked — executing
        nothing — until the controller finishes the capture."""
        slot = self._slots[id(ctx)]
        with self._ckpt_cv:
            if not self._ckpt_request:
                # The round ended between the lock-free gate check and
                # acquiring the condition; nothing to acknowledge.
                return
            round_id = self._ckpt_round
            self._ckpt_records[slot] = record
            self._ckpt_acked += 1
            self._ckpt_cv.notify_all()
            # Wait for *this* round to end.  The controller may begin the
            # next round immediately (interval <= 0), so waiting on the
            # request boolean alone would strand this thread in a stale
            # wait while the new round counts acks it never re-sent.
            while self._ckpt_round == round_id and not self._abort.is_set():
                self._ckpt_cv.wait(self.poll_interval)
        if self._abort.is_set():
            raise _Aborted

    def _ckpt_loop(self) -> None:
        """Controller thread: pause, capture, resume at the configured
        cadence until the run finishes or aborts."""
        timer = self._ckpt_timer
        while not self._abort.is_set():
            with self._unfinished_lock:
                if self._unfinished <= 0:
                    return
            if timer.due():
                try:
                    self._ckpt_pause_and_capture()
                except BaseException as failure:  # noqa: BLE001 - abort the run
                    self._errors.append(
                        failure
                        if isinstance(failure, DamError)
                        else SimulationError("<checkpoint>", failure)
                    )
                    self._abort.set()
                    return
            else:
                _wallclock.sleep(self.poll_interval)

    def _ckpt_pause_and_capture(self) -> None:
        """One pause/capture/resume round.

        Raising the request flag makes every live thread acknowledge at
        its next safe point; a thread that instead *finishes* mid-round
        leaves the live count, so the wait below converges either way.
        Threads resumed by the final notify re-check their own state —
        blocked ops simply re-attempt against the (unchanged) channels.
        """
        with self._ckpt_cv:
            self._ckpt_records = {}
            self._ckpt_acked = 0
            self._ckpt_request = True
            try:
                while not self._abort.is_set():
                    with self._unfinished_lock:
                        live = self._unfinished
                    if live <= 0 or self._ckpt_acked >= live:
                        break
                    self._ckpt_cv.wait(self.poll_interval)
                if not self._abort.is_set():
                    self._capture_checkpoint()
            finally:
                self._ckpt_request = False
                self._ckpt_round += 1
                self._ckpt_cv.notify_all()

    def _capture_checkpoint(self) -> None:
        """All live threads acknowledged: assemble and write the cut.
        Contexts with no published record finished earlier (their threads
        exited) and are captured as done."""
        program = self._program
        records = dict(self._ckpt_records)
        for slot, ctx in enumerate(program.contexts):
            if slot not in records:
                records[slot] = _ckpt.record_done(ctx)
        obs = self.obs
        registry = obs.metrics if obs is not None else None
        checkpoint = _ckpt.Checkpoint.capture(
            program,
            self._ckpt_timer.epoch + 1,
            records,
            metrics=registry.dump_state() if registry is not None else None,
            executor=self.name,
        )
        checkpoint.save(self.checkpoint_path)
        self._ckpt_timer.mark()

    # ------------------------------------------------------------------
    # Blocking channel operations (the SVP paths).
    # ------------------------------------------------------------------

    def _do_enqueue(self, ctx: Context, op: Enqueue) -> None:
        channel = op.sender.channel
        clock = ctx.time
        while True:
            with channel.cond:
                # ``try_enqueue`` is re-fetched on every attempt: a close
                # transition while parked re-selects the flavor under this
                # same condition, so the retry sees the fresh bound method.
                if channel.try_enqueue(clock, op.data):
                    channel.cond.notify_all()
                    return
                self._park(
                    ctx, channel.cond, f"enqueue on full {channel.name}",
                    channel=channel,
                )
            self._ckpt_gate_blocked(ctx)

    def _do_dequeue(self, ctx: Context, op: Any, remove: bool) -> Any:
        channel = op.receiver.channel
        clock = ctx.time
        while True:
            with channel.cond:
                if remove:
                    value = channel.fast_dequeue(clock)
                    if value is not _EMPTY:
                        channel.cond.notify_all()
                        return value
                elif channel.can_dequeue():
                    return channel.do_peek(clock)
                if channel.closed_for_receiver:
                    raise ChannelClosed(channel.name)
                self._park(
                    ctx, channel.cond, f"dequeue on empty {channel.name}",
                    channel=channel,
                )
            self._ckpt_gate_blocked(ctx)

    def _wait_until(self, ctx: Context, op: WaitUntil) -> Any:
        target = op.context
        if target.time.now() >= op.time:  # SVA fast path
            self._ctx_spins[ctx.name] += 1
            return target.time.now()
        sync = self._time_sync[id(target)]
        while True:
            with sync.cond:
                if target.time.now() >= op.time:
                    break
                self._ctx_spins[ctx.name] += 1
                sync.waiter_count += 1
                try:
                    self._park(
                        ctx, sync.cond,
                        f"wait-until {op.time} on {target.name}",
                        peer=target,
                    )
                finally:
                    sync.waiter_count -= 1
            self._ckpt_gate_blocked(ctx)
        return target.time.now()

    def _park(
        self,
        ctx: Context,
        cond: threading.Condition,
        detail: str,
        channel: Optional[Channel] = None,
        peer: Optional[Context] = None,
    ) -> None:
        """One bounded wait on ``cond`` (caller re-checks its predicate).

        ``channel``/``peer`` identify what the context is parked on; they
        feed the watchdog's stall report.
        """
        if self._abort.is_set():
            raise _Aborted
        self._ctx_parks[ctx.name] += 1
        site = (detail, channel, peer)
        with self._blocked_lock:
            self._blocked_count += 1
            self._blocked_details[ctx.name] = detail
            self._blocked_sites[ctx.name] = site
        try:
            cond.wait(timeout=self.poll_interval)
        finally:
            with self._blocked_lock:
                self._blocked_count -= 1
                self._blocked_details.pop(ctx.name, None)
                self._blocked_sites.pop(ctx.name, None)
        if self._abort.is_set():
            # Keep the park site for the deadlock report.
            with self._blocked_lock:
                self._blocked_details[ctx.name] = detail
                self._blocked_sites[ctx.name] = site
            raise _Aborted

    # ------------------------------------------------------------------

    def _finish(self, ctx: Context) -> None:
        if ctx.finish_time is None and not self._errors and not self._abort.is_set():
            ctx.finish_time = ctx.time.now()
        ctx.time.finish()
        for sender in ctx.senders:
            channel = sender.channel
            with channel.cond:
                channel.close_sender()
                channel.cond.notify_all()
        for receiver in ctx.receivers:
            channel = receiver.channel
            with channel.cond:
                channel.close_receiver()
                channel.cond.notify_all()
        with self._unfinished_lock:
            self._unfinished -= 1

    def _timeout_error(self, program: Program) -> RunTimeoutError:
        """Build the deadline abort: stall report + partial summary, with
        clocks snapshotted *now*, before thread wind-down freezes them at
        infinity."""
        report = self._stall_report()
        if self.obs is not None:
            self.obs.stall_report = report
        summary = RunSummary(
            elapsed_cycles=self._makespan(program),
            real_seconds=_wallclock.perf_counter() - self._start,
            context_times={
                ctx.name: (
                    ctx.finish_time
                    if ctx.finish_time is not None
                    else ctx.time.now()
                )
                for ctx in program.contexts
            },
            executor=self.name,
            policy="os",
            ops_executed=self._ops_executed,
        )
        return RunTimeoutError(
            self.deadline_s,
            executor=self.name,
            summary=summary,
            stall_report=report,
        )

    def _watch(self, threads: list[threading.Thread]) -> None:
        """Abort the run when all unfinished threads are parked, stalled."""
        stall_start: Optional[float] = None
        last_progress = -1
        deadline_at = self._deadline_at
        while not self._abort.is_set():
            _wallclock.sleep(self.poll_interval)
            with self._unfinished_lock:
                unfinished = self._unfinished
            if unfinished == 0:
                return
            if deadline_at is not None and (
                _wallclock.perf_counter() >= deadline_at
            ):
                self._errors.append(self._timeout_error(self._program))
                self._abort.set()
                return
            if self._ckpt_request:
                # A checkpoint pause freezes every thread on purpose;
                # stillness during it is not a deadlock.
                stall_start = None
                continue
            progress = self._progress
            with self._blocked_lock:
                all_parked = self._blocked_count >= unfinished
            if progress == last_progress and all_parked:
                now = _wallclock.perf_counter()
                if stall_start is None:
                    stall_start = now
                elif now - stall_start >= self.deadlock_grace:
                    # Dump the full stall report while every thread is
                    # still parked on its recorded site: per-context
                    # state, the parked-on channel, and both endpoint
                    # simulated clocks.
                    report = self._stall_report()
                    if self.obs is not None:
                        self.obs.stall_report = report
                    self._errors.append(DeadlockError(report.lines()))
                    self._abort.set()
                    return
            else:
                stall_start = None
                last_progress = progress


class _ClusterDriver(SequentialExecutor):
    """One cold cluster on one thread, embedded in a threaded run.

    A shared-clock twin of the sequential superblock driver: member
    clocks carry the parent's advance hooks, so superblock turns run
    against scratch shadow cells and publish a single vectorized leap
    per turn — a monotone lower bound, exactly the SVA contract foreign
    ``ViewTime``/``WaitUntil`` observers rely on.  Bounded slices keep
    the parent's abort flag and progress counter live, and idling polls
    foreign clocks (the one external dependency a cold cluster can
    have) instead of declaring deadlock — the parent watchdog owns that
    verdict.
    """

    name = "threaded-cluster"

    def __init__(self, parent: ThreadedExecutor):
        super().__init__(superblocks=parent.superblocks)
        self._parent = parent
        self._always_bounded = True
        # WaitUntil targets seen so far (possibly foreign contexts), so
        # idling can drain their waiters by object, not just by id.
        self._wu_targets: dict[int, Context] = {}

    def _run_slice(self, state, remaining) -> None:
        parent = self._parent
        if parent._abort.is_set():
            raise _Aborted
        before = self.ops_executed
        super()._run_slice(state, remaining)
        delta = self.ops_executed - before
        if delta:
            parent._progress += delta
            parent._ops_executed += delta

    def _h_wait_until(self, state, op):
        self._wu_targets[id(op.context)] = op.context
        return super()._h_wait_until(state, op)

    def _idle(self) -> bool:
        parent = self._parent
        if parent._abort.is_set():
            raise _Aborted
        blocked = [
            st for st in self._states.values() if st.status == 1  # _BLOCKED
        ]
        if not blocked:
            return False  # every member ran to completion
        # A foreign clock may have passed a member's WaitUntil threshold.
        if self._any_time_waiters:
            for target in list(self._wu_targets.values()):
                self._drain_time_waiters(target)
            if self.policy:
                return True
        # Genuinely idle: park the whole cluster for one poll interval,
        # with each member's site registered so the stall report and the
        # watchdog's stasis detector see the real blocking structure.
        sites: dict[str, tuple] = {}
        for st in blocked:
            op = st.retry_op
            channel = None
            if op is not None:
                port = getattr(op, "sender", None) or getattr(
                    op, "receiver", None
                )
                if port is not None:
                    channel = port.channel
            sites[st.context.name] = (st.blocked_detail, channel, None)
        with parent._blocked_lock:
            parent._blocked_count += len(sites)
            for name, site in sites.items():
                parent._blocked_details[name] = site[0]
                parent._blocked_sites[name] = site
        try:
            _wallclock.sleep(parent.poll_interval)
        finally:
            with parent._blocked_lock:
                parent._blocked_count -= len(sites)
                for name in sites:
                    parent._blocked_details.pop(name, None)
                    parent._blocked_sites.pop(name, None)
        if parent._abort.is_set():
            # Keep the park sites for the deadlock report.
            with parent._blocked_lock:
                for name, site in sites.items():
                    parent._blocked_details[name] = site[0]
                    parent._blocked_sites[name] = site
            raise _Aborted
        return True
