"""Legacy stream sources."""

from __future__ import annotations

from typing import Any, Iterable

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE
from ..base import LegacySamPrimitive


class LegacyRootSource(LegacySamPrimitive):
    """Emits [0, D], one token per cycle."""

    def __init__(self, out: CycleChannel, name: str | None = None, ii: int = 1):
        super().__init__(name=name, ii=ii)
        self.out = out
        self.emitted = 0

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled() or not self.out.can_push():
            return
        if self.emitted == 0:
            self.out.push(0)
            self.charge()
            self.emitted = 1
        elif self.emitted == 1:
            self.out.push(DONE)
            self.emitted = 2
            self.finished = True


class LegacyStreamSource(LegacySamPrimitive):
    """Emits an explicit token list, one token per cycle."""

    def __init__(self, out: CycleChannel, tokens: Iterable[Any], name: str | None = None, ii: int = 1):
        super().__init__(name=name, ii=ii)
        self.out = out
        self.tokens = list(tokens)
        self.pos = 0

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.pos >= len(self.tokens):
            self.finished = True
            return
        if self.stalled():
            return
        if self.out.can_push():
            self.out.push(self.tokens[self.pos])
            self.charge()
            self.pos += 1
            if self.pos >= len(self.tokens):
                self.finished = True
