"""Tests for *real* channels (Section IX's time-decoupled links)."""

import pytest

from repro import (
    AdvanceTo,
    Context,
    IncrCycles,
    ProgramBuilder,
    make_channel,
)
from repro.contexts import Collector


class FastForwardProducer(Context):
    """Runs far ahead in simulated time, handing records downstream."""

    def __init__(self, out, records):
        super().__init__(name="ahead")
        self.out = out
        self.records = records
        self.register(out)

    def run(self):
        for record in self.records:
            yield IncrCycles(1000)  # sprint ahead
            yield self.out.enqueue((self.time.now(), record))


class LaggingConsumer(Context):
    """Consumes records without being dragged to the producer's time."""

    def __init__(self, inp):
        super().__init__(name="behind")
        self.inp = inp
        self.observed_times = []
        self.register(inp)

    def run(self):
        for _ in range(3):
            stamp, record = yield self.inp.dequeue()
            self.observed_times.append(self.time.now())
            yield IncrCycles(1)


class TestRealChannels:
    def test_dequeue_does_not_advance_receiver_clock(self):
        builder = ProgramBuilder()
        snd, rcv = builder.real(name="records")
        builder.add(FastForwardProducer(snd, ["a", "b", "c"]))
        consumer = builder.add(LaggingConsumer(rcv))
        builder.build().run()
        # The producer reached t=3000; the consumer's clock stayed local.
        assert consumer.observed_times == [0, 1, 2]

    def test_payload_carried_timestamps_survive(self):
        builder = ProgramBuilder()
        snd, rcv = builder.real(name="records")
        builder.add(FastForwardProducer(snd, ["x", "y", "z"]))

        class Reenactor(Context):
            def __init__(self, inp):
                super().__init__(name="reenactor")
                self.inp = inp
                self.times = []
                self.register(inp)

            def run(self):
                for _ in range(3):
                    stamp, _record = yield self.inp.dequeue()
                    yield AdvanceTo(stamp)  # time travels as data
                    self.times.append(self.time.now())

        reenactor = builder.add(Reenactor(rcv))
        builder.build().run()
        assert reenactor.times == [1000, 2000, 3000]

    def test_real_channels_cannot_be_bounded(self):
        with pytest.raises(ValueError, match="unbounded"):
            make_channel(capacity=4, real=True)

    def test_threaded_matches_sequential(self):
        def build():
            builder = ProgramBuilder()
            snd, rcv = builder.real(name="records")
            builder.add(FastForwardProducer(snd, [1, 2, 3]))
            consumer = builder.add(LaggingConsumer(rcv))
            return builder.build(), consumer

        program_a, consumer_a = build()
        program_a.run(executor="sequential")
        program_b, consumer_b = build()
        program_b.run(executor="threaded")
        assert consumer_a.observed_times == consumer_b.observed_times
