"""Executor interface and run summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..time import Time

if TYPE_CHECKING:  # pragma: no cover
    from ..program import Program


@dataclass
class RunSummary:
    """The result of executing a program.

    ``elapsed_cycles`` is the simulated makespan: the largest finite local
    time any context reached before finishing.  Both executors must report
    identical ``elapsed_cycles`` and ``context_times`` for the same program
    (the paper's exactness/determinism property).

    ``metrics`` is the :meth:`repro.obs.MetricsRegistry.snapshot` of the
    run when an :class:`~repro.obs.Observability` with metrics enabled
    was attached, else ``None``.  Simulated-state metrics in it (channel
    traffic, peak occupancy, finish times, per-context ops) are
    executor-independent; scheduling metrics (parks, spin reads, wall
    clock) describe the real run and naturally vary.
    """

    elapsed_cycles: Time
    real_seconds: float
    context_times: dict[str, Time] = field(default_factory=dict)
    executor: str = ""
    policy: str = ""
    context_switches: int = 0
    wakeups: int = 0
    preemptions: int = 0
    ops_executed: int = 0
    metrics: Optional[dict[str, Any]] = None

    def __str__(self) -> str:
        return (
            f"RunSummary(cycles={self.elapsed_cycles}, "
            f"real={self.real_seconds:.4f}s, executor={self.executor}, "
            f"switches={self.context_switches}, ops={self.ops_executed})"
        )


class Executor:
    """Common interface: ``execute(program) -> RunSummary``."""

    name = "abstract"

    def execute(self, program: "Program") -> RunSummary:
        raise NotImplementedError

    @staticmethod
    def _makespan(program: "Program") -> Time:
        """Largest finite finish time across contexts (0 if none)."""
        times = [
            ctx.finish_time
            for ctx in program.contexts
            if ctx.finish_time is not None
        ]
        return max(times, default=0)
