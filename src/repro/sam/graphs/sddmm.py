"""SDDMM: sampled dense-dense matrix multiplication X = S .* (A @ B^T).

``S`` is sparse ('cc'); ``A`` (I x K) and ``B`` (J x K) are dense.  The
graph iterates S's nonzeros (i, j), gathers row i of A and row j of B
through dense fiber lookups, computes the dot product over k with a
multiply + reduce, and scales by S's value:

* the sampling structure never changes, so the output reuses S's
  coordinate streams directly;
* :class:`~repro.sam.primitives.crd.CrdHold` carries the row index i
  alongside the per-element streams so A's dense row lookup has a
  reference per (i, j) element.
"""

from __future__ import annotations

import numpy as np

from ..primitives import (
    ArrayVals,
    BinaryAlu,
    CrdHold,
    FiberLookup,
    FiberWrite,
    Reduce,
    RootSource,
    ValsWrite,
)
from ..primitives.alu import mul
from ..tensor import CsfTensor, DenseLevel
from .common import KernelGraph, SamGraphBuilder


def build_sddmm(
    s: CsfTensor,
    a_dense: np.ndarray,
    b_dense: np.ndarray,
    depth: int | None = None,
    latency: int = 1,
    timing=None,
) -> KernelGraph:
    """Build X = S .* (A @ B^T); see module docstring for conventions."""
    if a_dense.shape[0] != s.shape[0] or b_dense.shape[0] != s.shape[1]:
        raise ValueError(
            f"shape mismatch: S {s.shape}, A {a_dense.shape}, B {b_dense.shape}"
        )
    if a_dense.shape[1] != b_dense.shape[1]:
        raise ValueError("A and B must share the k dimension")
    k_size = a_dense.shape[1]
    g = SamGraphBuilder(depth=depth, latency=latency, timing=timing)
    t = g.timing

    # --- scan S's structure ---------------------------------------------
    root_s, root_r = g.ch("rootS")
    g.add(RootSource(root_s, timing=t, name="rootS"))
    csi_s, csi_r = g.ch("cSi")
    rsi_s, rsi_r = g.ch("rSi")
    g.add(FiberLookup(s.level(0), root_r, csi_s, rsi_s, timing=t, name="scanSi"))
    csj_s, csj_r = g.ch("cSj")
    rsj_s, rsj_r = g.ch("rSj")
    g.add(FiberLookup(s.level(1), rsi_r, csj_s, rsj_s, timing=t, name="scanSj"))

    csi_out, csi_hold = g.fanout(csi_r, 2, "cSi")
    csj_out, csj_hold, csj_bref = g.fanout(csj_r, 3, "cSj")

    # S's values (the sampling scale).
    vs_s, vs_r = g.ch("vS")
    g.add(ArrayVals(s.vals, rsj_r, vs_s, timing=t, name="arrayS"))

    # --- dense gathers ----------------------------------------------------
    # Row index i per (i, j) element -> reference into A's dense row level.
    hi_s, hi_r = g.ch("held_i")
    g.add(CrdHold(csi_hold, csj_hold, hi_s, timing=t, name="holdI"))

    cak_s, cak_r = g.ch("cAk")
    rak_s, rak_r = g.ch("rAk")
    g.add(
        FiberLookup(DenseLevel(k_size), hi_r, cak_s, rak_s, timing=t, name="scanAk")
    )
    cbk_s, cbk_r = g.ch("cBk")
    rbk_s, rbk_r = g.ch("rBk")
    g.add(
        FiberLookup(DenseLevel(k_size), csj_bref, cbk_s, rbk_s, timing=t, name="scanBk")
    )

    from ..primitives.write import StreamSink

    g.add(StreamSink(cak_r, timing=t, name="sink_cAk"))
    g.add(StreamSink(cbk_r, timing=t, name="sink_cBk"))

    va_s, va_r = g.ch("vA")
    vb_s, vb_r = g.ch("vB")
    g.add(
        ArrayVals(np.asarray(a_dense).reshape(-1), rak_r, va_s, timing=t, name="arrayA")
    )
    g.add(
        ArrayVals(np.asarray(b_dense).reshape(-1), rbk_r, vb_s, timing=t, name="arrayB")
    )

    # --- dot product and sampling scale ----------------------------------
    vm_s, vm_r = g.ch("vMulK")
    g.add(BinaryAlu(va_r, vb_r, vm_s, mul, timing=t, name="mulK"))
    vd_s, vd_r = g.ch("vDot")
    g.add(
        Reduce(vm_r, vd_s, suppress_uninhabited=True, timing=t, name="reduceK")
    )
    vx_s, vx_r = g.ch("vX")
    g.add(BinaryAlu(vd_r, vs_r, vx_s, mul, timing=t, name="sampleMul"))

    # --- output -----------------------------------------------------------
    fw_i = g.add(FiberWrite(csi_out, timing=t, name="write_i"))
    fw_j = g.add(FiberWrite(csj_out, timing=t, name="write_j"))
    vw = g.add(ValsWrite(vx_r, timing=t, name="write_vals"))

    return KernelGraph(g.build(), [fw_i, fw_j], vw, s.shape)
