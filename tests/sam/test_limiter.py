"""Tests for the runtime sparsity guarantee (the paper's future work).

Section VIII-A1: random sparsity makes buffer provisioning stochastic —
a rare over-populated fiber deadlocks a channel sized for the expected
population.  The NonzeroLimiter caps fibers at a hard bound, converting
the stochastic deadlock into a bounded-loss approximation.
"""

import numpy as np
import pytest

from repro.core import DeadlockError
from repro.sam import CsfTensor
from repro.sam.graphs import build_sparse_mha
from repro.sam.primitives import NonzeroLimiter
from repro.sam.reference import sparse_mha as ref_mha
from repro.sam.testing import run_block
from repro.sam.token import DONE, Stop

S0, S1 = Stop(0), Stop(1)


class TestNonzeroLimiterUnit:
    def run_limiter(self, crd, val, k, policy="tail"):
        holder = {}

        def make(rcv, snd):
            block = NonzeroLimiter(
                rcv[0], rcv[1], snd[0], snd[1], max_nonzeros=k, policy=policy
            )
            holder["block"] = block
            return block

        out = run_block(make, [crd, val], 2)
        return out, holder["block"]

    def test_under_limit_passes_through(self):
        (crd, val), block = self.run_limiter(
            [1, 3, S0, DONE], [0.5, 0.25, S0, DONE], k=4
        )
        assert crd == [1, 3, S0, DONE]
        assert val == [0.5, 0.25, S0, DONE]
        assert block.dropped == 0

    def test_tail_policy_keeps_first_k(self):
        (crd, val), block = self.run_limiter(
            [0, 1, 2, 3, S0, DONE], [1.0, 2.0, 3.0, 4.0, S0, DONE], k=2
        )
        assert crd == [0, 1, S0, DONE]
        assert val == [1.0, 2.0, S0, DONE]
        assert block.dropped == 2

    def test_smallest_policy_keeps_largest_magnitudes(self):
        (crd, val), block = self.run_limiter(
            [0, 1, 2, 3, S0, DONE],
            [1.0, -9.0, 0.5, 4.0, S0, DONE],
            k=2,
            policy="smallest",
        )
        assert crd == [1, 3, S0, DONE]  # coordinate order preserved
        assert val == [-9.0, 4.0, S0, DONE]
        assert block.dropped == 2

    def test_counter_resets_per_fiber(self):
        (crd, _), block = self.run_limiter(
            [0, 1, 2, S0, 0, 1, 2, S1, DONE],
            [1.0, 1.0, 1.0, S0, 1.0, 1.0, 1.0, S1, DONE],
            k=2,
        )
        assert crd == [0, 1, S0, 0, 1, S1, DONE]
        assert block.dropped == 2

    def test_parameter_validation(self):
        from repro.core import make_channel

        s1, r1 = make_channel()
        s2, r2 = make_channel()
        s3, _ = make_channel()
        s4, _ = make_channel()
        with pytest.raises(ValueError):
            NonzeroLimiter(r1, r2, s3, s4, max_nonzeros=0)
        with pytest.raises(ValueError):
            NonzeroLimiter(r1, r2, s3, s4, max_nonzeros=2, policy="bogus")


def capped_mask(mask: np.ndarray, k: int) -> np.ndarray:
    """Reference for the tail policy: keep the first k nonzeros per row."""
    capped = np.zeros_like(mask)
    for h in range(mask.shape[0]):
        for i in range(mask.shape[1]):
            cols = np.flatnonzero(mask[h, i])[:k]
            capped[h, i, cols] = mask[h, i, cols]
    return capped


class TestLimiterInMha:
    def inputs(self, seed=0, heads=2, n=12, d=4, density=0.5):
        rng = np.random.default_rng(seed)
        mask = (rng.random((heads, n, n)) < density).astype(float)
        for h in range(heads):
            np.fill_diagonal(mask[h], 1.0)
        q = rng.standard_normal((heads, n, d))
        k = rng.standard_normal((heads, n, d))
        v = rng.standard_normal((heads, n, d))
        return mask, q, k, v

    def test_limiter_prevents_overpopulated_row_deadlock(self):
        """The headline: a softmax buffer sized for the cap is safe even
        when raw rows exceed it, where the uncapped graph deadlocks."""
        mask, q, k, v = self.inputs(n=24, density=0.7)
        cap = 6
        # Rows genuinely exceed the buffer the cap makes sufficient.
        assert (mask.sum(axis=-1) > cap + 4).any()

        unguarded = build_sparse_mha(
            CsfTensor.from_dense(mask, "dcc"), q, k, v,
            depth=8, softmax_depth=cap + 4,
        )
        with pytest.raises(DeadlockError):
            unguarded.run()

        guarded = build_sparse_mha(
            CsfTensor.from_dense(mask, "dcc"), q, k, v,
            depth=8, softmax_depth=cap + 4, max_row_nonzeros=cap,
        )
        guarded.run()
        expected = ref_mha(q, k, v, capped_mask(mask, cap))
        assert np.allclose(guarded.result_dense(), expected)

    def test_generous_cap_changes_nothing(self):
        mask, q, k, v = self.inputs(density=0.3)
        kernel = build_sparse_mha(
            CsfTensor.from_dense(mask, "dcc"), q, k, v, max_row_nonzeros=100
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), ref_mha(q, k, v, mask))

    def test_stochastic_deadlock_seed_sweep(self):
        """The paper's stochasticity argument, measured: across seeds, an
        expected-population buffer deadlocks on *some* masks; the capped
        graph completes on every one of them."""
        n, density = 16, 0.4
        buffer_depth = int(n * density) + 2  # sized for the expectation
        deadlocks = 0
        for seed in range(8):
            mask, q, k, v = self.inputs(seed=seed, n=n, density=density)
            raw = build_sparse_mha(
                CsfTensor.from_dense(mask, "dcc"), q, k, v,
                depth=8, softmax_depth=buffer_depth,
            )
            try:
                raw.run()
            except DeadlockError:
                deadlocks += 1
            guarded = build_sparse_mha(
                CsfTensor.from_dense(mask, "dcc"), q, k, v,
                depth=8,
                softmax_depth=buffer_depth,
                max_row_nonzeros=buffer_depth - 2,
            )
            guarded.run()  # must never deadlock
        assert deadlocks > 0  # the stochastic hazard is real
