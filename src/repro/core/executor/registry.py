"""Executor registry: name → class, with lazy imports and ``"auto"``.

``Program.run`` historically imported every executor module just to
string-match a name — paying the full import cost (shared-memory,
threading, partitioning machinery) even for a sequential run, and even to
raise "unknown executor".  The registry fixes both:

* builtin executors are *declared* here as ``name -> (module, attr)``
  pairs and imported only when resolved, so an unknown name raises a
  :class:`ValueError` listing every registered name without importing
  anything;
* third-party executors join via the :func:`register_executor` class
  decorator (optionally with an ``available`` predicate consulted by
  ``"auto"``);
* ``"auto"`` picks the best runtime the host can actually use, in the
  order free-threaded > process > threaded > sequential.

The availability predicates are deliberately import-free: GIL state via
``sys._is_gil_enabled`` (absent before CPython 3.13 → GIL assumed on),
fork via ``multiprocessing.get_all_start_methods()``, and the CPU budget
via ``os.sched_getaffinity``.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import sys
from typing import Callable, Optional

#: Builtin executors, resolvable without importing their modules.
_BUILTIN: dict[str, tuple[str, str]] = {
    "sequential": (".sequential", "SequentialExecutor"),
    "threaded": (".threaded", "ThreadedExecutor"),
    "process": (".partitioned", "ProcessExecutor"),
    "free-threaded": (".freethreaded", "FreeThreadedExecutor"),
}

#: Classes registered via :func:`register_executor` (builtins self-register
#: on import; the lazy table above makes that import unnecessary for
#: resolution).
_REGISTRY: dict[str, type] = {}

#: Per-name availability predicates consulted by ``"auto"``.
_AVAILABILITY: dict[str, Callable[[], bool]] = {}

#: Preference order for ``executor="auto"``.
AUTO_ORDER = ("free-threaded", "process", "threaded", "sequential")


def gil_disabled() -> bool:
    """True only on a free-threaded CPython build running with the GIL
    actually off (``python3.13t``, no ``PYTHON_GIL=1`` re-enabling)."""
    probe = getattr(sys, "_is_gil_enabled", None)
    return probe is not None and probe() is False


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _cpu_budget() -> int:
    # ``sched_getaffinity`` is absent off-Linux (AttributeError) and can
    # fail with OSError in constrained sandboxes/containers where the
    # affinity syscall (or /proc) is masked.  Registry resolution must
    # degrade, never raise: fall back to the flat CPU count, then to 1.
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError, ValueError):
        pass
    try:
        return os.cpu_count() or 1
    except OSError:  # pragma: no cover - /proc unavailable
        return 1


def _process_available() -> bool:
    # One CPU makes process parallelism pure overhead; fork is required
    # because context generators cannot be pickled.
    return _fork_available() and _cpu_budget() >= 2


_AVAILABILITY.update(
    {
        "free-threaded": gil_disabled,
        # Under the GIL, threads add synchronization cost with no
        # parallelism — "auto" prefers process or sequential instead.
        "threaded": gil_disabled,
        "process": _process_available,
        "sequential": lambda: True,
    }
)


def register_executor(
    name: str,
    *,
    available: Optional[Callable[[], bool]] = None,
) -> Callable[[type], type]:
    """Class decorator: make ``cls`` resolvable as ``Program.run(name)``.

    ``available`` (optional, import-free) tells ``"auto"`` whether this
    runtime can be used on the current host; without it a registered
    executor is only selected by explicit name.
    """

    def decorate(cls: type) -> type:
        _REGISTRY[name] = cls
        if available is not None:
            _AVAILABILITY[name] = available
        return cls

    return decorate


def registered_names() -> list[str]:
    """Every resolvable executor name (no imports performed)."""
    return sorted(set(_BUILTIN) | set(_REGISTRY))


def executor_available(name: str) -> bool:
    """Whether ``"auto"`` may pick ``name`` on this host.

    A predicate that *raises* (host probing is inherently platform-
    dependent) counts as unavailable: ``"auto"`` resolution must always
    land on some executor rather than surface a probe failure.
    """
    predicate = _AVAILABILITY.get(name)
    if predicate is None:
        return False
    try:
        return bool(predicate())
    except Exception:
        return False


def _resolve_auto() -> type:
    for name in AUTO_ORDER:
        if name in (_REGISTRY.keys() | _BUILTIN.keys()) and executor_available(name):
            return resolve_executor(name)
    return resolve_executor("sequential")  # pragma: no cover - unreachable


def resolve_executor(spec) -> type:
    """Resolve ``spec`` (a name, ``"auto"``, or an Executor class) to an
    executor class, importing at most the winning module."""
    if isinstance(spec, type):
        from .base import Executor

        if issubclass(spec, Executor):
            return spec
        raise TypeError(
            f"executor class {spec.__name__} does not subclass Executor"
        )
    if spec == "auto":
        return _resolve_auto()
    cls = _REGISTRY.get(spec)
    if cls is not None:
        return cls
    entry = _BUILTIN.get(spec)
    if entry is not None:
        module_name, attr = entry
        module = importlib.import_module(module_name, __package__)
        return getattr(module, attr)
    raise ValueError(
        f"unknown executor {spec!r}; registered executors: "
        f"{', '.join(registered_names())} (or 'auto')"
    )
