"""Legacy writers and sinks."""

from __future__ import annotations

from typing import Any

import numpy as np

from ...cyclesim.channel import CycleChannel
from ...sam.tensor import CompressedLevel
from ...sam.token import DONE, Stop
from ..base import LegacySamPrimitive


class LegacyFiberWrite(LegacySamPrimitive):
    """Build seg/crd arrays from a coordinate stream, one token per cycle."""

    def __init__(self, in_crd: CycleChannel, name: str | None = None, ii: int = 1):
        super().__init__(name=name, ii=ii)
        self.in_crd = in_crd
        self.seg: list[int] = [0]
        self.crd: list[int] = []

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled() or not self.in_crd.can_pop():
            return
        token = self.in_crd.pop()
        self.charge()
        if token is DONE:
            self.finished = True
        elif isinstance(token, Stop):
            self.seg.append(len(self.crd))
        else:
            self.crd.append(token)

    def to_level(self) -> CompressedLevel:
        return CompressedLevel(self.seg, self.crd)


class LegacyValsWrite(LegacySamPrimitive):
    """Collect a value stream's payloads, one token per cycle."""

    def __init__(self, in_val: CycleChannel, name: str | None = None, ii: int = 1):
        super().__init__(name=name, ii=ii)
        self.in_val = in_val
        self.vals: list[float] = []

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled() or not self.in_val.can_pop():
            return
        token = self.in_val.pop()
        self.charge()
        if token is DONE:
            self.finished = True
        elif not isinstance(token, Stop):
            self.vals.append(token)

    def to_array(self) -> np.ndarray:
        return np.array(self.vals, dtype=np.float64)


class LegacyStreamSink(LegacySamPrimitive):
    """Record every token verbatim, one per cycle."""

    def __init__(self, inp: CycleChannel, name: str | None = None, ii: int = 1):
        super().__init__(name=name, ii=ii)
        self.inp = inp
        self.tokens: list[Any] = []

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled() or not self.inp.can_pop():
            return
        token = self.inp.pop()
        self.charge()
        self.tokens.append(token)
        if token is DONE:
            self.finished = True
