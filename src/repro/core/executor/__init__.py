"""Execution runtimes for DAM programs.

Four executors share identical simulated semantics:

* :class:`SequentialExecutor` — deterministic cooperative scheduler,
  single-threaded, with pluggable scheduling policies (Table I study).
* :class:`ThreadedExecutor` — one OS thread per context, SVA/SVP-style
  pairwise synchronization (the paper's runtime).
* :class:`FreeThreadedExecutor` — the threaded runtime with the GIL off
  (CPython 3.13 free-threaded builds); falls back to the process
  executor on GIL builds.
* :class:`ProcessExecutor` — graph partitions across forked worker
  processes, cut channels bridged by shared-memory shuttles and
  rebalanced by work stealing; the route around the GIL to the paper's
  multi-core wall-clock speedups.

Selection goes through the registry (:func:`resolve_executor`,
``Program.run(executor="auto")``); every name in this package is imported
lazily (PEP 562), so resolving one executor never pays for the others.
"""

from importlib import import_module

_LAZY = {
    "Executor": ".base",
    "RunSummary": ".base",
    "RunConfig": ".config",
    "register_executor": ".registry",
    "registered_names": ".registry",
    "resolve_executor": ".registry",
    "executor_available": ".registry",
    "SchedulingPolicy": ".policies",
    "FifoPolicy": ".policies",
    "FairPolicy": ".policies",
    "make_policy": ".policies",
    "SequentialExecutor": ".sequential",
    "ThreadedExecutor": ".threaded",
    "FreeThreadedExecutor": ".freethreaded",
    "ProcessExecutor": ".partitioned",
    "PartitionPlan": ".partition",
    "ClusterSpec": ".partition",
    "channel_weights": ".partition",
    "pins_from_placement": ".partition",
    "plan_partition": ".partition",
    "plan_clusters": ".partition",
    "plan_affinity": ".affinity",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module_name, __name__), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
