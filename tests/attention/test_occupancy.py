"""Channel-occupancy profiling: the O(N) vs O(1) local-memory evidence.

Section VII argues the standard streaming attention's row buffer holds a
whole score row (O(N) local memory) while the sequence-length-agnostic
design needs only constant buffering.  Channel profiling measures peak
occupancy *in simulated time*, giving that claim directly.
"""

import numpy as np

from repro.attention import build_seq_agnostic_attention, build_standard_attention
from repro.core import peak_simulated_occupancy


def inputs(n, d=4, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n, d)) * 0.4,
        rng.standard_normal((n, d)) * 0.4,
        rng.standard_normal((n, d)),
    )


def profiled_peaks(program):
    for channel in program.channels:
        channel.enable_profiling()
    program.run()
    return {
        channel.name: peak_simulated_occupancy(channel.profile_log)
        for channel in program.channels
    }


class TestSimulatedOccupancy:
    def test_standard_row_buffer_holds_a_row(self):
        """Peak simulated occupancy of channel C grows linearly with N."""
        peaks = {}
        for n in [16, 32]:
            q, k, v = inputs(n)
            pipeline = build_standard_attention(q, k, v)
            peaks[n] = profiled_peaks(pipeline.program)["C_row_buffer"]
        assert peaks[16] >= 16
        assert peaks[32] >= 32
        # O(N): doubling the sequence roughly doubles the buffered row.
        assert 1.5 < peaks[32] / peaks[16] < 2.5

    def test_standard_other_channels_stay_constant(self):
        for n in [16, 32]:
            q, k, v = inputs(n)
            pipeline = build_standard_attention(q, k, v)
            peaks = profiled_peaks(pipeline.program)
            for name, peak in peaks.items():
                if name != "C_row_buffer":
                    assert peak <= 8, (name, peak)

    def test_seq_agnostic_all_channels_constant(self):
        """Fig. 4b: no channel's occupancy grows with sequence length."""
        for n in [16, 32, 64]:
            q, k, v = inputs(n)
            pipeline = build_seq_agnostic_attention(q, k, v, depth=None)
            peaks = profiled_peaks(pipeline.program)
            assert max(peaks.values()) <= 8, (n, peaks)
