"""Executor registry + RunConfig: resolution, "auto", laziness, the
typed-config portability contract, and the deprecation shim.

The registry's whole point is that ``Program.run`` can name a runtime
without importing every runtime, so several tests here assert on
``sys.modules`` from a clean subprocess.
"""

import dataclasses
import subprocess
import sys
import textwrap

import pytest

from repro.contexts import Collector, RampSource, UnaryFunction
from repro.core import ProgramBuilder, RunConfig
from repro.core.executor import (
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
)
from repro.core.executor import registry as registry_mod
from repro.core.executor.registry import (
    AUTO_ORDER,
    executor_available,
    register_executor,
    registered_names,
    resolve_executor,
)


def pipeline(n=10, capacity=3):
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(capacity)
    s2, r2 = builder.bounded(capacity)
    builder.add(RampSource(s1, n))
    builder.add(UnaryFunction(r1, s2, lambda x: x + 1))
    collector = builder.add(Collector(r2))
    return builder.build(), collector


class TestResolution:
    def test_builtin_names_resolve(self):
        assert resolve_executor("sequential") is SequentialExecutor
        assert resolve_executor("threaded") is ThreadedExecutor
        assert resolve_executor("process") is ProcessExecutor

    def test_registered_names_cover_builtins(self):
        names = registered_names()
        for name in ("sequential", "threaded", "process", "free-threaded"):
            assert name in names

    def test_executor_class_passes_through(self):
        assert resolve_executor(SequentialExecutor) is SequentialExecutor

    def test_non_executor_class_rejected(self):
        with pytest.raises(TypeError, match="does not subclass Executor"):
            resolve_executor(dict)

    def test_unknown_name_lists_registered_names(self):
        with pytest.raises(ValueError) as err:
            resolve_executor("gpu")
        message = str(err.value)
        assert "unknown executor 'gpu'" in message
        for name in registered_names():
            assert name in message
        assert "'auto'" in message

    def test_auto_matches_host_predicates(self):
        expected = "sequential"
        for name in AUTO_ORDER:
            if executor_available(name):
                expected = name
                break
        assert resolve_executor("auto") is resolve_executor(expected)

    def test_sequential_always_available(self):
        assert executor_available("sequential")

    def test_unregistered_name_not_available(self):
        assert not executor_available("gpu")


class TestLaziness:
    """Resolution must not import executor modules it does not return."""

    def _run_probe(self, body):
        script = textwrap.dedent(body)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_unknown_name_error_imports_no_executor_module(self):
        out = self._run_probe(
            """
            import sys
            from repro.core.executor.registry import resolve_executor
            try:
                resolve_executor("nope")
            except ValueError as err:
                assert "registered executors" in str(err)
            else:
                raise AssertionError("expected ValueError")
            heavy = [
                m for m in sys.modules
                if m.endswith((".partitioned", ".threaded", ".freethreaded",
                               ".sequential"))
            ]
            print(sorted(heavy))
            """
        )
        assert out.strip() == "[]"

    def test_resolving_one_name_imports_only_that_module(self):
        out = self._run_probe(
            """
            import sys
            from repro.core.executor.registry import resolve_executor
            resolve_executor("threaded")
            heavy = [
                m.rsplit(".", 1)[-1] for m in sys.modules
                if m.endswith((".partitioned", ".freethreaded"))
            ]
            print(sorted(heavy))
            """
        )
        assert out.strip() == "[]"


class TestCustomRegistration:
    def test_register_and_resolve_custom_executor(self):
        @register_executor("instrumented-sequential")
        class Instrumented(SequentialExecutor):
            pass

        try:
            assert resolve_executor("instrumented-sequential") is Instrumented
            assert "instrumented-sequential" in registered_names()
            # No availability predicate: explicit-name only, never "auto".
            assert not executor_available("instrumented-sequential")

            program, collector = pipeline()
            program.run(executor="instrumented-sequential")
            assert collector.values == [i + 1 for i in range(10)]
        finally:
            registry_mod._REGISTRY.pop("instrumented-sequential", None)

    def test_available_predicate_registered(self):
        @register_executor("always-on", available=lambda: True)
        class AlwaysOn(SequentialExecutor):
            pass

        try:
            assert executor_available("always-on")
        finally:
            registry_mod._REGISTRY.pop("always-on", None)
            registry_mod._AVAILABILITY.pop("always-on", None)


class TestRunConfig:
    def test_frozen(self):
        config = RunConfig(workers=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.workers = 4

    def test_none_fields_omitted(self):
        assert RunConfig().kwargs_for(SequentialExecutor) == {}
        assert RunConfig().kwargs_for(ProcessExecutor) == {}

    def test_fields_filtered_by_signature(self):
        config = RunConfig(workers=3, fast_path=False, steal=False)
        # The sequential constructor declares fast_path but neither
        # workers nor steal; the process constructor is the reverse.
        assert config.kwargs_for(SequentialExecutor) == {"fast_path": False}
        assert config.kwargs_for(ProcessExecutor) == {
            "workers": 3,
            "steal": False,
        }

    def test_extra_always_passed_through(self):
        config = RunConfig(extra={"bogus_knob": 1})
        assert config.kwargs_for(SequentialExecutor) == {"bogus_knob": 1}
        with pytest.raises(TypeError):
            SequentialExecutor.from_config(config)

    def test_replace_known_field(self):
        config = RunConfig(workers=2).replace(workers=5)
        assert config.workers == 5
        assert config.extra == {}

    def test_replace_unknown_key_lands_in_extra(self):
        config = RunConfig().replace(mystery=7)
        assert config.extra == {"mystery": 7}

    def test_from_config(self):
        executor = ProcessExecutor.from_config(RunConfig(workers=2, steal=False))
        assert executor.workers == 2
        assert executor.steal is False

    def test_from_config_overrides(self):
        executor = ProcessExecutor.from_config(RunConfig(workers=2), workers=4)
        assert executor.workers == 4

    def test_one_config_portable_across_executors(self):
        config = RunConfig(workers=2)
        program, collector = pipeline()
        summary = program.run(executor="sequential", config=config)
        values = list(collector.values)

        program2, collector2 = pipeline()
        summary2 = program2.run(executor="process", config=config)
        assert collector2.values == values
        assert summary2.elapsed_cycles == summary.elapsed_cycles


class TestProgramRunApi:
    def test_legacy_kwargs_rejected(self):
        """The PR-4 bare-kwargs shim is gone: ``RunConfig`` is the one
        configuration path, so stray keywords fail loudly at the call."""
        program, _ = pipeline()
        with pytest.raises(TypeError, match="fast_path"):
            program.run(executor="sequential", fast_path=False)

    def test_config_form_runs(self):
        import warnings

        program, collector = pipeline()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            program.run(
                executor="sequential", config=RunConfig(fast_path=False)
            )
        assert collector.values == [i + 1 for i in range(10)]

    def test_executor_instance_passthrough(self):
        program, collector = pipeline()
        summary = program.run(executor=SequentialExecutor())
        assert summary.executor == "sequential"
        assert collector.values == [i + 1 for i in range(10)]

    def test_instance_plus_config_rejected(self):
        program, _ = pipeline()
        with pytest.raises(TypeError, match="executor instance"):
            program.run(executor=SequentialExecutor(), config=RunConfig())
        with pytest.raises(TypeError, match="workers"):
            program.run(executor=SequentialExecutor(), workers=2)

    def test_auto_runs_and_reports_real_executor(self):
        program, collector = pipeline()
        summary = program.run(executor="auto")
        assert collector.values == [i + 1 for i in range(10)]
        assert summary.executor in (
            "sequential",
            "threaded",
            "process",
            "free-threaded",
            "free-threaded(process)",
            "free-threaded(threaded)",
        )
