"""Legacy MMAdd: X = B + C on the cycle-based simulator."""

from __future__ import annotations

from ...sam.tensor import CsfTensor
from ..primitives import (
    LegacyArrayVals,
    LegacyBinaryAlu,
    LegacyFiberLookup,
    LegacyFiberWrite,
    LegacyRootSource,
    LegacyUnion,
    LegacyValsWrite,
)
from .common import DEFAULT_LEGACY_DEPTH, LegacyGraphBuilder, LegacyKernelGraph


def build_legacy_mmadd(
    b: CsfTensor,
    c: CsfTensor,
    depth: int | None = DEFAULT_LEGACY_DEPTH,
    ii: int = 1,
) -> LegacyKernelGraph:
    """The cycle-based mirror of :func:`repro.sam.graphs.build_mmadd`."""
    if b.shape != c.shape:
        raise ValueError(f"shape mismatch: {b.shape} vs {c.shape}")
    g = LegacyGraphBuilder(depth=depth)

    rootb = g.ch("rootB")
    rootc = g.ch("rootC")
    g.add(LegacyRootSource(rootb, name="rootB", ii=ii))
    g.add(LegacyRootSource(rootc, name="rootC", ii=ii))

    cbi, rbi = g.ch("cBi"), g.ch("rBi")
    cci, rci = g.ch("cCi"), g.ch("rCi")
    g.add(LegacyFiberLookup(b.level(0), rootb, cbi, rbi, name="scanBi", ii=ii))
    g.add(LegacyFiberLookup(c.level(0), rootc, cci, rci, name="scanCi", ii=ii))

    ci, rbu, rcu = g.ch("crd_i"), g.ch("rBi_u"), g.ch("rCi_u")
    g.add(LegacyUnion(cbi, rbi, cci, rci, ci, rbu, rcu, name="unionI", ii=ii))

    cbj, rbj = g.ch("cBj"), g.ch("rBj")
    ccj, rcj = g.ch("cCj"), g.ch("rCj")
    g.add(LegacyFiberLookup(b.level(1), rbu, cbj, rbj, name="scanBj", ii=ii))
    g.add(LegacyFiberLookup(c.level(1), rcu, ccj, rcj, name="scanCj", ii=ii))

    cj, rbv, rcv = g.ch("crd_j"), g.ch("rBj_u"), g.ch("rCj_u")
    g.add(LegacyUnion(cbj, rbj, ccj, rcj, cj, rbv, rcv, name="unionJ", ii=ii))

    vb, vc, vx = g.ch("vB"), g.ch("vC"), g.ch("vX")
    g.add(LegacyArrayVals(b.vals, rbv, vb, name="arrayB", ii=ii))
    g.add(LegacyArrayVals(c.vals, rcv, vc, name="arrayC", ii=ii))
    g.add(LegacyBinaryAlu(vb, vc, vx, lambda x, y: x + y, name="addALU", ii=ii))

    fw_i = g.add(LegacyFiberWrite(ci, name="write_i", ii=ii))
    fw_j = g.add(LegacyFiberWrite(cj, name="write_j", ii=ii))
    vw = g.add(LegacyValsWrite(vx, name="write_vals", ii=ii))

    return LegacyKernelGraph(g.engine, [fw_i, fw_j], vw, b.shape)
