"""Debugging dataflow programs: deadlock reports and simulation traces.

Two facilities that make DAM programs debuggable:

1. **Deadlock reports** — when no context can make progress, the executor
   raises a DeadlockError naming every blocked context and the channel
   operation it is stuck on; the blocked set *is* the dependency cycle.
2. **Simulation traces** — a Tracer attached to the sequential executor
   records every completed operation (context, kind, channel, simulated
   time), answering "what happened before things went wrong?" and
   providing per-stream timelines for calibration.

Run:  python examples/tracing_and_debugging.py
"""

import numpy as np

from repro.core import DeadlockError, SequentialExecutor, Tracer
from repro.attention import build_standard_attention
from repro.sam import CsfTensor
from repro.sam.graphs import build_mmadd
from repro.sam.tensor import random_dense


def deadlock_demo():
    print("== deadlock reporting ==")
    rng = np.random.default_rng(0)
    n, d = 16, 4
    q = rng.standard_normal((n, d)) * 0.4
    k = rng.standard_normal((n, d)) * 0.4
    v = rng.standard_normal((n, d))
    # Undersize the softmax row buffer: the reduction needs the whole row.
    pipeline = build_standard_attention(q, k, v, buffer_depth=4)
    try:
        pipeline.run()
    except DeadlockError as error:
        print("  the executor names the cycle of blocked contexts:")
        for line in str(error).split(": ", 1)[1].split("; "):
            print(f"    {line}")


def tracing_demo():
    print()
    print("== simulation tracing ==")
    a = random_dense(4, 4, density=0.6, seed=1)
    b = random_dense(4, 4, density=0.6, seed=2)
    kernel = build_mmadd(
        CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
    )
    tracer = Tracer(capture_payloads=True)
    SequentialExecutor(tracer=tracer).execute(kernel.program)

    print(f"  {len(tracer)} operations recorded")
    print("  the output value stream's timeline (channel 'vX'):")
    for event in tracer.for_channel("vX"):
        if event.kind == "dequeue" and isinstance(event.payload, float):
            print(f"    t={event.time:>3}  {event.payload:.3f}")
    print("  ops per context:")
    names = sorted({event.context for event in tracer})
    for name in names:
        print(f"    {name:<12} {len(tracer.for_context(name))}")


if __name__ == "__main__":
    deadlock_demo()
    tracing_demo()
