"""ALU primitives: elementwise compute on value streams."""

from __future__ import annotations

import math
from typing import Callable

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class BinaryAlu(SamContext):
    """Combine two aligned value streams elementwise.

    The streams must share control structure (the joiner guarantees this
    for its two ref outputs); stops are checked for alignment and passed
    through.
    """

    checkpoint_attrs = ("_a", "_b")

    def __init__(
        self,
        in_val1: Receiver,
        in_val2: Receiver,
        out_val: Sender,
        fn: Callable[[float, float], float],
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val1 = in_val1
        self.in_val2 = in_val2
        self.out_val = out_val
        self.fn = fn
        self._a = UNSET
        self._b = UNSET
        self.register(in_val1, in_val2, out_val)

    def run(self):
        fn = self.fn
        # Pre-allocated ops: the steady state is one fused yield per token
        # pair (emit, tick, pull both inputs), with zero op allocations.
        deq1 = self.in_val1.dequeue()
        deq2 = self.in_val2.dequeue()
        enq = self.out_val.enqueue(None)
        step = FusedOps(enq, self.tick(), deq1, deq2)
        step_control = FusedOps(enq, self.tick_control(), deq1, deq2)
        if self._a is UNSET:
            res = yield FusedOps(deq1, deq2)
            self._a, self._b = res
        while True:
            a, b = self._a, self._b
            if a is DONE or b is DONE:
                assert a is DONE and b is DONE, (
                    f"{self.name}: value streams ended at different points"
                )
                enq.data = DONE
                yield enq
                return
            if a.__class__ is Stop or b.__class__ is Stop:
                assert a == b, f"{self.name}: misaligned tokens {a!r} vs {b!r}"
                enq.data = a
                res = yield step_control
                self._a, self._b = res[2], res[3]
            else:
                enq.data = fn(a, b)
                res = yield step
                self._a, self._b = res[2], res[3]


def mul(a: float, b: float) -> float:
    return a * b


def add(a: float, b: float) -> float:
    return a + b


class UnaryAlu(SamContext):
    """Apply ``fn`` to each payload; control tokens pass through.

    Used for the nonlinear units of the sparse-attention graphs (exp,
    scaling) — the "new blocks for ... non-linear operations" of
    Section VIII-A1.
    """

    checkpoint_attrs = ("_token",)

    def __init__(
        self,
        in_val: Receiver,
        out_val: Sender,
        fn: Callable[[float], float],
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.out_val = out_val
        self.fn = fn
        self._token = UNSET
        self.register(in_val, out_val)

    def run(self):
        fn = self.fn
        deq = self.in_val.dequeue()
        enq = self.out_val.enqueue(None)
        step = FusedOps(enq, self.tick(), deq)
        step_control = FusedOps(enq, self.tick_control(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                enq.data = DONE
                yield enq
                return
            if token.__class__ is Stop:
                enq.data = token
                self._token = (yield step_control)[2]
            else:
                enq.data = fn(token)
                self._token = (yield step)[2]


def exp(value: float) -> float:
    return math.exp(value)
