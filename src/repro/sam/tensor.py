"""Compressed-sparse-fiber (CSF) tensors: SAM's storage substrate.

A tensor is stored as a chain of *levels*, one per dimension, each either
``dense`` or ``compressed``:

* A **dense** level of size ``n`` implicitly contains every coordinate
  ``0..n-1`` of every fiber; a fiber reference ``r`` maps coordinate ``k``
  to child reference ``r * n + k``.
* A **compressed** level stores explicit fibers: segment array ``seg`` and
  coordinate array ``crd``; fiber ``r`` spans ``crd[seg[r]:seg[r+1]]`` and
  the child reference of position ``p`` is ``p`` itself.

The leaf positions index a values array.  This is the standard TACO/SAM
format hierarchy (CSR = (dense, compressed), CSC = CSR of the transpose,
CSF for higher-order tensors).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class Level:
    """One storage level; see module docstring for the two kinds."""

    kind = "abstract"

    def fiber(self, ref: int) -> tuple[list[int], list[int]]:
        """Return (coordinates, child references) of fiber ``ref``."""
        raise NotImplementedError

    def fiber_count(self) -> int:
        raise NotImplementedError


class DenseLevel(Level):
    """An implicit level: every fiber contains coordinates ``0..size-1``."""

    kind = "dense"

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("dense level size must be nonnegative")
        self.size = size

    def fiber(self, ref: int) -> tuple[list[int], list[int]]:
        base = ref * self.size
        coords = list(range(self.size))
        return coords, [base + k for k in coords]

    def __repr__(self) -> str:
        return f"DenseLevel(size={self.size})"


class CompressedLevel(Level):
    """An explicit level: ``seg``/``crd`` arrays in CSR style."""

    kind = "compressed"

    def __init__(self, seg: Sequence[int], crd: Sequence[int]):
        self.seg = list(seg)
        self.crd = list(crd)
        if not self.seg or self.seg[0] != 0:
            raise ValueError("seg must start with 0")
        if self.seg[-1] != len(self.crd):
            raise ValueError("seg must end at len(crd)")
        if any(b < a for a, b in zip(self.seg, self.seg[1:])):
            raise ValueError("seg must be nondecreasing")

    def fiber(self, ref: int) -> tuple[list[int], list[int]]:
        start, end = self.seg[ref], self.seg[ref + 1]
        return self.crd[start:end], list(range(start, end))

    def fiber_count(self) -> int:
        return len(self.seg) - 1

    def __repr__(self) -> str:
        return f"CompressedLevel(fibers={len(self.seg) - 1}, nnz={len(self.crd)})"


class CsfTensor:
    """A level chain plus a values array.

    ``formats`` is a string per dimension: ``"d"`` (dense) or ``"c"``
    (compressed), outermost first.  Construct via :meth:`from_dense`.
    """

    def __init__(self, levels: list[Level], vals: np.ndarray, shape: tuple[int, ...]):
        if len(levels) != len(shape):
            raise ValueError("one level per dimension required")
        self.levels = levels
        self.vals = np.asarray(vals, dtype=np.float64)
        self.shape = shape

    # ------------------------------------------------------------------

    @classmethod
    def from_dense(cls, array: np.ndarray, formats: str) -> "CsfTensor":
        """Compress a dense numpy array into the given per-level formats."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != len(formats):
            raise ValueError(
                f"formats {formats!r} has {len(formats)} levels for a "
                f"{array.ndim}-d array"
            )
        if any(f not in "dc" for f in formats):
            raise ValueError(f"formats must be 'd'/'c' characters, got {formats!r}")

        levels: list[Level] = []
        # Fibers at the current level, identified by their coordinate
        # prefixes; start with the single root fiber (empty prefix).
        prefixes: list[tuple[int, ...]] = [()]
        for axis, fmt in enumerate(formats):
            size = array.shape[axis]
            if fmt == "d":
                levels.append(DenseLevel(size))
                prefixes = [p + (k,) for p in prefixes for k in range(size)]
            else:
                seg = [0]
                crd: list[int] = []
                next_prefixes: list[tuple[int, ...]] = []
                for prefix in prefixes:
                    sub = array[prefix] if prefix else array
                    # A coordinate survives if its subtree has any nonzero.
                    for k in range(size):
                        slab = sub[k]
                        nonzero = (
                            slab != 0 if np.isscalar(slab) or slab.ndim == 0
                            else np.any(slab)
                        )
                        if nonzero:
                            crd.append(k)
                            next_prefixes.append(prefix + (k,))
                    seg.append(len(crd))
                levels.append(CompressedLevel(seg, crd))
                prefixes = next_prefixes
        vals = np.array([array[p] for p in prefixes], dtype=np.float64)
        return cls(levels, vals, array.shape)

    def to_dense(self) -> np.ndarray:
        """Decompress back to a dense numpy array."""
        out = np.zeros(self.shape, dtype=np.float64)
        self._fill(out, 0, 0, ())
        return out

    def _fill(self, out: np.ndarray, level: int, ref: int, prefix: tuple) -> None:
        if level == len(self.levels):
            out[prefix] = self.vals[ref]
            return
        coords, refs = self.levels[level].fiber(ref)
        for coord, child in zip(coords, refs):
            self._fill(out, level + 1, child, prefix + (coord,))

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals))

    def level(self, axis: int) -> Level:
        return self.levels[axis]

    def __repr__(self) -> str:
        fmt = "".join("d" if lv.kind == "dense" else "c" for lv in self.levels)
        return f"CsfTensor(shape={self.shape}, formats={fmt!r}, stored={len(self.vals)})"


def random_sparse_matrix(
    rows: int,
    cols: int,
    density: float,
    seed: int = 0,
    formats: str = "dc",
) -> CsfTensor:
    """A random matrix with uniformly random sparsity (the paper's datasets).

    Values are uniform in (0.1, 1.0] so no stored value is accidentally
    zero (which would make compressed nnz differ from logical nnz).
    """
    dense = random_dense(rows, cols, density=density, seed=seed)
    return CsfTensor.from_dense(dense, formats)


def random_sparse_tensor(
    shape: Iterable[int],
    density: float,
    seed: int = 0,
    formats: str | None = None,
) -> CsfTensor:
    """A random higher-order tensor with uniformly random sparsity."""
    shape = tuple(shape)
    dense = random_dense(*shape, density=density, seed=seed)
    if formats is None:
        formats = "d" + "c" * (len(shape) - 1)
    return CsfTensor.from_dense(dense, formats)


def random_dense(*shape: int, density: float = 1.0, seed: int = 0) -> np.ndarray:
    """The dense ground truth behind the random sparse generators."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.1, 1.0, size=shape)
    mask = rng.random(shape) < density
    return values * mask
