"""Program construction: wiring contexts and channels into a simulation.

:class:`ProgramBuilder` is the user-facing entry point::

    builder = ProgramBuilder()
    snd, rcv = builder.bounded(8, latency=2)
    builder.add(Producer(snd))
    builder.add(Consumer(rcv))
    program = builder.build()        # validates the graph
    summary = program.run()          # sequential executor by default

Validation enforces the paper's static-connection property: every channel
has exactly one sending context and one receiving context, and every added
context's handles point back at channels created by this builder (or
free-standing channels the caller made with :func:`make_channel`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from .channel import Channel, Receiver, Sender, make_channel
from .context import Context
from .errors import GraphConstructionError
from .time import Time, TimeCell

if TYPE_CHECKING:  # pragma: no cover
    from .executor.base import RunSummary

#: The default retry ladder for ``RunConfig(fallback=True)``: each entry is
#: strictly "safer" than the one before it (fewer moving parts, no shared
#: memory, finally no concurrency at all).  A failing executor retries on
#: the entries *after* its own position.
FALLBACK_LADDER = ("process", "threaded", "sequential")


class Program:
    """A validated, ready-to-run dataflow program."""

    def __init__(
        self,
        contexts: Sequence[Context],
        channels: Sequence[Channel],
        partition_pins: Optional[dict[int, int]] = None,
    ):
        self.contexts = list(contexts)
        self.channels = list(channels)
        #: Manual placement for the process executor: ``id(context)`` →
        #: worker index (see :meth:`ProgramBuilder.pin`).
        self.partition_pins: dict[int, int] = dict(partition_pins or {})

    def run(
        self,
        executor="sequential",
        *,
        config=None,
        obs=None,
    ) -> "RunSummary":
        """Execute the program and return a :class:`RunSummary`.

        ``executor`` selects the runtime by registered name —
        ``"sequential"`` (deterministic cooperative scheduler; default),
        ``"threaded"``, ``"free-threaded"``, ``"process"`` — or
        ``"auto"``, which picks the best runtime the host supports
        (free-threaded > process > threaded > sequential).  An
        :class:`~repro.core.executor.base.Executor` instance or subclass
        is also accepted.  Resolution goes through the registry
        (:mod:`repro.core.executor.registry`), so an unknown name raises
        a :class:`ValueError` listing the registered names without
        importing any executor module.

        ``config`` is a :class:`~repro.core.executor.config.RunConfig` —
        the one way to configure a run; each executor receives exactly
        the fields its constructor declares, which is what makes one
        config portable across runtimes (and across ``"auto"``'s
        choices).  ``obs`` attaches an :class:`~repro.obs.Observability`
        and is merged into the config.  ``RunConfig(tag=...)`` is
        stamped onto the returned summary (``summary.tag``) — and onto
        the partial summary of a :class:`RunTimeoutError` — so callers
        multiplexing many runs can attribute each one.
        """
        from .errors import RunTimeoutError
        from .executor.base import Executor
        from .executor.config import RunConfig
        from .executor.registry import resolve_executor

        if isinstance(executor, Executor):
            if config is not None:
                raise TypeError(
                    "run() got an executor instance and configuration; "
                    "construct the executor with its settings instead"
                )
            return executor.execute(self)

        if config is None:
            config = RunConfig()
        if obs is not None:
            config = config.replace(obs=obs)

        executor_cls = resolve_executor(executor)
        if not config.fallback:
            try:
                summary = executor_cls.from_config(config).execute(self)
            except RunTimeoutError as exc:
                if exc.summary is not None and config.tag is not None:
                    exc.summary.tag = config.tag
                raise
            if config.tag is not None:
                summary.tag = config.tag
            return summary
        return self._run_with_fallback(executor_cls, config)

    # ------------------------------------------------------------------
    # Fault tolerance: the retry ladder and program reset.
    # ------------------------------------------------------------------

    def _run_with_fallback(self, executor_cls, config) -> "RunSummary":
        """Execute with the ``RunConfig(fallback=...)`` retry ladder.

        Only *infrastructure* failures are retried — a
        :class:`~repro.core.errors.WorkerCrashError` (a worker process
        died) or :class:`~repro.core.errors.RunTimeoutError` (the
        ``deadline_s`` wall-clock budget expired).  Simulation outcomes
        (:class:`DeadlockError`, :class:`SimulationError`) are properties
        of the *program*, identical on every executor, so retrying them
        would only repeat the failure; they propagate immediately.

        Between attempts the program is :meth:`reset` and the attached
        observability is wiped (``trace.clear()``, stale stall/crash
        reports dropped) so the retry is indistinguishable from a fresh
        run; the ``run_retries`` counter is incremented *before* each
        retry so the successful attempt's metrics snapshot includes it.
        Every attempt — including the successful one — is recorded in
        ``RunSummary.attempts``; if the whole ladder fails, the record is
        attached to the raised exception as ``exc.attempts``.

        With ``RunConfig(checkpoint_path=...)`` set, a retry does better
        than starting over: the latest *valid* checkpoint in the
        directory is restored after the reset (state, clocks, channels —
        and the metrics registry, into the attached ``obs``), so the
        next attempt resumes mid-run.  Each attempt record carries
        ``resumed_from`` (``{"path", "epoch"}``, or ``None`` for a
        from-scratch attempt), and when the next executor is the process
        executor the checkpoint's observed post-steal placement seeds
        the partitioner via elastic pins (correct on any worker count;
        see :func:`repro.core.checkpoint.elastic_pins`).
        """
        from time import perf_counter

        from .errors import RunTimeoutError, WorkerCrashError
        from .executor.registry import resolve_executor

        specs: list = [executor_cls]
        fallback = config.fallback
        if fallback is True:
            name = getattr(executor_cls, "name", "")
            if name in FALLBACK_LADDER:
                chain = FALLBACK_LADDER[FALLBACK_LADDER.index(name) + 1 :]
            else:
                chain = FALLBACK_LADDER
            specs.extend(chain or ("sequential",))
        elif isinstance(fallback, str):
            specs.append(fallback)
        else:
            specs.extend(fallback)

        obs = config.obs
        attempts: list[dict] = []
        #: What the attempt about to run was restored from (None = scratch).
        resumed_from: Optional[dict] = (
            {"path": None, "epoch": getattr(self, "_resume_epoch", 0)}
            if getattr(self, "_resume_records", None) is not None
            else None
        )
        for position, spec in enumerate(specs):
            cls = resolve_executor(spec)
            instance = cls.from_config(config)
            started = perf_counter()
            try:
                summary = instance.execute(self)
            except (RunTimeoutError, WorkerCrashError) as exc:
                attempts.append(
                    {
                        "executor": instance.name,
                        "outcome": (
                            "timeout"
                            if isinstance(exc, RunTimeoutError)
                            else "crashed"
                        ),
                        "error": repr(exc),
                        "seconds": perf_counter() - started,
                        "tag": config.tag,
                        "resumed_from": resumed_from,
                    }
                )
                if position == len(specs) - 1:
                    exc.attempts = attempts
                    summary = getattr(exc, "summary", None)
                    if summary is not None and config.tag is not None:
                        summary.tag = config.tag
                    raise
                self.reset()
                if obs is not None:
                    if obs.trace is not None:
                        obs.trace.clear()
                    obs.stall_report = None
                    obs.crash_report = None
                resumed_from = None
                if config.checkpoint_path is not None:
                    resumed_from, config = self._restore_latest_checkpoint(
                        config, obs
                    )
                if obs is not None and obs.metrics is not None:
                    obs.metrics.counter("run_retries").inc()
            else:
                attempts.append(
                    {
                        "executor": instance.name,
                        "outcome": "ok",
                        "error": None,
                        "seconds": perf_counter() - started,
                        "tag": config.tag,
                        "resumed_from": resumed_from,
                    }
                )
                summary.attempts = attempts
                if config.tag is not None:
                    summary.tag = config.tag
                return summary
        raise AssertionError("unreachable: ladder neither returned nor raised")

    def _restore_latest_checkpoint(self, config, obs):
        """Restore the newest valid checkpoint for a ladder retry.

        Returns ``(resumed_from, config)``: the attempt annotation (or
        ``None`` when the directory holds no usable checkpoint — the
        retry then runs from scratch, exactly as before checkpointing
        existed) and the possibly-updated config.  The checkpoint's
        saved metrics registry is loaded into ``obs`` so counters
        continue from the cut, and when the caller configured an
        explicit worker count the observed placement is folded into
        ``config.pins`` for elastic repartitioning.
        """
        from .checkpoint import elastic_pins, latest_checkpoint

        checkpoint = latest_checkpoint(config.checkpoint_path, self)
        if checkpoint is None:
            return None, config
        checkpoint.restore_into(self)
        if (
            obs is not None
            and obs.metrics is not None
            and checkpoint.metrics is not None
        ):
            obs.metrics.load_state(checkpoint.metrics)
        if checkpoint.placement and config.workers:
            pins = elastic_pins(self, checkpoint, config.workers)
            if pins:
                config = config.replace(pins=pins)
        return {"path": checkpoint.path, "epoch": checkpoint.epoch}, config

    def reset(self) -> None:
        """Restore every context clock and channel to pre-run state.

        The graph (contexts, channels, wiring, pins) is untouched; only
        run state is cleared: context clocks return to zero, finish times
        are forgotten, and every channel is drained back to its built
        state (see :meth:`Channel.reset`).  Called by the retry ladder
        between attempts; also useful for running the same program
        repeatedly in benchmarks.

        Note that *user state* inside a context body (instance attributes
        mutated by ``run()``) is the context author's responsibility —
        DAM contexts conventionally keep their state in locals, created
        fresh each time the generator is re-invoked, in which case reset
        is complete.
        """
        for context in self.contexts:
            context.time = TimeCell(0)
            context.finish_time = None
        for channel in self.channels:
            channel.reset()
        # A pending checkpoint restore is run state too: reset means "from
        # scratch" (a later restore_into() re-arms both attributes).
        self.__dict__.pop("_resume_records", None)
        self.__dict__.pop("_resume_epoch", None)

    def context_count(self) -> int:
        return len(self.contexts)

    def channel_count(self) -> int:
        return len(self.channels)

    def __repr__(self) -> str:
        return (
            f"Program({len(self.contexts)} contexts, {len(self.channels)} channels)"
        )


class ProgramBuilder:
    """Accumulates contexts and channels, then validates into a Program."""

    def __init__(self) -> None:
        self._contexts: list[Context] = []
        self._channels: list[Channel] = []
        self._pins: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Channel factories.
    # ------------------------------------------------------------------

    def bounded(
        self,
        capacity: int,
        latency: Time = 1,
        resp_latency: Time = 1,
        name: str | None = None,
    ) -> tuple[Sender, Receiver]:
        """Create a bounded channel; returns its (Sender, Receiver) pair."""
        snd, rcv = make_channel(
            capacity=capacity, latency=latency, resp_latency=resp_latency, name=name
        )
        self._channels.append(snd.channel)
        return snd, rcv

    def unbounded(
        self,
        latency: Time = 1,
        name: str | None = None,
    ) -> tuple[Sender, Receiver]:
        """Create an unbounded channel (no backpressure simulation)."""
        snd, rcv = make_channel(capacity=None, latency=latency, name=name)
        self._channels.append(snd.channel)
        return snd, rcv

    def channel(
        self,
        capacity: Optional[int],
        latency: Time = 1,
        resp_latency: Time = 1,
        name: str | None = None,
    ) -> tuple[Sender, Receiver]:
        """Create a channel; ``capacity=None`` means unbounded."""
        snd, rcv = make_channel(
            capacity=capacity, latency=latency, resp_latency=resp_latency, name=name
        )
        self._channels.append(snd.channel)
        return snd, rcv

    def real(self, name: str | None = None) -> tuple[Sender, Receiver]:
        """Create a *real* channel: data without simulated-time coupling.

        Real channels are the Section IX mechanism: they let a context
        that runs far ahead in simulated time (e.g. a batching context)
        hand records to a lagging context (e.g. an inference context)
        without dragging the receiver's clock forward.  Timestamps, where
        needed, travel inside the payload.
        """
        snd, rcv = make_channel(capacity=None, name=name, real=True)
        self._channels.append(snd.channel)
        return snd, rcv

    # ------------------------------------------------------------------
    # Context registration.
    # ------------------------------------------------------------------

    def add(self, context: Context) -> Context:
        """Register a context; returns it for chaining."""
        self._contexts.append(context)
        return context

    def add_all(self, contexts: Iterable[Context]) -> None:
        for context in contexts:
            self.add(context)

    def pin(self, context: Context, worker: int) -> Context:
        """Pin ``context`` to a process-executor worker (manual placement).

        Overrides the automatic edge-weighted partitioning for this
        context: contexts pinned to the same index are guaranteed to run
        in the same worker process, contexts pinned to different indices
        in different ones.  Ignored by the sequential and threaded
        executors.  The index must be valid for the worker count the
        executor is eventually constructed with (validated at run time
        by :func:`~repro.core.executor.partition.plan_partition`).
        """
        if worker < 0:
            raise GraphConstructionError(
                f"cannot pin {context.name} to negative worker {worker}"
            )
        self._pins[id(context)] = worker
        return context

    # ------------------------------------------------------------------
    # Validation and build.
    # ------------------------------------------------------------------

    def build(self) -> Program:
        """Validate the graph and produce an executable :class:`Program`."""
        if not self._contexts:
            raise GraphConstructionError("program has no contexts")

        known_channels: dict[int, Channel] = {ch.id: ch for ch in self._channels}
        registered = {id(ctx) for ctx in self._contexts}
        if len(registered) != len(self._contexts):
            raise GraphConstructionError("a context was added more than once")

        # Channels referenced by contexts but created outside the builder
        # (via make_channel) are adopted here.
        for context in self._contexts:
            for handle in (*context.senders, *context.receivers):
                known_channels.setdefault(handle.channel.id, handle.channel)

        problems: list[str] = []
        for channel in known_channels.values():
            if channel.sender_owner is None:
                problems.append(f"{channel.name}: no sending context")
            elif id(channel.sender_owner) not in registered:
                problems.append(
                    f"{channel.name}: sender {channel.sender_owner.name} "
                    "was never added to the builder"
                )
            if channel.receiver_owner is None:
                problems.append(f"{channel.name}: no receiving context")
            elif id(channel.receiver_owner) not in registered:
                problems.append(
                    f"{channel.name}: receiver {channel.receiver_owner.name} "
                    "was never added to the builder"
                )
        if problems:
            raise GraphConstructionError(
                "invalid program graph: " + "; ".join(sorted(problems))
            )
        for ctx_id in self._pins:
            if ctx_id not in registered:
                raise GraphConstructionError(
                    "a pinned context was never added to the builder"
                )
        return Program(
            self._contexts,
            list(known_channels.values()),
            partition_pins=self._pins,
        )
