"""Trace events and per-context event buffers.

The observability pipeline's first invariant is that *recording must not
distort the run being observed*.  Each context therefore appends events to
its own :class:`ContextTraceBuffer` — a plain Python list touched only by
the thread of control driving that context — so the threaded executor can
trace without any per-event locking (the append is the lock-free fast
path; CPython list appends are atomic under the GIL, and no other thread
reads the list until the run has ended).

The second invariant is *determinism of the merged view*: an event is
keyed by ``(time, context, seq)`` where ``seq`` is the context's own op
counter.  Because channel semantics are pure functions of simulated state,
each context performs the same ops at the same simulated times under every
executor and scheduling policy; sorting the union of buffers by that key
therefore yields an identical total order for sequential and threaded
runs (asserted by the obs test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.time import Time


@dataclass(frozen=True)
class TraceEvent:
    """One completed operation.

    ``seq`` is the position of the event in its context's own event
    stream — the deterministic tiebreaker for merging buffers.
    """

    context: str
    kind: str            # "enqueue" | "dequeue" | "peek" | "advance" | "finish"
    channel: str | None  # channel name for channel ops, else None
    time: Time           # the context's simulated time after the op
    payload: Any = None  # data moved, when applicable
    seq: int = 0         # per-context event index

    def sort_key(self) -> tuple:
        return (self.time, self.context, self.seq)


class ContextTraceBuffer:
    """Append-only event list owned by exactly one context.

    Executors obtain one buffer per context *before* starting the run and
    append from the context's own thread of control only; this is what
    makes tracing executor-agnostic without distorting the schedule.
    """

    __slots__ = ("context", "events", "capture_payloads", "_seq")

    def __init__(self, context: str, capture_payloads: bool = False):
        self.context = context
        self.events: list[TraceEvent] = []
        self.capture_payloads = capture_payloads
        self._seq = 0

    def append(
        self,
        kind: str,
        channel: str | None,
        time: Time,
        payload: Any = None,
    ) -> None:
        seq = self._seq
        self._seq = seq + 1
        self.events.append(
            TraceEvent(
                self.context,
                kind,
                channel,
                time,
                payload if self.capture_payloads else None,
                seq,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ContextTraceBuffer({self.context}, {len(self.events)} events)"
