"""Fig. 9 — MHA sweep across parallelization factors.

Paper: parallelization factors 1..64 (batch 8, heads 8); simulated
parallelism scales until real hardware saturates (~32 of 88 cores), with
context counts surpassing two thousand.

Reproduction (single-core container): the *simulated* speedup — the
makespan reduction from splitting heads across independent pipelines — is
the reproducible series; real time cannot improve without cores and is
reported for transparency.  Context counts scale exactly as Table III.
"""

import numpy as np
from conftest import report

from repro.bench import TextTable
from repro.sam.graphs.mha import build_parallel_mha

HEADS = 8
SEQ_LEN = 10
HEAD_DIM = 4
FACTORS = [1, 2, 4, 8]


def inputs(seed=0):
    rng = np.random.default_rng(seed)
    mask = (rng.random((HEADS, SEQ_LEN, SEQ_LEN)) < 0.4).astype(float)
    for h in range(HEADS):
        np.fill_diagonal(mask[h], 1.0)
    return (
        mask,
        rng.standard_normal((HEADS, SEQ_LEN, HEAD_DIM)),
        rng.standard_normal((HEADS, SEQ_LEN, HEAD_DIM)),
        rng.standard_normal((HEADS, SEQ_LEN, HEAD_DIM)),
    )


def run_sweep():
    mask, q, k, v = inputs()
    table = TextTable(
        ["parallelism", "sim_cycles", "sim_speedup", "contexts", "real_s"],
        title=(
            "Fig. 9 (scaled): MHA across parallelization factors\n"
            "paper: scales to ~32 on an 88-core box; >2000 contexts at 64"
        ),
    )
    base_cycles = None
    results = []
    reference = None
    for factor in FACTORS:
        parallel = build_parallel_mha(mask, q, k, v, parallelism=factor)
        summary = parallel.run()
        output = parallel.result_dense()
        if reference is None:
            reference = output
        else:
            assert np.allclose(output, reference)
        if base_cycles is None:
            base_cycles = summary.elapsed_cycles
        sim_speedup = base_cycles / summary.elapsed_cycles
        results.append((factor, summary.elapsed_cycles, sim_speedup))
        table.add_row(
            factor,
            summary.elapsed_cycles,
            sim_speedup,
            parallel.context_count,
            summary.real_seconds,
        )
    report("fig9_mha_parallel", table.render())
    return results


def test_fig9_simulated_parallelism_scales(benchmark):
    results = run_sweep()
    cycles = [c for _, c, _ in results]
    # Simulated makespan strictly improves with each doubling.
    assert all(later < earlier for earlier, later in zip(cycles, cycles[1:]))
    # And the full split achieves a substantial simulated speedup.
    assert results[-1][2] > 2.0
    mask, q, k, v = inputs()
    benchmark.pedantic(
        lambda: build_parallel_mha(mask, q, k, v, parallelism=4).run(),
        rounds=2,
        iterations=1,
    )
