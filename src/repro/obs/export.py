"""Trace exporters: Chrome trace-event / Perfetto JSON and CSV.

The Chrome trace-event format (loadable by https://ui.perfetto.dev and
``chrome://tracing``) maps naturally onto DAM runs:

* one *thread track* per context (simulated processes, not OS threads);
* each operation becomes a complete-event slice (``ph: "X"``) spanning
  from the context's previous simulated time to the op's completion time,
  so waiting shows up as long slices and back-to-back ops as dense ones;
* every channel transfer becomes a flow arrow (``ph: "s"`` at the
  enqueue, ``ph: "f"`` at the matching dequeue — FIFO channels pair the
  k-th enqueue with the k-th dequeue), which renders the dataflow
  dependencies that parks wait on across tracks.

Timestamps are simulated cycles reported in the format's microsecond
unit: one cycle renders as one microsecond, keeping integer arithmetic
exact.  All emitted values derive from simulated state only, so exports
are byte-identical across executors and runs (the golden-file property).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .trace import TraceCollector

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry

_PID = 1


def _payload_str(payload: Any) -> str:
    if payload is None:
        return ""
    if isinstance(payload, float):
        return f"{payload:.6g}"
    return str(payload)


def to_chrome_trace(
    trace: TraceCollector,
    metrics: "MetricsRegistry | None" = None,
    profile: dict[str, Any] | None = None,
    channels: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Render the trace as a Chrome trace-event / Perfetto JSON object.

    ``profile`` (a :meth:`~repro.obs.profile.ProfileReport.to_dict`) adds
    a Perfetto counter track (``ph: "C"``) with the utilization timeline's
    active/blocked series per epoch and embeds the full report under
    ``otherData.profile``; ``channels`` (capacity/latency metadata from
    :func:`~repro.obs.profile.channel_meta_for`) is embedded under
    ``otherData.channels`` so profiles recomputed from the exported file
    pair channel ops exactly like the in-process analysis.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "dam-simulation"},
        }
    ]
    buffers = trace.buffers()
    tids = {name: tid for tid, name in enumerate(sorted(buffers))}

    for name, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # Channel ops as slices: one track per context, each op spanning from
    # the context's previous event time to the op's completion time.
    flow_points: dict[str, list[tuple[str, Any, int]]] = {}
    for name in sorted(buffers):
        buf = buffers[name]
        tid = tids[name]
        prev_time = 0
        for event in buf.events:
            ts = prev_time
            dur = event.time - prev_time
            args: dict[str, Any] = {"seq": event.seq}
            if event.channel is not None:
                args["channel"] = event.channel
            if event.payload is not None:
                args["payload"] = _payload_str(event.payload)
            label = (
                f"{event.kind} {event.channel}"
                if event.channel is not None
                else event.kind
            )
            events.append(
                {
                    "name": label,
                    "cat": "channel" if event.channel is not None else "time",
                    "ph": "X",
                    "pid": _PID,
                    "tid": tid,
                    "ts": ts,
                    "dur": dur,
                    "args": args,
                }
            )
            prev_time = event.time
            if event.channel is not None and event.kind in ("enqueue", "dequeue"):
                flow_points.setdefault(event.channel, []).append(
                    (event.kind, event.time, tid)
                )

    # Channel transfers as flow arrows: FIFO order pairs the k-th enqueue
    # with the k-th dequeue.
    flow_id = 0
    for channel in sorted(flow_points):
        enqueues = [p for p in flow_points[channel] if p[0] == "enqueue"]
        dequeues = [p for p in flow_points[channel] if p[0] == "dequeue"]
        for (_, enq_ts, enq_tid), (_, deq_ts, deq_tid) in zip(enqueues, dequeues):
            flow_id += 1
            common = {"cat": "flow", "name": channel, "id": flow_id, "pid": _PID}
            events.append({**common, "ph": "s", "tid": enq_tid, "ts": enq_ts})
            events.append(
                {**common, "ph": "f", "bp": "e", "tid": deq_tid, "ts": deq_ts}
            )

    # The utilization timeline as a Perfetto counter track: one counter
    # event per epoch with the active/blocked simulated-time series.
    if profile is not None:
        for epoch in (profile.get("timeline") or {}).get("epochs", []):
            events.append(
                {
                    "name": "utilization",
                    "cat": "profile",
                    "ph": "C",
                    "pid": _PID,
                    "ts": epoch["start"],
                    "args": {
                        "active": epoch["active"],
                        "blocked": epoch["blocked"],
                    },
                }
            )

    document: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    other: dict[str, Any] = {}
    if metrics is not None:
        other["metrics"] = metrics.snapshot()
    if profile is not None:
        other["profile"] = profile
    if channels is not None:
        other["channels"] = channels
    if other:
        document["otherData"] = other
    return document


def write_chrome_trace(
    trace: TraceCollector,
    path: str | Path,
    metrics: "MetricsRegistry | None" = None,
    profile: dict[str, Any] | None = None,
    channels: dict[str, Any] | None = None,
) -> Path:
    """Write the Perfetto-loadable JSON to ``path`` and return it."""
    path = Path(path)
    document = to_chrome_trace(trace, metrics, profile=profile, channels=channels)
    path.write_text(json.dumps(document, sort_keys=True, default=str))
    return path


def to_csv(trace: TraceCollector) -> str:
    """Render the merged timeline as CSV (``time,context,seq,kind,channel,
    payload``), in the deterministic merged order."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["time", "context", "seq", "kind", "channel", "payload"])
    for event in trace.events:
        writer.writerow(
            [
                event.time,
                event.context,
                event.seq,
                event.kind,
                event.channel or "",
                _payload_str(event.payload),
            ]
        )
    return out.getvalue()


def write_csv(trace: TraceCollector, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(to_csv(trace))
    return path
