"""Property-based cross-executor determinism tests.

The paper claims DAM is "an exact, deterministic system, producing the same
results on each execution".  We generate random dataflow pipelines (random
channel geometries, initiation intervals, and payload streams) and assert
that the sequential executor — under multiple scheduling policies — and the
threaded executor agree on delivered values, simulated makespan, and every
per-context finish time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FairPolicy, ProgramBuilder, SequentialExecutor
from repro.contexts import Collector, IterableSource, UnaryFunction

channel_geometry = st.tuples(
    st.one_of(st.none(), st.integers(min_value=1, max_value=5)),  # capacity
    st.integers(min_value=0, max_value=4),  # latency
    st.integers(min_value=0, max_value=4),  # resp_latency
)


def build_pipeline(payload, stage_geometries, stage_iis, source_ii):
    """Linear pipeline with one UnaryFunction per stage geometry."""
    builder = ProgramBuilder()
    snd, rcv = builder.channel(*stage_geometries[0])
    builder.add(IterableSource(snd, payload, ii=source_ii, name="src"))
    for index, geometry in enumerate(stage_geometries[1:]):
        nxt_snd, nxt_rcv = builder.channel(*geometry)
        builder.add(
            UnaryFunction(
                rcv,
                nxt_snd,
                lambda x, k=index: x + k,
                ii=stage_iis[index],
                name=f"stage{index}",
            )
        )
        rcv = nxt_rcv
    collector = builder.add(Collector(rcv, name="sink"))
    return builder.build(), collector


@st.composite
def pipeline_spec(draw):
    payload = draw(st.lists(st.integers(-100, 100), min_size=0, max_size=25))
    n_stages = draw(st.integers(min_value=1, max_value=4))
    geometries = draw(
        st.lists(channel_geometry, min_size=n_stages, max_size=n_stages)
    )
    iis = draw(
        st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=max(n_stages - 1, 1),
            max_size=max(n_stages - 1, 1),
        )
    )
    source_ii = draw(st.integers(min_value=0, max_value=4))
    return payload, geometries, iis, source_ii


@settings(max_examples=40, deadline=None)
@given(pipeline_spec())
def test_sequential_policies_agree(spec):
    payload, geometries, iis, source_ii = spec
    outcomes = []
    for policy in ["fifo", FairPolicy(timeslice=2), FairPolicy(timeslice=7, boost=False)]:
        program, collector = build_pipeline(payload, geometries, iis, source_ii)
        summary = SequentialExecutor(policy=policy).execute(program)
        outcomes.append(
            (
                tuple(collector.values),
                summary.elapsed_cycles,
                tuple(sorted(summary.context_times.items())),
            )
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


@settings(max_examples=15, deadline=None)
@given(pipeline_spec())
def test_threaded_matches_sequential(spec):
    payload, geometries, iis, source_ii = spec
    program_seq, col_seq = build_pipeline(payload, geometries, iis, source_ii)
    seq = program_seq.run(executor="sequential")
    program_thr, col_thr = build_pipeline(payload, geometries, iis, source_ii)
    thr = program_thr.run(executor="threaded")
    assert col_seq.values == col_thr.values
    assert seq.elapsed_cycles == thr.elapsed_cycles
    assert seq.context_times == thr.context_times


@settings(max_examples=25, deadline=None)
@given(
    payload=st.lists(st.integers(-50, 50), max_size=30),
    capacity=st.one_of(st.none(), st.integers(1, 3)),
    latency=st.integers(0, 3),
)
def test_pipeline_preserves_payload(payload, capacity, latency):
    """Property: channels never drop, duplicate, or reorder data."""
    builder = ProgramBuilder()
    snd, rcv = builder.channel(capacity, latency)
    builder.add(IterableSource(snd, payload))
    collector = builder.add(Collector(rcv))
    builder.build().run()
    assert collector.values == payload
