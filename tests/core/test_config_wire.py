"""The wire formats behind the serve layer: ``RunConfig`` and
``RunSummary`` round-trip through strict dicts, and ``tag`` threads from
config to summary (and through every retry-ladder attempt record)."""

import json

import pytest

from repro import (
    Context,
    IncrCycles,
    ProgramBuilder,
    RunConfig,
    RunSummary,
)


class Producer(Context):
    def __init__(self, out, n=4):
        super().__init__()
        self.out, self.n = out, n
        self.register(out)

    def run(self):
        for i in range(self.n):
            yield IncrCycles(1)
            yield self.out.enqueue(i)


class Consumer(Context):
    def __init__(self, inp, n=4):
        super().__init__()
        self.inp, self.n = inp, n
        self.register(inp)

    def run(self):
        for _ in range(self.n):
            yield self.inp.dequeue()
            yield IncrCycles(1)


def tiny_program():
    builder = ProgramBuilder()
    snd, rcv = builder.bounded(2)
    builder.add(Producer(snd))
    builder.add(Consumer(rcv))
    return builder.build()


class TestRunConfigWire:
    def test_round_trip_is_equal(self):
        config = RunConfig(
            workers=3,
            deadline_s=12.5,
            fallback=["threaded", "sequential"],
            steal=False,
            tag="tenant/req-1",
            extra={"ring_capacity": 64},
        )
        wire = config.to_dict()
        json.dumps(wire)  # must be JSON-clean
        rebuilt = RunConfig.from_dict(wire)
        # fallback lists arrive as lists either way; compare field-wise.
        assert rebuilt.workers == config.workers
        assert rebuilt.deadline_s == config.deadline_s
        assert list(rebuilt.fallback) == list(config.fallback)
        assert rebuilt.steal is False
        assert rebuilt.tag == config.tag
        assert rebuilt.extra == config.extra
        assert rebuilt.to_dict() == wire

    def test_none_fields_are_omitted(self):
        assert RunConfig().to_dict() == {}
        assert RunConfig(workers=2).to_dict() == {"workers": 2}

    def test_unknown_field_raises_listing_valid_names(self):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            RunConfig.from_dict({"wrokers": 2})
        with pytest.raises(ValueError, match="workers"):
            # The error must list the valid fields so the typo is obvious.
            RunConfig.from_dict({"wrokers": 2})

    def test_extra_must_be_dict(self):
        with pytest.raises(TypeError, match="extra"):
            RunConfig.from_dict({"extra": [1, 2]})

    def test_local_only_fields_refuse_to_serialize(self):
        from repro.obs import Observability

        with pytest.raises(TypeError, match="obs"):
            RunConfig(obs=Observability()).to_dict()
        with pytest.raises(TypeError, match="pins"):
            RunConfig(pins={123: 0}).to_dict()
        with pytest.raises(TypeError, match="metrics_sink"):
            RunConfig(metrics_sink=print).to_dict()

    def test_non_wire_values_refuse_to_serialize(self):
        with pytest.raises(TypeError, match="policy"):
            RunConfig(policy=object()).to_dict()
        with pytest.raises(TypeError, match="extra"):
            RunConfig(extra={"callback": print}).to_dict()

    def test_legacy_kwargs_shim_is_gone(self):
        """PR 4's deprecated bare-kwargs form was removed outright: the
        config object is the only way to pass executor settings."""
        program = tiny_program()
        with pytest.raises(TypeError, match="workers"):
            program.run("sequential", workers=2)


class TestRunSummaryWire:
    def test_round_trip(self):
        program = tiny_program()
        summary = program.run(config=RunConfig(tag="a/1"))
        wire = summary.to_dict()
        json.dumps(wire)
        rebuilt = RunSummary.from_dict(wire)
        assert rebuilt.elapsed_cycles == summary.elapsed_cycles
        assert rebuilt.context_times == summary.context_times
        assert rebuilt.tag == "a/1"
        assert rebuilt.to_dict() == wire

    def test_unknown_field_rejected(self):
        wire = tiny_program().run().to_dict()
        wire["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            RunSummary.from_dict(wire)


class TestTagThreading:
    def test_tag_lands_on_summary(self):
        summary = tiny_program().run(config=RunConfig(tag="tenant-a/42"))
        assert summary.tag == "tenant-a/42"

    def test_no_tag_means_none(self):
        assert tiny_program().run().tag is None

    def test_tag_recorded_on_ladder_attempts(self):
        summary = tiny_program().run(
            config=RunConfig(fallback="sequential", tag="t/1")
        )
        assert summary.tag == "t/1"
        assert summary.attempts is not None
        assert [a["tag"] for a in summary.attempts] == ["t/1"]
        assert summary.attempts[-1]["outcome"] == "ok"

    def test_tag_survives_a_failing_attempt(self):
        from repro.core import FunctionContext, RunTimeoutError

        def build():
            # Two contexts that never finish: the run only ends when the
            # wall-clock deadline aborts it (every ladder rung times out).
            builder = ProgramBuilder()
            snd, rcv = builder.unbounded(name="spin")

            def spinner():
                while True:
                    yield snd.enqueue(1)
                    yield IncrCycles(1)

            def sink():
                while True:
                    yield rcv.dequeue()
                    yield IncrCycles(1)

            builder.add(FunctionContext(spinner, handles=[snd], name="a"))
            builder.add(FunctionContext(sink, handles=[rcv], name="b"))
            return builder.build()

        with pytest.raises(RunTimeoutError) as info:
            build().run(
                config=RunConfig(
                    deadline_s=0.2,
                    fallback="sequential",
                    tag="t/fail",
                )
            )
        attempts = info.value.attempts
        assert len(attempts) == 2
        assert {a["tag"] for a in attempts} == {"t/fail"}
        assert {a["outcome"] for a in attempts} == {"timeout"}
