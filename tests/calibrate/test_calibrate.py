"""Tests for the automated calibration loop (Fig. 10)."""

import pytest

from repro.calibrate import (
    Autotuner,
    IntParameter,
    SamTimingProblem,
    make_reference_traces,
)
from repro.calibrate.problem import DEFAULT_WORKLOADS, PARAMETER_SPACE


class TestIntParameter:
    def test_sample_in_range(self):
        import random

        p = IntParameter("x", 2, 5)
        rng = random.Random(0)
        assert all(2 <= p.sample(rng) <= 5 for _ in range(50))

    def test_neighbor_clamped(self):
        import random

        p = IntParameter("x", 0, 3)
        rng = random.Random(0)
        assert all(0 <= p.neighbor(0, rng) <= 3 for _ in range(50))
        assert all(0 <= p.neighbor(3, rng) <= 3 for _ in range(50))


class TestAutotuner:
    def test_finds_simple_quadratic_minimum(self):
        params = [IntParameter("a", 0, 20), IntParameter("b", 0, 20)]
        tuner = Autotuner(
            params, lambda p: (p["a"] - 7) ** 2 + (p["b"] - 3) ** 2, seed=0
        )
        result = tuner.tune(iterations=200, target_error=0.0)
        assert result.best_params == {"a": 7, "b": 3}
        assert result.best_error == 0.0

    def test_history_is_monotone_nonincreasing(self):
        params = [IntParameter("a", 0, 50)]
        tuner = Autotuner(params, lambda p: abs(p["a"] - 31), seed=1)
        result = tuner.tune(iterations=100)
        assert all(
            later <= earlier
            for earlier, later in zip(result.history, result.history[1:])
        )

    def test_target_error_stops_early(self):
        params = [IntParameter("a", 0, 5)]
        tuner = Autotuner(params, lambda p: float(p["a"]), seed=2)
        result = tuner.tune(iterations=10_000, target_error=0.0)
        assert result.evaluations < 10_000

    def test_converged_at(self):
        params = [IntParameter("a", 0, 5)]
        tuner = Autotuner(params, lambda p: float(p["a"]), seed=3)
        result = tuner.tune(iterations=50, target_error=0.0)
        assert result.converged_at(0.5) is not None
        assert result.converged_at(-1.0) is None

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            Autotuner([], lambda p: 0.0)

    def test_cache_avoids_reevaluation(self):
        calls = []
        params = [IntParameter("a", 0, 1)]
        tuner = Autotuner(params, lambda p: calls.append(1) or 0.0, seed=4)
        tuner.tune(iterations=100, target_error=-1.0)
        assert len(calls) <= 2  # only two distinct points exist


class TestSamTimingProblem:
    def test_recovers_hidden_parameters(self):
        """The Fig. 10 loop in miniature: sub-cycle error is reachable and
        the tuner reaches it (the paper: ~0.8 cycles after ~2700 iters)."""
        hidden = {"ii": 2, "stop_bubble": 3, "latency": 2}
        traces = make_reference_traces(hidden)
        problem = SamTimingProblem(traces)
        tuner = Autotuner(PARAMETER_SPACE, problem, seed=1)
        result = tuner.tune(iterations=150, target_error=0.0)
        assert result.best_error == 0.0
        assert result.best_params == hidden

    def test_zero_error_at_ground_truth(self):
        hidden = {"ii": 1, "stop_bubble": 1, "latency": 3}
        problem = SamTimingProblem(make_reference_traces(hidden))
        assert problem(hidden) == 0.0

    def test_nonzero_error_away_from_truth(self):
        hidden = {"ii": 1, "stop_bubble": 0, "latency": 1}
        problem = SamTimingProblem(make_reference_traces(hidden))
        assert problem({"ii": 4, "stop_bubble": 6, "latency": 4}) > 0

    def test_trace_workload_length_checked(self):
        with pytest.raises(ValueError):
            SamTimingProblem([1, 2], workloads=DEFAULT_WORKLOADS)
