"""Compiled-plan cache: repeat requests skip graph planning.

Planning work in this runtime is *shape*-determined: the greedy
edge-weighted partitioner, the cold-cluster plan, and the superblock
worth-it decision all depend on the graph's topology and observed
channel traffic, never on tensor values.  A request's
:meth:`~repro.sam.spec.ProgramSpec.shape_key` captures exactly that
topology, so the serve layer can learn a plan from the first run of a
shape and replay it for every later request of the same shape:

* the observed post-steal **placement** (``RunSummary.placement``)
  becomes full ``pins`` for the next run via
  :func:`~repro.core.executor.partition.pins_from_placement` — with
  every context pinned, ``plan_partition`` does no greedy agglomeration
  at all, and the §15 ``superblocks="auto"`` planner sees real locality;
* the observed **channel weights** feed the partitioner and the
  cold-cluster planner for worker counts the placement doesn't cover.

Cache keys include the executor name and worker count on top of the
shape key — a placement learned at ``workers=4`` is meaningless at
``workers=2``.  Replayed plans never change simulated results (the
cross-executor matrix proves bit-identity across every partitioning);
they only skip the planning work, which is what the
``plan_cache_hits`` metric makes visible.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from ..core.executor.config import RunConfig

#: On-disk plan-cache format version (see :meth:`PlanCache.save_json`).
CACHE_VERSION = 1


@dataclass
class CachedPlan:
    """What one completed run taught us about a graph shape."""

    key: str
    #: Context name → worker index where the context actually ran
    #: (process executor; ``None`` for single-runtime executors).
    placement: Optional[dict[str, int]] = None
    #: Channel name → observed traffic (enqueues + dequeues).
    weights: Optional[dict[str, float]] = None
    context_count: int = 0
    channel_count: int = 0
    uses: int = 0

    def apply(self, program: Any, config: RunConfig) -> RunConfig:
        """The request config augmented with this plan.

        Explicit request-side ``pins``/``weights`` always win; the plan
        only fills gaps.  ``pins`` are rebuilt per-program from the
        name-keyed placement (ids never travel).
        """
        changes: dict[str, Any] = {}
        if self.placement and config.pins is None:
            from ..core.executor.partition import pins_from_placement

            pins = pins_from_placement(program, self.placement)
            if pins:
                changes["pins"] = pins
        if self.weights and config.weights is None:
            changes["weights"] = dict(self.weights)
        return config.replace(**changes) if changes else config


class PlanCache:
    """A bounded LRU of :class:`CachedPlan` keyed by graph shape.

    Thread-safe: lookups happen on pool worker threads.  ``hits`` /
    ``misses`` are also folded into the server's metrics registry so the
    ``/metrics`` endpoint exposes them live.
    """

    def __init__(self, max_entries: int = 128):
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(shape_key: str, executor: str, workers: Optional[int]) -> str:
        return f"{shape_key}:{executor}:{workers if workers is not None else 'auto'}"

    def lookup(self, key: str) -> Optional[CachedPlan]:
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            plan.uses += 1
            return plan

    def store(self, plan: CachedPlan) -> None:
        with self._lock:
            self._entries[plan.key] = plan
            self._entries.move_to_end(plan.key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def learn(self, key: str, program: Any, summary: Any) -> None:
        """Record what ``summary`` observed about ``program``'s shape.

        Called after a cache-miss run completes; later same-shape
        requests replay the observed placement/weights instead of
        planning."""
        from ..core.executor.partition import channel_weights

        weights = channel_weights(program)
        self.store(
            CachedPlan(
                key=key,
                placement=dict(summary.placement) if summary.placement else None,
                weights=weights or None,
                context_count=len(program.contexts),
                channel_count=len(program.channels),
            )
        )

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
            }

    # ------------------------------------------------------------------
    # Persistence: warm caches survive server restarts.
    # ------------------------------------------------------------------

    def save_json(self, path: str) -> int:
        """Write every cached plan to ``path`` (atomic tmp + rename).

        The payload is plain JSON — placements are name-keyed and
        weights name-keyed floats, so they round-trip exactly.  Returns
        the number of entries written.
        """
        with self._lock:
            entries = [
                {
                    "key": plan.key,
                    "placement": plan.placement,
                    "weights": plan.weights,
                    "context_count": plan.context_count,
                    "channel_count": plan.channel_count,
                    "uses": plan.uses,
                }
                for plan in self._entries.values()
            ]
        payload = {"version": CACHE_VERSION, "entries": entries}
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return len(entries)

    def load_json(self, path: str) -> int:
        """Load plans saved by :meth:`save_json` into this cache.

        Unknown versions and malformed files are rejected with
        ``ValueError`` (a corrupt cache should fail loudly at startup,
        not silently serve nothing).  Returns the number of entries
        loaded; existing same-key entries are overwritten, LRU order
        follows file order.
        """
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            raise ValueError(
                f"{path!r} is not a version-{CACHE_VERSION} plan cache"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ValueError(f"{path!r}: 'entries' must be a list")
        count = 0
        for raw in entries:
            placement = raw.get("placement")
            self.store(
                CachedPlan(
                    key=str(raw["key"]),
                    placement=(
                        {str(k): int(v) for k, v in placement.items()}
                        if placement
                        else None
                    ),
                    weights=(
                        {str(k): float(v) for k, v in raw["weights"].items()}
                        if raw.get("weights")
                        else None
                    ),
                    context_count=int(raw.get("context_count", 0)),
                    channel_count=int(raw.get("channel_count", 0)),
                    uses=int(raw.get("uses", 0)),
                )
            )
            count += 1
        return count
