"""Executor-agnostic observability: tracing, metrics, and exporters.

DAM's pitch is that functionality and timing live together in each
context; this package makes the *timing* half inspectable on every
executor.  The pieces:

* :mod:`~repro.obs.events` — per-context lock-free event buffers, merged
  deterministically by ``(time, context, seq)``;
* :mod:`~repro.obs.trace` — :class:`TraceCollector`, the executor-agnostic
  replacement for the old sequential-only ``Tracer``;
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and histograms folded into ``RunSummary.metrics``;
* :mod:`~repro.obs.export` — Chrome trace-event / Perfetto JSON and CSV;
* :mod:`~repro.obs.stall` — deadlock stall reports naming the blocking
  channel, both endpoint clocks, and the virtual-time gap between them;
* :mod:`~repro.obs.profile` — post-run critical-path analysis,
  blocked-time accounting, utilization epochs, and run diffing
  (``python -m repro.obs report/diff``);
* :mod:`~repro.obs.stream` — the live :class:`MetricsSampler` behind
  ``RunConfig(metrics_interval_s=...)``.

:class:`Observability` bundles them for the common case::

    obs = Observability(capture_payloads=True)
    summary = program.run(executor="threaded", obs=obs)
    obs.write_chrome_trace("run.json")     # load in ui.perfetto.dev
    print(summary.metrics["counters"]["context_ops{context=worker}"])
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from .events import ContextTraceBuffer, TraceEvent
from .export import to_chrome_trace, to_csv, write_chrome_trace, write_csv
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fold_channel_metrics,
    fold_context_metrics,
)
from .profile import (
    PathSegment,
    ProfileReport,
    channel_meta_for,
    describe_diff,
    diff_profiles,
    events_from_chrome_trace,
    profile_trace,
    resolve_profile,
)
from .stall import ContextStall, StallReport, stall_for
from .stream import MetricsSampler
from .trace import TraceCollector

__all__ = [
    "ContextStall",
    "ContextTraceBuffer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "Observability",
    "PathSegment",
    "ProfileReport",
    "StallReport",
    "TraceCollector",
    "TraceEvent",
    "channel_meta_for",
    "describe_diff",
    "diff_profiles",
    "events_from_chrome_trace",
    "fold_channel_metrics",
    "fold_context_metrics",
    "profile_trace",
    "resolve_profile",
    "stall_for",
    "to_chrome_trace",
    "to_csv",
    "write_chrome_trace",
    "write_csv",
]


class Observability:
    """One handle bundling a trace collector and a metrics registry.

    Pass it to either executor (or ``program.run(obs=...)``); after the
    run, query ``obs.trace`` / ``obs.metrics``, export with the ``write_*``
    methods, and — if the run deadlocked — read ``obs.stall_report``.

    ``trace=False`` or ``metrics=False`` disables that half entirely
    (disabled tracing costs one pointer check per operation).
    """

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        capture_payloads: bool = False,
    ):
        self.trace: TraceCollector | None = (
            TraceCollector(capture_payloads=capture_payloads) if trace else None
        )
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics else None
        )
        #: Populated by the executor when the run deadlocks.
        self.stall_report: StallReport | None = None
        #: Populated by the process executor's supervisor when a worker
        #: process crashes (a :class:`~repro.core.errors.WorkerCrashError`).
        self.crash_report = None
        #: Channel capacity/latency metadata set by the executor at run
        #: start (:func:`channel_meta_for`); used for exact op pairing in
        #: the profiler and embedded in Chrome trace exports.
        self.channel_meta: dict[str, Any] | None = None
        #: The post-run :class:`ProfileReport`, attached by the executor
        #: when tracing was enabled (also available as ``summary.profile``).
        self.profile_report: ProfileReport | None = None
        #: Samples taken by the live :class:`MetricsSampler` when
        #: ``RunConfig(metrics_interval_s=...)`` was set.
        self.metrics_samples: list[dict[str, Any]] = []

    @classmethod
    def from_trace(cls, trace: TraceCollector) -> "Observability":
        """Wrap an existing collector (the legacy ``tracer=`` path)."""
        obs = cls(trace=False, metrics=False)
        obs.trace = trace
        return obs

    # ------------------------------------------------------------------
    # Exporters.
    # ------------------------------------------------------------------

    def _require_trace(self) -> TraceCollector:
        if self.trace is None:
            raise ValueError("tracing was disabled on this Observability")
        return self.trace

    def chrome_trace(self) -> dict[str, Any]:
        profile = self.profile_report
        return to_chrome_trace(
            self._require_trace(),
            self.metrics,
            profile=profile.to_dict() if profile is not None else None,
            channels=self.channel_meta,
        )

    def write_chrome_trace(self, path: str | Path) -> Path:
        profile = self.profile_report
        return write_chrome_trace(
            self._require_trace(),
            path,
            self.metrics,
            profile=profile.to_dict() if profile is not None else None,
            channels=self.channel_meta,
        )

    def csv(self) -> str:
        return to_csv(self._require_trace())

    def write_csv(self, path: str | Path) -> Path:
        return write_csv(self._require_trace(), path)

    def metrics_snapshot(self) -> dict[str, Any] | None:
        return self.metrics.snapshot() if self.metrics is not None else None

    # ------------------------------------------------------------------
    # Profiling.
    # ------------------------------------------------------------------

    def profile(self, epochs: int | None = None) -> ProfileReport:
        """The run's :class:`ProfileReport` — the executor-attached one
        when available, else computed on demand from the trace."""
        if self.profile_report is not None and epochs is None:
            return self.profile_report
        from .profile import DEFAULT_EPOCHS

        report = profile_trace(
            self._require_trace(),
            channel_meta=self.channel_meta,
            epochs=epochs if epochs is not None else DEFAULT_EPOCHS,
        )
        if epochs is None:
            self.profile_report = report
        return report
