"""Cycle-by-cycle standard attention: the Spatial-simulator stand-in.

Runs the Fig. 4a pipeline on :mod:`repro.cyclesim` — every unit ticked
every cycle, register channels committed at cycle boundaries.  Real time
scales with ``simulated cycles x component count`` with no idle skipping,
which is the behaviour Fig. 5/6 measure DAM's advantage against.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..cyclesim import CycleComponent, CycleEngine, CycleStats


class _CycleScoreProducer(CycleComponent):
    def __init__(self, out, q, k, scale, ii=1, name="qk_unit"):
        super().__init__(name=name)
        self.out = out
        self.q = q
        self.k = k
        self.scale = scale
        self.ii = ii
        self._cooldown = 0
        self.i = 0
        self.j = 0
        self.n = q.shape[0]

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if not self.out.can_push():
            return
        self.out.push(float(self.q[self.i] @ self.k[self.j]) * self.scale)
        self._cooldown = self.ii - 1
        self.j += 1
        if self.j == self.n:
            self.j = 0
            self.i += 1
            if self.i == self.n:
                self.finished = True


class _CycleExp(CycleComponent):
    def __init__(self, inp, out, total, name="exp_unit"):
        super().__init__(name=name)
        self.inp = inp
        self.out = out
        self.remaining = total

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.inp.can_pop() and self.out.can_push():
            self.out.push(math.exp(self.inp.pop()))
            self.remaining -= 1
            if self.remaining == 0:
                self.finished = True


class _CycleBroadcast(CycleComponent):
    def __init__(self, inp, outs, total, name="e_bcast"):
        super().__init__(name=name)
        self.inp = inp
        self.outs = outs
        self.remaining = total

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.inp.can_pop() and all(out.can_push() for out in self.outs):
            value = self.inp.pop()
            for out in self.outs:
                out.push(value)
            self.remaining -= 1
            if self.remaining == 0:
                self.finished = True


class _CycleRowSum(CycleComponent):
    def __init__(self, inp, out, n, name="row_sum"):
        super().__init__(name=name)
        self.inp = inp
        self.out = out
        self.n = n
        self.acc = 0.0
        self.count = 0
        self.rows_left = n

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.count < self.n and self.inp.can_pop():
            self.acc += self.inp.pop()
            self.count += 1
        # Emit in the same cycle the last element arrives (combinational
        # output register), matching the DAM pipeline's timing.
        if self.count == self.n and self.out.can_push():
            self.out.push(self.acc)
            self.acc = 0.0
            self.count = 0
            self.rows_left -= 1
            if self.rows_left == 0:
                self.finished = True


class _CycleDivide(CycleComponent):
    def __init__(self, e_buf, row_sums, out, n, name="divide"):
        super().__init__(name=name)
        self.e_buf = e_buf
        self.row_sums = row_sums
        self.out = out
        self.n = n
        self.denominator: Any = None
        self.count = 0
        self.rows_left = n

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        # Latching the row sum is combinational with the first divide
        # (same cycle), matching the DAM pipeline's timing.
        if self.denominator is None and self.row_sums.can_pop():
            self.denominator = self.row_sums.pop()
            self.count = 0
        if self.denominator is None:
            return
        if self.e_buf.can_pop() and self.out.can_push():
            self.out.push(self.e_buf.pop() / self.denominator)
            self.count += 1
            if self.count == self.n:
                self.denominator = None
                self.rows_left -= 1
                if self.rows_left == 0:
                    self.finished = True


class _CycleWeightedV(CycleComponent):
    def __init__(self, inp, v, n, name="av_unit"):
        super().__init__(name=name)
        self.inp = inp
        self.v = v
        self.n = n
        self.acc = np.zeros(v.shape[1])
        self.j = 0
        self.rows: list[np.ndarray] = []

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.inp.can_pop():
            weight = self.inp.pop()
            self.acc = self.acc + weight * self.v[self.j]
            self.j += 1
            if self.j == self.n:
                self.rows.append(self.acc)
                self.acc = np.zeros(self.v.shape[1])
                self.j = 0
                if len(self.rows) == self.n:
                    self.finished = True


def run_cycle_standard_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    buffer_depth: int | None = None,
    small_depth: int = 8,
    score_ii: int = 1,
) -> tuple[np.ndarray, CycleStats]:
    """Run Fig. 4a on the cycle engine; returns (output, stats)."""
    n, d = q.shape
    if buffer_depth is None:
        buffer_depth = n + 32
    engine = CycleEngine()
    scores = engine.channel(small_depth, "scores")
    exp = engine.channel(small_depth, "exp")
    e_sum = engine.channel(small_depth, "e_sum")
    e_buf = engine.channel(buffer_depth, "C_row_buffer")
    sums = engine.channel(small_depth, "row_sums")
    weights = engine.channel(small_depth, "weights")

    scale = 1.0 / math.sqrt(d)
    engine.add(_CycleScoreProducer(scores, q, k, scale, ii=score_ii))
    engine.add(_CycleExp(scores, exp, n * n))
    engine.add(_CycleBroadcast(exp, [e_sum, e_buf], n * n))
    engine.add(_CycleRowSum(e_sum, sums, n))
    engine.add(_CycleDivide(e_buf, sums, weights, n))
    sink = engine.add(_CycleWeightedV(weights, v, n))
    stats = engine.run()
    return np.stack(sink.rows), stats
