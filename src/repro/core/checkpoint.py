"""Checkpoint/restore at quiescent cut points (DESIGN.md §17).

A **checkpoint** is a consistent snapshot of a running DAM program: for
every context its declared state attributes (:attr:`Context.checkpoint_attrs`),
its clock, and — when it is suspended mid-yield — an executor-agnostic
*resume record* describing the op it was parked on; for every channel the
full queue/flag/stats state; plus the metrics registry and (for the
process executor) the observed post-steal placement.

The consistency argument is the communication-closed-rounds one: every
executor captures only at a **quiescent cut** — a point where no record
is in flight between two mutators (the sequential executor between
slices, the threaded executor with every thread acknowledged at a safe
point, the process executor with all cross-worker lanes drained and every
worker paused).  At such a cut the program state *is* the pair (context
attributes, channel queues); no schedule information needs to be saved,
because simulated results are pure functions of simulated state.

Generators themselves are never serialized.  A checkpointable context
keeps all inter-yield state in instance attributes mutated only *after*
the yield consuming their update (the resumable-state contract), so a
fresh ``run()`` generator started from restored attributes re-derives, as
its first yield, an op semantically identical to the suspended one.  The
resume record then tells the executor what to do with that first yield:

* ``fresh`` — the generator had not started; nothing special.
* ``suspended, executed=False`` — the context was parked on an
  un-executed op (or fused constituent ``fused_index``); the op will be
  re-attempted against the restored channels, which by construction
  block/complete identically.
* ``suspended, executed=True`` — the op had completed and its result was
  waiting for delivery; the executor primes the fresh generator, discards
  the re-derived first yield, and injects the recorded ``pending_value``
  (or throws the recorded ``pending_exc``).
* ``done`` — the context had finished; its finish time and its channels'
  closure flags are restored without ever starting the generator.

On-disk format: ``checkpoint_path`` names a **directory** holding one
file per epoch (``ckpt-000007.dam``), each a magic header + versioned
pickle payload, written atomically via tmp+rename.  Discovery
(:func:`latest_checkpoint`) scans newest-first and skips corrupt,
truncated, or mismatched files, so a crash mid-write can never poison a
resume.
"""

from __future__ import annotations

import os
import pickle
import time as _wallclock
from typing import TYPE_CHECKING, Any, Optional

from .errors import CheckpointError, NotCheckpointable, pack_exception
from .time import TimeCell

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context
    from .program import Program

#: Magic header of every checkpoint file; the trailing newline makes a
#: truncated or text-mangled file fail the check immediately.
MAGIC = b"DAMCKPT1\n"

#: Payload schema version (bump on any incompatible record change).
VERSION = 1

#: Filename pattern for epoch files inside the checkpoint directory.
_FILE_PREFIX = "ckpt-"
_FILE_SUFFIX = ".dam"


def checkpoint_filename(epoch: int) -> str:
    return f"{_FILE_PREFIX}{epoch:06d}{_FILE_SUFFIX}"


#: Filename pattern for per-worker partition dumps (process executor):
#: each worker writes its slice of an epoch here; the parent stitches
#: them into one ``ckpt-*.dam`` and deletes them.  Leftovers (a crash
#: between dump and stitch) are removed by :func:`clean_stale_temps`.
_PART_PREFIX = "part-"
_PART_SUFFIX = ".pkl"


def part_filename(epoch: int, worker: int) -> str:
    return f"{_PART_PREFIX}{epoch:06d}-{worker:03d}{_PART_SUFFIX}"


# ----------------------------------------------------------------------
# Program validation and identity.
# ----------------------------------------------------------------------


def validate_checkpointable(program: "Program") -> None:
    """Raise :class:`NotCheckpointable` naming every opaque context.

    Called by each executor *before* the run starts whenever
    ``RunConfig(checkpoint_interval_s=...)`` is set, so a long run never
    discovers at its first cut point that a context cannot be captured.
    """
    offenders = [ctx.name for ctx in program.contexts if not ctx.checkpointable]
    if offenders:
        raise NotCheckpointable(offenders)


def fingerprint_of(program: "Program") -> dict[str, Any]:
    """Structural identity of a program for restore validation.

    Context/channel counts and name tuples: enough to reject restoring a
    checkpoint onto a structurally different graph, while staying
    insensitive to worker count, executor, and channel contents — the
    elastic-restore cases that must keep working.
    """
    return {
        "contexts": len(program.contexts),
        "channels": len(program.channels),
        "context_names": tuple(ctx.name for ctx in program.contexts),
        "channel_names": tuple(ch.name for ch in program.channels),
    }


# ----------------------------------------------------------------------
# Per-context resume records.
# ----------------------------------------------------------------------


def record_done(context: "Context") -> dict[str, Any]:
    """Resume record for a context that has finished."""
    return {
        "kind": "done",
        "attrs": context.snapshot(),
        "clock": context.finish_time,
        "finish_time": context.finish_time,
    }


def record_fresh(context: "Context") -> dict[str, Any]:
    """Resume record for a context whose generator never started."""
    return {
        "kind": "fresh",
        "attrs": context.snapshot(),
        "clock": context.time.now(),
    }


def record_suspended(
    context: "Context",
    *,
    executed: bool,
    pending_value: Any = None,
    pending_exc: Optional[BaseException] = None,
    fused_index: Optional[int] = None,
    fused_prefix: Optional[list] = None,
    fused_len: Optional[int] = None,
) -> dict[str, Any]:
    """Resume record for a context suspended at a yield.

    ``executed`` says whether the op at the suspension point already
    completed (its result — ``pending_value`` or ``pending_exc`` — is
    awaiting delivery) or must be re-attempted against the restored
    channels.  For a suspension inside a :class:`~repro.core.ops.FusedOps`
    batch, ``fused_index`` is the constituent position, ``fused_prefix``
    the results of constituents ``[0, fused_index)``, and ``fused_len``
    the batch length (used to pre-size the results buffer on restore).
    """
    return {
        "kind": "suspended",
        "attrs": context.snapshot(),
        "clock": context.time.now(),
        "executed": executed,
        "pending_value": pending_value if executed else None,
        "pending_exc": (
            pack_exception(pending_exc) if pending_exc is not None else None
        ),
        "fused_index": fused_index,
        "fused_prefix": None if fused_prefix is None else list(fused_prefix),
        "fused_len": fused_len,
    }


# ----------------------------------------------------------------------
# The checkpoint object and its on-disk envelope.
# ----------------------------------------------------------------------


class Checkpoint:
    """One captured epoch of a running program.

    ``contexts`` maps context slot (index into ``program.contexts``) to a
    resume record; ``channels`` maps channel slot to a
    :meth:`~repro.core.channel.Channel.checkpoint_state` dict.
    """

    def __init__(
        self,
        epoch: int,
        fingerprint: dict[str, Any],
        contexts: dict[int, dict[str, Any]],
        channels: dict[int, dict[str, Any]],
        metrics: Optional[dict[str, Any]] = None,
        placement: Optional[dict[str, int]] = None,
        executor: str = "",
    ):
        self.epoch = epoch
        self.fingerprint = fingerprint
        self.contexts = contexts
        self.channels = channels
        self.metrics = metrics
        #: Observed post-steal placement (context name → worker index)
        #: at capture time; None for non-process executors.  Elastic
        #: restore replans partitions from this (see :func:`elastic_pins`).
        self.placement = placement
        self.executor = executor
        #: Set by :func:`load` / :func:`latest_checkpoint`: where this
        #: checkpoint came from (diagnostics; recorded in attempts).
        self.path: Optional[str] = None

    # -- capture -------------------------------------------------------

    @classmethod
    def capture(
        cls,
        program: "Program",
        epoch: int,
        context_records: dict[int, dict[str, Any]],
        *,
        metrics: Optional[dict[str, Any]] = None,
        placement: Optional[dict[str, int]] = None,
        executor: str = "",
        channel_states: Optional[dict[int, dict[str, Any]]] = None,
    ) -> "Checkpoint":
        """Assemble a checkpoint from executor-provided context records,
        capturing every channel's state directly off the program — or,
        when ``channel_states`` is given (the process executor's stitched
        cut), installing those states verbatim."""
        if channel_states is not None:
            channels = dict(channel_states)
        else:
            channels = {
                slot: channel.checkpoint_state()
                for slot, channel in enumerate(program.channels)
            }
        return cls(
            epoch=epoch,
            fingerprint=fingerprint_of(program),
            contexts=context_records,
            channels=channels,
            metrics=metrics,
            placement=placement,
            executor=executor,
        )

    # -- serialization -------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "version": VERSION,
            "epoch": self.epoch,
            "fingerprint": self.fingerprint,
            "contexts": self.contexts,
            "channels": self.channels,
            "metrics": self.metrics,
            "placement": self.placement,
            "executor": self.executor,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Checkpoint":
        version = payload.get("version")
        if version != VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {VERSION})"
            )
        return cls(
            epoch=payload["epoch"],
            fingerprint=payload["fingerprint"],
            contexts=payload["contexts"],
            channels=payload["channels"],
            metrics=payload.get("metrics"),
            placement=payload.get("placement"),
            executor=payload.get("executor", ""),
        )

    def save(self, directory: str) -> str:
        """Atomically write this checkpoint into ``directory``.

        The payload goes to a ``.tmp-*`` sibling first and is renamed
        into place, so readers only ever see complete files; a crash
        mid-write leaves a temp file that :func:`clean_stale_temps`
        removes on the next run.
        """
        os.makedirs(directory, exist_ok=True)
        final = os.path.join(directory, checkpoint_filename(self.epoch))
        tmp = os.path.join(
            directory, f".tmp-{checkpoint_filename(self.epoch)}-{os.getpid()}"
        )
        blob = MAGIC + pickle.dumps(self.to_payload(), protocol=pickle.HIGHEST_PROTOCOL)
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self.path = final
        return final

    # -- restore -------------------------------------------------------

    def validate_for(self, program: "Program") -> None:
        expected = fingerprint_of(program)
        if self.fingerprint != expected:
            raise CheckpointError(
                "checkpoint does not fit this program: fingerprint mismatch "
                f"(checkpoint {self.fingerprint!r} vs program {expected!r})"
            )

    def restore_into(self, program: "Program") -> None:
        """Install this checkpoint's state into ``program``.

        Context attributes, clocks, and finish times are overwritten;
        every channel is restored (queues, flags, stats, flavor); and
        ``program._resume_records`` is set so the next executor run
        starts each context from its recorded suspension instead of from
        scratch.  The metrics registry is *not* touched here — it lives
        on the caller's :class:`~repro.obs.Observability`; load
        ``self.metrics`` into it via
        :meth:`~repro.obs.metrics.MetricsRegistry.load_state`.
        """
        self.validate_for(program)
        for slot, context in enumerate(program.contexts):
            record = self.contexts[slot]
            context.restore(record["attrs"])
            if record["kind"] == "done":
                context.finish_time = record["finish_time"]
                context.time = TimeCell(0)
                context.time.finish()
            else:
                context.finish_time = None
                context.time = TimeCell(record["clock"])
        for slot, channel in enumerate(program.channels):
            channel.restore_state(self.channels[slot])
        program._resume_records = dict(self.contexts)
        program._resume_epoch = self.epoch


# ----------------------------------------------------------------------
# Directory-level discovery and hygiene.
# ----------------------------------------------------------------------


def load(path: str, program: Optional["Program"] = None) -> Checkpoint:
    """Read one checkpoint file, strictly.

    Raises :class:`CheckpointError` on a bad magic header, a truncated or
    corrupt payload, an unsupported version, or (when ``program`` is
    given) a fingerprint mismatch.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not blob.startswith(MAGIC):
        raise CheckpointError(f"{path!r} is not a DAM checkpoint (bad magic)")
    try:
        payload = pickle.loads(blob[len(MAGIC):])
    except Exception as exc:  # noqa: BLE001 - any unpickle failure = corrupt
        raise CheckpointError(f"corrupt checkpoint {path!r}: {exc!r}") from exc
    checkpoint = Checkpoint.from_payload(payload)
    checkpoint.path = path
    if program is not None:
        checkpoint.validate_for(program)
    return checkpoint


#: Package-level alias — ``repro.load_checkpoint`` reads better than a
#: bare ``load`` exported far from this module.
load_checkpoint = load


def list_checkpoints(directory: str) -> list[str]:
    """Epoch files in ``directory``, oldest first (by epoch number)."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    files = [
        name
        for name in names
        if name.startswith(_FILE_PREFIX) and name.endswith(_FILE_SUFFIX)
    ]
    files.sort()
    return [os.path.join(directory, name) for name in files]


def latest_checkpoint(
    directory: str, program: Optional["Program"] = None
) -> Optional[Checkpoint]:
    """The newest checkpoint in ``directory`` that loads cleanly.

    Scans newest-first and *skips* files that are corrupt, truncated, or
    (when ``program`` is given) structurally mismatched — a crash during
    a checkpoint write must never prevent resuming from the previous
    epoch.  Returns ``None`` when no valid checkpoint exists.
    """
    for path in reversed(list_checkpoints(directory)):
        try:
            return load(path, program)
        except CheckpointError:
            continue
    return None


def clean_stale_temps(directory: str) -> int:
    """Remove ``.tmp-*`` and orphaned ``part-*`` leftovers from
    interrupted writes; returns the number of files removed.  Called at
    executor start and before restore, so a kill mid-dump never leaks
    temp files or half-stitched worker partitions."""
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if name.startswith(".tmp-") or (
            name.startswith(_PART_PREFIX) and name.endswith(_PART_SUFFIX)
        ):
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                pass
    return removed


# ----------------------------------------------------------------------
# Worker partition dumps (process executor).
# ----------------------------------------------------------------------


def save_part(directory: str, epoch: int, worker: int, payload: dict) -> str:
    """Atomically write one worker's slice of an epoch (tmp + rename)."""
    os.makedirs(directory, exist_ok=True)
    final = os.path.join(directory, part_filename(epoch, worker))
    tmp = os.path.join(
        directory, f".tmp-{part_filename(epoch, worker)}-{os.getpid()}"
    )
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    return final


def load_part(directory: str, epoch: int, worker: int) -> dict:
    """Read one worker's partition dump, strictly."""
    path = os.path.join(directory, part_filename(epoch, worker))
    try:
        with open(path, "rb") as handle:
            return pickle.loads(handle.read())
    except Exception as exc:  # noqa: BLE001 - any failure = corrupt part
        raise CheckpointError(f"cannot read partition dump {path!r}: {exc!r}") from exc


def remove_parts(directory: str, epoch: int) -> None:
    """Delete every worker's dump for ``epoch`` after a successful stitch."""
    prefix = f"{_PART_PREFIX}{epoch:06d}-"
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        if name.startswith(prefix) and name.endswith(_PART_SUFFIX):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass


# ----------------------------------------------------------------------
# Elastic repartitioning.
# ----------------------------------------------------------------------


def elastic_pins(
    program: "Program", checkpoint: Checkpoint, workers: int
) -> dict[int, int]:
    """Planner pins replaying a checkpoint's observed placement onto a
    (possibly different) worker count.

    The checkpoint records where each context *actually* ran —
    post-steal, so the locality the previous run converged to — and a
    restore onto ``workers`` processes folds those indices modulo the new
    count: same-worker groups stay together when shrinking, and a grown
    pool receives the old workers' groups unchanged (the partitioner's
    balance cap still applies through :func:`plan_partition`).  Non-
    process checkpoints carry no placement and pin nothing.
    """
    if not checkpoint.placement or workers < 1:
        return {}
    return {
        id(ctx): checkpoint.placement[ctx.name] % workers
        for ctx in program.contexts
        if ctx.name in checkpoint.placement
    }


# ----------------------------------------------------------------------
# Capture cadence.
# ----------------------------------------------------------------------


class CheckpointTimer:
    """Tracks when the next capture is due and numbers the epochs.

    ``interval_s <= 0`` means "capture at every quiescent opportunity" —
    deterministic-by-construction cadence that the bit-identity tests
    rely on; a positive interval is the normal wall-clock cadence.
    Epochs continue from ``start_epoch`` so a resumed run never
    overwrites the checkpoint it was restored from.
    """

    __slots__ = ("interval_s", "epoch", "_last")

    def __init__(self, interval_s: float, start_epoch: int = 0):
        self.interval_s = interval_s
        self.epoch = start_epoch
        self._last = _wallclock.perf_counter()

    def due(self) -> bool:
        if self.interval_s <= 0:
            return True
        return _wallclock.perf_counter() - self._last >= self.interval_s

    def mark(self) -> int:
        """Advance to the next epoch; returns the epoch just captured."""
        self.epoch += 1
        self._last = _wallclock.perf_counter()
        return self.epoch
