"""Live metric streaming tests: the sampler itself, executor wiring for
all runtimes, and the sink variants (callback / JSONL / obs list).

The determinism half — a sampled run being bit-identical to an unsampled
one — lives in ``tests/sam/test_cross_executor.py`` with the rest of the
cross-executor matrix.
"""

import json

import pytest

from repro import Observability, ProgramBuilder
from repro.contexts import Collector, RampSource, UnaryFunction
from repro.core import RunConfig
from repro.obs.stream import MetricsSampler


def build_pipeline(count=200):
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(4, name="raw")
    s2, r2 = builder.bounded(4, name="cooked")
    builder.add(RampSource(s1, count, name="src"))
    builder.add(UnaryFunction(r1, s2, lambda x: x + 1, name="stage"))
    builder.add(Collector(r2, name="sink"))
    return builder.build()


class TestMetricsSampler:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            MetricsSampler(0, lambda: {})

    def test_stop_takes_a_final_sample(self):
        sampler = MetricsSampler(60.0, lambda: {"x": 1})
        sampler.start()
        samples = sampler.stop()
        # Interval far beyond the test runtime: only the final sample.
        assert len(samples) == 1
        assert samples[0]["x"] == 1
        assert samples[0]["seq"] == 0
        assert samples[0]["wall_s"] >= 0

    def test_periodic_sampling_and_callback_sink(self):
        import time

        seen = []
        sampler = MetricsSampler(0.005, lambda: {"x": 1}, sink=seen.append)
        sampler.start()
        time.sleep(0.05)
        samples = sampler.stop()
        assert len(samples) >= 2  # several ticks plus the final sample
        assert seen == samples
        assert [s["seq"] for s in samples] == list(range(len(samples)))

    def test_probe_errors_are_swallowed(self):
        def bad_probe():
            raise RuntimeError("boom")

        sampler = MetricsSampler(60.0, bad_probe)
        sampler.start()
        assert sampler.stop() == []
        assert sampler.errors and "boom" in sampler.errors[0]

    def test_sink_errors_do_not_stop_sampling(self):
        def bad_sink(sample):
            raise RuntimeError("sink down")

        sampler = MetricsSampler(60.0, lambda: {"x": 1}, sink=bad_sink)
        sampler.start()
        samples = sampler.stop()
        assert len(samples) == 1
        assert sampler.errors and "sink down" in sampler.errors[0]

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "samples.jsonl"
        sampler = MetricsSampler(60.0, lambda: {"x": 2}, sink=path)
        sampler.start()
        sampler.stop()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1 and lines[0]["x"] == 2


class TestExecutorWiring:
    @pytest.mark.parametrize(
        "executor,kwargs",
        [
            ("sequential", {}),
            ("threaded", {}),
            ("process", {"workers": 2}),
            ("free-threaded", {"workers": 2}),
        ],
    )
    def test_samples_land_on_obs(self, executor, kwargs):
        obs = Observability()
        build_pipeline().run(
            executor=executor,
            config=RunConfig(obs=obs, metrics_interval_s=0.002, **kwargs),
        )
        assert obs.metrics_samples, f"{executor}: no samples collected"
        final = obs.metrics_samples[-1]
        assert set(final["contexts"]) == {"src", "stage", "sink"}
        # The final sample is taken after the run: every published clock
        # has reached at least the start time, and metrics are present.
        assert all(t >= 0 for t in final["contexts"].values())
        assert "metrics" in final

    def test_callback_sink_through_run_config(self):
        seen = []
        build_pipeline().run(
            config=RunConfig(metrics_interval_s=0.002, metrics_sink=seen.append)
        )
        assert seen
        assert "contexts" in seen[-1] and "wall_s" in seen[-1]

    def test_jsonl_sink_through_run_config(self, tmp_path):
        path = tmp_path / "run.jsonl"
        build_pipeline().run(
            executor="threaded",
            config=RunConfig(metrics_interval_s=0.002, metrics_sink=str(path)),
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines and "contexts" in lines[-1]

    def test_process_parent_samples_shared_clocks(self):
        obs = Observability()
        build_pipeline(count=500).run(
            executor="process",
            config=RunConfig(obs=obs, workers=2, metrics_interval_s=0.001),
        )
        # The parent-side probe reads the shared clock slots and the
        # status board's progress total.
        assert all("progress" in s for s in obs.metrics_samples)
        finals = obs.metrics_samples[-1]["contexts"]
        assert finals["sink"] > 0

    def test_sampling_without_obs_still_feeds_sink(self):
        seen = []
        build_pipeline().run(
            config=RunConfig(metrics_interval_s=0.002, metrics_sink=seen.append)
        )
        assert seen and "metrics" not in seen[-1]
