"""CSF tensor tests, including hypothesis round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sam.tensor import (
    CompressedLevel,
    CsfTensor,
    DenseLevel,
    random_dense,
    random_sparse_matrix,
)


class TestLevels:
    def test_dense_fiber(self):
        level = DenseLevel(3)
        coords, refs = level.fiber(2)
        assert coords == [0, 1, 2]
        assert refs == [6, 7, 8]

    def test_dense_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DenseLevel(-1)

    def test_compressed_fiber(self):
        level = CompressedLevel(seg=[0, 2, 2, 3], crd=[1, 4, 0])
        assert level.fiber(0) == ([1, 4], [0, 1])
        assert level.fiber(1) == ([], [])
        assert level.fiber(2) == ([0], [2])
        assert level.fiber_count() == 3

    def test_compressed_validation(self):
        with pytest.raises(ValueError):
            CompressedLevel(seg=[1, 2], crd=[0])  # must start at 0
        with pytest.raises(ValueError):
            CompressedLevel(seg=[0, 5], crd=[0])  # must end at len(crd)
        with pytest.raises(ValueError):
            CompressedLevel(seg=[0, 2, 1], crd=[0, 1])  # nondecreasing


class TestFromDense:
    def test_csr_structure(self):
        dense = np.array([[0.0, 1.5, 0.0], [0.0, 0.0, 0.0], [2.5, 0.0, 3.5]])
        t = CsfTensor.from_dense(dense, "dc")
        # Outer dense level keeps all rows; inner level compresses.
        inner = t.level(1)
        assert inner.fiber(0) == ([1], [0])
        assert inner.fiber(1) == ([], [])
        assert inner.fiber(2) == ([0, 2], [1, 2])
        assert list(t.vals) == [1.5, 2.5, 3.5]

    def test_dcsr_drops_empty_rows(self):
        dense = np.array([[0.0, 1.0], [0.0, 0.0], [2.0, 0.0]])
        t = CsfTensor.from_dense(dense, "cc")
        outer = t.level(0)
        assert outer.fiber(0) == ([0, 2], [0, 1])

    def test_format_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CsfTensor.from_dense(np.zeros((2, 2)), "ccc")

    def test_bad_format_char_rejected(self):
        with pytest.raises(ValueError):
            CsfTensor.from_dense(np.zeros((2, 2)), "cx")

    def test_nnz(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0]])
        assert CsfTensor.from_dense(dense, "cc").nnz == 2


class TestGenerators:
    def test_density_bounds_checked(self):
        with pytest.raises(ValueError):
            random_dense(3, 3, density=1.5)

    def test_density_zero_gives_empty(self):
        assert random_dense(4, 4, density=0.0).sum() == 0

    def test_seeded_reproducibility(self):
        a = random_dense(5, 5, density=0.5, seed=3)
        b = random_dense(5, 5, density=0.5, seed=3)
        assert np.array_equal(a, b)

    def test_random_sparse_matrix_roundtrip(self):
        t = random_sparse_matrix(6, 4, density=0.4, seed=2)
        assert t.shape == (6, 4)
        assert t.to_dense().shape == (6, 4)

    def test_no_stored_zeros(self):
        t = random_sparse_matrix(10, 10, density=0.5, seed=5)
        assert np.all(t.vals != 0)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 100),
    formats=st.sampled_from(["dd", "dc", "cd", "cc"]),
)
def test_property_matrix_roundtrip(rows, cols, density, seed, formats):
    """Property: from_dense -> to_dense is the identity for any format."""
    dense = random_dense(rows, cols, density=density, seed=seed)
    assert np.allclose(CsfTensor.from_dense(dense, formats).to_dense(), dense)


@settings(max_examples=20, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 100),
    formats=st.sampled_from(["dcc", "ccc", "ddc", "dcd"]),
)
def test_property_tensor3_roundtrip(shape, density, seed, formats):
    dense = random_dense(*shape, density=density, seed=seed)
    assert np.allclose(CsfTensor.from_dense(dense, formats).to_dense(), dense)
