"""Command-line profile tooling: ``python -m repro.obs report|diff``.

``report`` analyzes a trace or profile JSON file and prints the critical
path with blocked-time attribution; ``diff`` compares two profile
reports (any mix of Chrome trace exports, bare profile dicts, or BENCH
payloads carrying a ``profile`` section) and exits non-zero when a
critical-path segment regressed beyond the tolerance — the gate CI runs
against the checked-in benchmark baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from .profile import (
    ProfileReport,
    describe_diff,
    diff_profiles,
    resolve_profile,
)


def _load(path: str) -> dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot load {path}: {exc}")


def _profile_or_die(path: str, epochs: int | None = None) -> dict[str, Any]:
    document = _load(path)
    if "traceEvents" in document and not (
        (document.get("otherData") or {}).get("channels")
    ):
        # Older exports (and third-party Chrome traces) carry no embedded
        # channel metadata; producer/unblocker pairing then falls back to
        # timestamp bisection, which is approximate for latency channels.
        print(
            f"warning: {path} has no embedded channel metadata "
            "(otherData.channels); critical-path attribution falls back "
            "to timestamp bisection and may be approximate",
            file=sys.stderr,
        )
    if epochs is not None and "traceEvents" in document:
        from .profile import events_from_chrome_trace, profile_trace

        events, channels = events_from_chrome_trace(document)
        if events:
            return profile_trace(
                events, channel_meta=channels, epochs=epochs
            ).to_dict()
    profile = resolve_profile(document)
    if profile is None:
        raise SystemExit(
            f"error: {path} holds neither a trace export, a profile "
            "report, nor a BENCH payload with a profile section"
        )
    return profile


def _cmd_report(ns: argparse.Namespace) -> int:
    profile = _profile_or_die(ns.trace, epochs=ns.epochs)
    if ns.json:
        print(json.dumps(profile, indent=2, sort_keys=True, default=str))
    else:
        print(ProfileReport.from_dict(profile).describe())
    return 0


def _cmd_diff(ns: argparse.Namespace) -> int:
    base = _profile_or_die(ns.base)
    other = _profile_or_die(ns.other)
    diff = diff_profiles(base, other, tolerance=ns.tolerance)
    if ns.json:
        print(json.dumps(diff, indent=2, sort_keys=True, default=str))
    else:
        print(describe_diff(diff))
    return 0 if diff["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Profile reporting and run diffing over exported traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="print the critical path of a trace/profile JSON"
    )
    report.add_argument("trace", help="Chrome trace export or profile JSON")
    report.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="utilization timeline bins (recomputes from trace events)",
    )
    report.add_argument("--json", action="store_true", help="emit raw JSON")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser(
        "diff", help="compare two profile reports; exit 1 on regression"
    )
    diff.add_argument("base", help="baseline trace/profile JSON")
    diff.add_argument("other", help="candidate trace/profile JSON")
    diff.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="regression threshold as a multiple of the baseline (default 3.0)",
    )
    diff.add_argument("--json", action="store_true", help="emit raw JSON")
    diff.set_defaults(func=_cmd_diff)

    ns = parser.parse_args(argv)
    return ns.func(ns)


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:  # e.g. piped into `head`
        code = 0
    sys.exit(code)
