"""repro — a Python reproduction of the Dataflow Abstract Machine (DAM).

DAM (ISCA 2024) is a parallel simulator framework for dataflow systems
built on three ideas: a CSP-with-time (CSPT) programming interface,
asynchronous distributed time with pairwise synchronization, and
time-bridging channels.  This package reimplements the framework and every
substrate its evaluation depends on — see DESIGN.md for the inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import Context, IncrCycles, ProgramBuilder

    class Doubler(Context):
        def __init__(self, inp, out):
            super().__init__()
            self.inp, self.out = inp, out
            self.register(inp, out)

        def run(self):
            while True:
                value = yield self.inp.dequeue()
                yield IncrCycles(1)
                yield self.out.enqueue(2 * value)

See ``examples/quickstart.py`` for a complete runnable program.
"""

from .core import (
    INFINITY,
    AdvanceTo,
    Channel,
    ChannelClosed,
    ChannelElement,
    Context,
    ContextFault,
    DamError,
    DeadlockError,
    Dequeue,
    Enqueue,
    FaultInjected,
    FaultPlan,
    FunctionContext,
    GraphConstructionError,
    IncrCycles,
    Peek,
    Program,
    ProgramBuilder,
    Receiver,
    RunTimeoutError,
    Sender,
    ShuttleStall,
    SimulationError,
    Time,
    TimeCell,
    ViewTime,
    WaitUntil,
    WorkerCrashError,
    WorkerKill,
    make_channel,
    peak_simulated_occupancy,
)
from .obs import (
    MetricsRegistry,
    Observability,
    StallReport,
    TraceCollector,
    TraceEvent,
)

# Executor machinery resolves lazily through repro.core (PEP 562): a bare
# ``import repro`` must not import any runtime, so ``Program.run`` can
# report an unknown executor — or pick one — without the import cost.
_LAZY_EXECUTOR = {
    "Executor",
    "RunSummary",
    "RunConfig",
    "register_executor",
    "registered_names",
    "resolve_executor",
    "FairPolicy",
    "FifoPolicy",
    "SequentialExecutor",
    "ThreadedExecutor",
    "FreeThreadedExecutor",
    "ProcessExecutor",
    "PartitionPlan",
    "ClusterSpec",
    "channel_weights",
    "plan_partition",
    "plan_clusters",
}


def __getattr__(name: str):
    if name in _LAZY_EXECUTOR:
        from importlib import import_module

        value = getattr(import_module(".core", __name__), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LAZY_EXECUTOR)


__version__ = "1.0.0"

__all__ = [
    "INFINITY",
    "AdvanceTo",
    "Channel",
    "ChannelClosed",
    "ChannelElement",
    "Context",
    "ContextFault",
    "DamError",
    "DeadlockError",
    "Dequeue",
    "Enqueue",
    "FairPolicy",
    "FaultInjected",
    "FaultPlan",
    "FifoPolicy",
    "FreeThreadedExecutor",
    "FunctionContext",
    "GraphConstructionError",
    "IncrCycles",
    "MetricsRegistry",
    "Observability",
    "PartitionPlan",
    "Peek",
    "ProcessExecutor",
    "Program",
    "ProgramBuilder",
    "Receiver",
    "RunConfig",
    "RunSummary",
    "RunTimeoutError",
    "Sender",
    "SequentialExecutor",
    "ShuttleStall",
    "SimulationError",
    "StallReport",
    "ThreadedExecutor",
    "WorkerCrashError",
    "WorkerKill",
    "register_executor",
    "registered_names",
    "resolve_executor",
    "Time",
    "TimeCell",
    "TraceCollector",
    "TraceEvent",
    "ViewTime",
    "WaitUntil",
    "channel_weights",
    "make_channel",
    "peak_simulated_occupancy",
    "plan_partition",
    "__version__",
]
