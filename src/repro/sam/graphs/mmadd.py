"""MMAdd: elementwise sparse matrix addition X = B + C.

The TACO-lowered SAM graph: both operands are scanned level by level, a
Union joiner at each level merges the iteration spaces (emitting ABSENT
references for the missing side), and the value ALU adds the two gathered
value streams (ABSENT reads as 0.0).

Graph (11 primitive contexts)::

    rootB -> scanBi \\                    / scanBj \\
              unionI -> (crd_i)          unionJ -> (crd_j)
    rootC -> scanCi /         \\ scanCj /        \\
                                                   arrayB, arrayC -> add -> vals
"""

from __future__ import annotations

from ..primitives import (
    ArrayVals,
    BinaryAlu,
    FiberLookup,
    FiberWrite,
    RootSource,
    Union,
    ValsWrite,
)
from ..primitives.alu import add
from ..tensor import CsfTensor
from .common import KernelGraph, SamGraphBuilder


def build_mmadd(
    b: CsfTensor,
    c: CsfTensor,
    depth: int | None = None,
    latency: int = 1,
    timing=None,
) -> KernelGraph:
    """Build the X = B + C graph for two 2-d 'cc'-format tensors."""
    if b.shape != c.shape:
        raise ValueError(f"shape mismatch: {b.shape} vs {c.shape}")
    g = SamGraphBuilder(depth=depth, latency=latency, timing=timing)
    t = g.timing

    # Roots and level-0 scans.
    rootb_s, rootb_r = g.ch("rootB")
    rootc_s, rootc_r = g.ch("rootC")
    g.add(RootSource(rootb_s, timing=t, name="rootB"))
    g.add(RootSource(rootc_s, timing=t, name="rootC"))

    cbi_s, cbi_r = g.ch("cBi")
    rbi_s, rbi_r = g.ch("rBi")
    cci_s, cci_r = g.ch("cCi")
    rci_s, rci_r = g.ch("rCi")
    g.add(FiberLookup(b.level(0), rootb_r, cbi_s, rbi_s, timing=t, name="scanBi"))
    g.add(FiberLookup(c.level(0), rootc_r, cci_s, rci_s, timing=t, name="scanCi"))

    # Level-0 union.
    ci_s, ci_r = g.ch("crd_i")
    rbu_s, rbu_r = g.ch("rBi_u")
    rcu_s, rcu_r = g.ch("rCi_u")
    g.add(
        Union(cbi_r, rbi_r, cci_r, rci_r, ci_s, rbu_s, rcu_s, timing=t, name="unionI")
    )

    # Level-1 scans (ABSENT refs scan as empty fibers).
    cbj_s, cbj_r = g.ch("cBj")
    rbj_s, rbj_r = g.ch("rBj")
    ccj_s, ccj_r = g.ch("cCj")
    rcj_s, rcj_r = g.ch("rCj")
    g.add(FiberLookup(b.level(1), rbu_r, cbj_s, rbj_s, timing=t, name="scanBj"))
    g.add(FiberLookup(c.level(1), rcu_r, ccj_s, rcj_s, timing=t, name="scanCj"))

    # Level-1 union.
    cj_s, cj_r = g.ch("crd_j")
    rbv_s, rbv_r = g.ch("rBj_u")
    rcv_s, rcv_r = g.ch("rCj_u")
    g.add(
        Union(cbj_r, rbj_r, ccj_r, rcj_r, cj_s, rbv_s, rcv_s, timing=t, name="unionJ")
    )

    # Value gathers and the add ALU.
    vb_s, vb_r = g.ch("vB")
    vc_s, vc_r = g.ch("vC")
    vx_s, vx_r = g.ch("vX")
    g.add(ArrayVals(b.vals, rbv_r, vb_s, timing=t, name="arrayB"))
    g.add(ArrayVals(c.vals, rcv_r, vc_s, timing=t, name="arrayC"))
    g.add(BinaryAlu(vb_r, vc_r, vx_s, add, timing=t, name="addALU"))

    # Output writers.
    fw_i = g.add(FiberWrite(ci_r, timing=t, name="write_i"))
    fw_j = g.add(FiberWrite(cj_r, timing=t, name="write_j"))
    vw = g.add(ValsWrite(vx_r, timing=t, name="write_vals"))

    return KernelGraph(g.build(), [fw_i, fw_j], vw, b.shape)
