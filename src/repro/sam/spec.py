"""Declarative program specs: SAM graphs constructible from data.

Every entry point so far hands :meth:`Program.run` *live objects* — a
graph wired out of generator contexts, numpy tensors, an ``obs`` bundle.
That is the right interface in-process and a dead end on a wire: you
cannot ship a generator to a run server.  :class:`ProgramSpec` is the
serializable half of the API redesign — a named graph from a registry
over :mod:`repro.sam.graphs`, tensor *payloads* (encoded CSF levels /
dense arrays), builder parameters, and a
:meth:`~repro.core.executor.config.RunConfig.to_dict` wire config::

    spec = ProgramSpec.from_graph_inputs(
        "spmspm", {"b": b, "c_transposed": ct}, params={"depth": 4},
    )
    wire = spec.to_json()                  # ship it
    kernel = ProgramSpec.from_json(wire).build()
    summary = kernel.run(config=spec.run_config())

Graphs resolve through a registry exactly like executors do
(:mod:`repro.core.executor.registry`): builtin kernels are declared as
lazy ``name -> (module, attr, tensor-args)`` entries, third-party graphs
join via the :func:`register_graph` decorator, and an unknown name raises
a :class:`SpecError` listing every registered graph.

Two keys summarize a spec at different granularities:

* :meth:`ProgramSpec.shape_key` hashes only what determines the *built
  graph's topology* — graph name, params, and each tensor's structural
  signature (kind/formats/shape, never values).  Two requests with the
  same shape key build isomorphic programs, which is what lets the serve
  layer's plan cache replay partition placements across requests.
* :meth:`ProgramSpec.payload_key` hashes the entire spec including
  tensor values and config — the identity used to coalesce identical
  in-flight requests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Optional

import numpy as np

from ..core.errors import DamError
from ..core.executor.config import RunConfig
from .tensor import CompressedLevel, CsfTensor, DenseLevel, Level


class SpecError(DamError):
    """A program spec is invalid: unknown graph, malformed tensor
    payload, or unknown field.  Raised at the API boundary, before any
    simulation starts (the declarative sibling of
    :class:`~repro.core.errors.GraphConstructionError`)."""


# ----------------------------------------------------------------------
# Tensor payload encoding.
# ----------------------------------------------------------------------


def encode_tensor(value: Any) -> dict[str, Any]:
    """Encode a :class:`CsfTensor` or dense ndarray as a JSON-clean dict.

    Values travel as Python floats, which round-trip through JSON
    bit-for-bit (shortest-round-trip repr), so a decoded tensor is
    numerically identical to the original — the property the serve
    equivalence tests pin down.
    """
    if isinstance(value, CsfTensor):
        levels: list[dict[str, Any]] = []
        for level in value.levels:
            if isinstance(level, DenseLevel):
                levels.append({"kind": "dense", "size": level.size})
            elif isinstance(level, CompressedLevel):
                levels.append(
                    {"kind": "compressed", "seg": list(level.seg), "crd": list(level.crd)}
                )
            else:  # pragma: no cover - no other level kinds exist
                raise SpecError(f"cannot encode level {level!r}")
        return {
            "kind": "csf",
            "shape": list(value.shape),
            "levels": levels,
            "vals": [float(v) for v in value.vals],
        }
    array = np.asarray(value)
    if array.dtype.kind not in "fiub":
        raise SpecError(f"cannot encode array of dtype {array.dtype}")
    return {
        "kind": "dense",
        "shape": list(array.shape),
        "vals": [float(v) for v in np.asarray(array, dtype=np.float64).ravel()],
    }


def decode_tensor(data: dict[str, Any]) -> Any:
    """Rebuild the tensor encoded by :func:`encode_tensor`."""
    if not isinstance(data, dict) or "kind" not in data:
        raise SpecError(f"malformed tensor payload: {data!r}")
    kind = data["kind"]
    if kind == "dense":
        shape = tuple(data["shape"])
        return np.asarray(data["vals"], dtype=np.float64).reshape(shape)
    if kind == "csf":
        levels: list[Level] = []
        for entry in data["levels"]:
            if entry.get("kind") == "dense":
                levels.append(DenseLevel(entry["size"]))
            elif entry.get("kind") == "compressed":
                levels.append(CompressedLevel(entry["seg"], entry["crd"]))
            else:
                raise SpecError(f"malformed level payload: {entry!r}")
        vals = np.asarray(data["vals"], dtype=np.float64)
        return CsfTensor(levels, vals, tuple(data["shape"]))
    raise SpecError(f"unknown tensor payload kind {kind!r} (want 'csf' or 'dense')")


def _tensor_signature(data: dict[str, Any]) -> dict[str, Any]:
    """The structural (value-free) part of an encoded tensor payload."""
    if data.get("kind") == "csf":
        formats = "".join(
            "d" if level.get("kind") == "dense" else "c"
            for level in data.get("levels", ())
        )
        return {"kind": "csf", "formats": formats, "shape": list(data.get("shape", ()))}
    return {"kind": data.get("kind"), "shape": list(data.get("shape", ()))}


# ----------------------------------------------------------------------
# Graph registry.
# ----------------------------------------------------------------------

#: Builtin kernel graphs, resolvable without importing their modules —
#: ``name -> (module, attr, required tensor argument names)``.
_BUILTIN_GRAPHS: dict[str, tuple[str, str, tuple[str, ...]]] = {
    "spmspm": (".graphs.spmspm", "build_spmspm", ("b", "c_transposed")),
    "spmspm_gustavson": (
        ".graphs.spmspm_gustavson",
        "build_spmspm_gustavson",
        ("b", "c"),
    ),
    "mmadd": (".graphs.mmadd", "build_mmadd", ("b", "c")),
    "sddmm": (".graphs.sddmm", "build_sddmm", ("s", "a_dense", "b_dense")),
    "mha": (".graphs.mha", "build_sparse_mha", ("mask", "q", "k", "v")),
}

#: Graphs registered at runtime via :func:`register_graph`.
_GRAPH_REGISTRY: dict[str, tuple[Callable[..., Any], tuple[str, ...]]] = {}


def register_graph(
    name: str, *, tensors: tuple[str, ...] = ()
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: make ``builder`` constructible from a :class:`ProgramSpec`.

    ``tensors`` names the builder arguments that receive decoded tensor
    payloads (everything else comes from ``spec.params``).  The builder
    may return a :class:`~repro.sam.graphs.common.KernelGraph` or a bare
    :class:`~repro.core.program.Program`.
    """

    def decorate(builder: Callable[..., Any]) -> Callable[..., Any]:
        _GRAPH_REGISTRY[name] = (builder, tuple(tensors))
        return builder

    return decorate


def registered_graphs() -> list[str]:
    """Every spec-constructible graph name (no imports performed)."""
    return sorted(set(_BUILTIN_GRAPHS) | set(_GRAPH_REGISTRY))


def _graph_entry(name: str) -> tuple[Callable[..., Any], tuple[str, ...]]:
    entry = _GRAPH_REGISTRY.get(name)
    if entry is not None:
        return entry
    builtin = _BUILTIN_GRAPHS.get(name)
    if builtin is not None:
        module_name, attr, tensors = builtin
        module = import_module(module_name, __package__)
        return getattr(module, attr), tensors
    raise SpecError(
        f"unknown graph {name!r}; registered graphs: "
        f"{', '.join(registered_graphs())}"
    )


# ----------------------------------------------------------------------
# The spec itself.
# ----------------------------------------------------------------------

_SPEC_FIELDS = ("graph", "tensors", "params", "config", "executor")


@dataclass
class ProgramSpec:
    """A wire-serializable description of one simulation run.

    ``graph`` names a registered kernel builder; ``tensors`` maps the
    builder's tensor arguments to encoded payloads
    (:func:`encode_tensor`); ``params`` carries the remaining builder
    keyword arguments (``depth``, ``latency``, a ``timing`` dict, ...);
    ``config`` is a strict :meth:`RunConfig.to_dict` wire dict and
    ``executor`` the registered executor name the run should use.
    """

    graph: str
    tensors: dict[str, Any] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    executor: str = "sequential"

    # -- construction ---------------------------------------------------

    @classmethod
    def from_graph_inputs(
        cls,
        graph: str,
        tensors: dict[str, Any],
        params: Optional[dict[str, Any]] = None,
        config: Any = None,
        executor: str = "sequential",
    ) -> "ProgramSpec":
        """Build a spec from live inputs, encoding tensors and config.

        ``config`` may be a :class:`RunConfig` (serialized via
        :meth:`~RunConfig.to_dict`) or an already-wire dict.  ``params``
        values of type :class:`~repro.sam.primitives.TimingParams` are
        encoded as dicts.
        """
        from .primitives import TimingParams

        encoded_params: dict[str, Any] = {}
        for key, value in (params or {}).items():
            if isinstance(value, TimingParams):
                value = {"ii": value.ii, "stop_bubble": value.stop_bubble}
            encoded_params[key] = value
        if config is None:
            config_dict: dict[str, Any] = {}
        elif isinstance(config, RunConfig):
            config_dict = config.to_dict()
        else:
            config_dict = RunConfig.from_dict(config).to_dict()
        return cls(
            graph=graph,
            tensors={name: encode_tensor(t) for name, t in tensors.items()},
            params=encoded_params,
            config=config_dict,
            executor=executor,
        )

    # -- wire format ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph,
            "tensors": self.tensors,
            "params": self.params,
            "config": self.config,
            "executor": self.executor,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProgramSpec":
        """Strict inverse of :meth:`to_dict`: unknown keys raise a
        :class:`SpecError` listing the valid fields."""
        if not isinstance(data, dict):
            raise SpecError(f"ProgramSpec.from_dict wants a dict, got {data!r}")
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise SpecError(
                f"unknown ProgramSpec field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(_SPEC_FIELDS)}"
            )
        if "graph" not in data:
            raise SpecError("ProgramSpec requires a 'graph' name")
        # Validate the config eagerly so a bad request fails at the API
        # boundary with the strict RunConfig error, not mid-run.
        config = data.get("config", {})
        RunConfig.from_dict(config)
        return cls(
            graph=data["graph"],
            tensors=dict(data.get("tensors", {})),
            params=dict(data.get("params", {})),
            config=dict(config),
            executor=data.get("executor", "sequential"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProgramSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- identity -------------------------------------------------------

    def shape_key(self) -> str:
        """Hash of everything that determines the built graph's topology.

        Tensor *values* are excluded: two requests multiplying different
        matrices of the same shape/format share a shape key, and with it
        a cached partition plan.
        """
        basis = {
            "graph": self.graph,
            "params": self.params,
            "tensors": {
                name: _tensor_signature(payload)
                for name, payload in sorted(self.tensors.items())
            },
        }
        return _digest(basis)

    def payload_key(self) -> str:
        """Hash of the entire spec — the request-coalescing identity."""
        return _digest(self.to_dict())

    # -- build and run --------------------------------------------------

    def run_config(self) -> RunConfig:
        """The spec's :class:`RunConfig`, strictly validated."""
        return RunConfig.from_dict(self.config)

    def build(self) -> Any:
        """Construct the graph: decode tensors, resolve the builder, call
        it.  Returns whatever the builder returns (a
        :class:`~repro.sam.graphs.common.KernelGraph` for the builtin
        kernels, possibly a bare :class:`Program` for registered ones).
        """
        builder, tensor_args = _graph_entry(self.graph)
        missing = [name for name in tensor_args if name not in self.tensors]
        if missing:
            raise SpecError(
                f"graph {self.graph!r} is missing tensor argument(s) "
                f"{', '.join(map(repr, missing))}; required: "
                f"{', '.join(tensor_args)}"
            )
        stray = sorted(set(self.tensors) - set(tensor_args))
        if stray:
            raise SpecError(
                f"graph {self.graph!r} got unexpected tensor(s) "
                f"{', '.join(map(repr, stray))}; required: "
                f"{', '.join(tensor_args)}"
            )
        kwargs = {
            name: decode_tensor(self.tensors[name]) for name in tensor_args
        }
        for key, value in self.params.items():
            if key == "timing" and isinstance(value, dict):
                from .primitives import TimingParams

                value = TimingParams(**value)
            kwargs[key] = value
        try:
            return builder(**kwargs)
        except TypeError as exc:
            raise SpecError(
                f"graph {self.graph!r} rejected its parameters: {exc}"
            ) from exc

    def run(self, *, obs: Any = None, config: Optional[RunConfig] = None):
        """Convenience: build and execute, returning ``(built, summary)``.

        ``config`` overrides the spec's own wire config when given (the
        serve layer passes a tenant-clamped, plan-augmented config).
        """
        built = self.build()
        effective = config if config is not None else self.run_config()
        program = built.program if hasattr(built, "program") else built
        summary = program.run(self.executor, config=effective, obs=obs)
        if hasattr(built, "summary"):
            built.summary = summary
        return built, summary


def build_spec(spec: "ProgramSpec | dict[str, Any] | str") -> Any:
    """Resolve ``spec`` (a :class:`ProgramSpec`, wire dict, or JSON
    string) and build its graph."""
    if isinstance(spec, str):
        spec = ProgramSpec.from_json(spec)
    elif isinstance(spec, dict):
        spec = ProgramSpec.from_dict(spec)
    return spec.build()


def _digest(value: Any) -> str:
    canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
