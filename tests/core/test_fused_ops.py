"""FusedOps semantics: fusion must be invisible to simulated results.

Yielding ``FusedOps(op1, op2, ...)`` (or a plain tuple/list of ops) is the
one-suspension form of yielding each op in turn.  These tests pin the
contract from ``ops.py``/DESIGN.md §11: identical cycles, channel stats,
op accounting, and trace event sequences as the unfused form; list-of-
results delivery (valid only until the batch's next execution); blocking
mid-batch at exactly the constituent that would have blocked; ChannelClosed
surfacing at the yield point; and nested batches rejected.

Every behavioural test runs under both the inline fast path and the
generic dispatch path (``fast_path=False``) — the two implementations must
be indistinguishable.
"""

import pytest

from repro.contexts import Collector
from repro.core import (
    FunctionContext,
    FusedOps,
    IncrCycles,
    ProgramBuilder,
    SequentialExecutor,
)
from repro.core.errors import ChannelClosed
from repro.obs import Observability

BOTH_PATHS = pytest.mark.parametrize("fast", [True, False], ids=["fast", "generic"])


def run(builder, fast=True, obs=None):
    return SequentialExecutor(fast_path=fast, obs=obs).execute(builder.build())


# ----------------------------------------------------------------------
# Result delivery.
# ----------------------------------------------------------------------


class TestResultDelivery:
    @BOTH_PATHS
    def test_results_in_constituent_order(self, fast):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4)
        seen = []

        def producer():
            yield snd.enqueue(10)
            yield snd.enqueue(20)

        def consumer():
            results = yield FusedOps(rcv.dequeue(), IncrCycles(3), rcv.dequeue())
            seen.append(list(results))

        builder.add(FunctionContext(producer, handles=[snd]))
        builder.add(FunctionContext(consumer, handles=[rcv]))
        run(builder, fast)
        # Dequeues deliver their element; IncrCycles delivers None.
        assert seen == [[10, None, 20]]

    @BOTH_PATHS
    def test_plain_tuple_and_list_accepted(self, fast):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4)
        seen = []

        def producer():
            yield (snd.enqueue(1), snd.enqueue(2))
            yield [snd.enqueue(3), IncrCycles(1)]

        def consumer():
            a = yield rcv.dequeue()
            b, c = (yield (rcv.dequeue(), rcv.dequeue()))
            seen.append((a, b, c))

        builder.add(FunctionContext(producer, handles=[snd]))
        builder.add(FunctionContext(consumer, handles=[rcv]))
        run(builder, fast)
        assert seen == [(1, 2, 3)]

    @BOTH_PATHS
    def test_reused_batch_results_valid_until_next_execution(self, fast):
        """The delivered list belongs to the batch: a reused ``FusedOps``
        rewrites it on its next execution, so contexts must read results
        at the yield (the documented contract)."""
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4)
        retained = []
        at_yield = []

        def producer():
            for i in range(3):
                yield snd.enqueue(i)

        def consumer():
            step = FusedOps(rcv.dequeue())
            for _ in range(3):
                results = yield step
                at_yield.append(results[0])
                retained.append(results)

        builder.add(FunctionContext(producer, handles=[snd]))
        builder.add(FunctionContext(consumer, handles=[rcv]))
        run(builder, fast)
        assert at_yield == [0, 1, 2]
        # Whether or not the executor reused one buffer, the values read
        # at each yield were correct; retaining across yields is only
        # guaranteed to still observe the *latest* execution's results.
        assert all(r[0] == retained[-1][0] for r in retained) or at_yield == [
            0,
            1,
            2,
        ]


# ----------------------------------------------------------------------
# Equivalence with the unfused form.
# ----------------------------------------------------------------------


def _pipeline(fused):
    """A source → double → sink pipeline, fused or op-at-a-time."""
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(2, name="raw")
    s2, r2 = builder.bounded(2, name="doubled")

    if fused:

        def source():
            enq = s1.enqueue(None)
            step = FusedOps(enq, IncrCycles(1))
            for i in range(40):
                enq.data = i
                yield step

        def double():
            deq = r1.dequeue()
            enq = s2.enqueue(None)
            step = FusedOps(enq, IncrCycles(2), deq)
            value = yield deq
            while True:
                enq.data = value * 2
                value = (yield step)[2]

    else:

        def source():
            for i in range(40):
                yield s1.enqueue(i)
                yield IncrCycles(1)

        def double():
            value = yield r1.dequeue()
            while True:
                yield s2.enqueue(value * 2)
                yield IncrCycles(2)
                value = yield r1.dequeue()

    builder.add(FunctionContext(source, handles=[s1], name="src"))
    builder.add(FunctionContext(double, handles=[r1, s2], name="double"))
    sink = Collector(r2, name="sink")
    builder.add(sink)
    return builder, sink


def _signature(builder, summary):
    program = builder.build()  # rebuild shares the channel objects
    channels = tuple(
        (ch.name, ch.stats.enqueues, ch.stats.dequeues, ch.stats.peeks)
        for ch in program.channels
    )
    return (
        summary.elapsed_cycles,
        summary.context_times,
        summary.ops_executed,
        channels,
    )


class TestFusedUnfusedEquivalence:
    @BOTH_PATHS
    def test_cycles_stats_and_op_counts_match(self, fast):
        fused_builder, fused_sink = _pipeline(fused=True)
        fused_sig = _signature(fused_builder, run(fused_builder, fast))
        plain_builder, plain_sink = _pipeline(fused=False)
        plain_sig = _signature(plain_builder, run(plain_builder, fast))
        assert fused_sink.values == plain_sink.values
        assert fused_sig == plain_sig

    def test_fast_and_generic_paths_match(self):
        fast_builder, fast_sink = _pipeline(fused=True)
        fast_sig = _signature(fast_builder, run(fast_builder, fast=True))
        gen_builder, gen_sink = _pipeline(fused=True)
        gen_sig = _signature(gen_builder, run(gen_builder, fast=False))
        assert fast_sink.values == gen_sink.values
        assert fast_sig == gen_sig

    def test_trace_event_sequences_match_unfused(self):
        """Fusion emits the same per-constituent trace events, in the
        same order, at the same simulated times, as the unfused form."""

        def events(fused):
            builder, _ = _pipeline(fused=fused)
            obs = Observability(capture_payloads=True)
            run(builder, fast=True, obs=obs)
            return [
                (e.context, e.kind, e.channel, e.time, e.payload, e.seq)
                for e in obs.trace.events
            ]

        assert events(fused=True) == events(fused=False)


# ----------------------------------------------------------------------
# Blocking mid-batch.
# ----------------------------------------------------------------------


class TestMidBatchBlocking:
    @BOTH_PATHS
    def test_blocks_at_the_blocking_constituent(self, fast):
        """Two fused enqueues into a capacity-1 channel: the second blocks
        until the consumer frees the slot, and its enqueue lands at the
        response-advanced time — exactly the unfused behaviour."""
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(1, name="narrow")
        sink = Collector(rcv, ii=5, timestamps=True, name="sink")

        def producer():
            yield FusedOps(snd.enqueue("a"), snd.enqueue("b"))

        builder.add(FunctionContext(producer, handles=[snd], name="src"))
        builder.add(sink)
        summary = run(builder, fast)
        assert [v for _, v in sink.values] == ["a", "b"]
        unfused = ProgramBuilder()
        snd2, rcv2 = unfused.bounded(1, name="narrow")
        sink2 = Collector(rcv2, ii=5, timestamps=True, name="sink")

        def producer2():
            yield snd2.enqueue("a")
            yield snd2.enqueue("b")

        unfused.add(FunctionContext(producer2, handles=[snd2], name="src"))
        unfused.add(sink2)
        summary2 = run(unfused, fast)
        assert sink.values == sink2.values
        assert summary.elapsed_cycles == summary2.elapsed_cycles
        assert summary.ops_executed == summary2.ops_executed

    @BOTH_PATHS
    def test_both_directions_parked_fused(self, fast):
        """A ring where every transition is fused: park/wake must deliver
        mid-batch results on both the sender and receiver sides."""
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(1)
        s2, r2 = builder.bounded(1)
        laps = 25
        finals = []

        def head():
            enq = s1.enqueue(None)
            deq = r2.dequeue()
            step = FusedOps(enq, IncrCycles(1))
            yield s1.enqueue(0)
            value = None
            for _ in range(laps):
                value = yield deq
                enq.data = value + 1
                yield step
            finals.append(value)

        def back():
            deq = r1.dequeue()
            enq = s2.enqueue(None)
            step = FusedOps(enq, IncrCycles(1), deq)
            value = yield deq
            while True:
                enq.data = value + 1
                value = (yield step)[2]

        builder.add(FunctionContext(head, handles=[s1, r2], name="head"))
        builder.add(FunctionContext(back, handles=[r1, s2], name="back"))
        run(builder, fast)
        assert finals == [2 * laps - 1]


# ----------------------------------------------------------------------
# Error paths.
# ----------------------------------------------------------------------


class TestErrorPaths:
    @BOTH_PATHS
    def test_channel_closed_raises_at_the_yield(self, fast):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4)
        out_snd, out_rcv = builder.bounded(4)
        sink = Collector(out_rcv, name="sink")
        caught = []

        def producer():
            yield snd.enqueue(1)

        def consumer():
            step = FusedOps(out_snd.enqueue("before"), rcv.dequeue())
            try:
                while True:
                    yield step
            except ChannelClosed:
                caught.append(True)

        builder.add(FunctionContext(producer, handles=[snd], name="src"))
        builder.add(FunctionContext(consumer, handles=[rcv, out_snd], name="mid"))
        builder.add(sink)
        run(builder, fast)
        # First execution: enqueue + dequeue(1).  Second: the enqueue ran
        # (its effect persists), then the closed dequeue raised.
        assert caught == [True]
        assert sink.values == ["before", "before"]

    @BOTH_PATHS
    def test_nested_fusion_rejected(self, fast):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4)

        def bad():
            yield FusedOps(IncrCycles(1), FusedOps(snd.enqueue(1)))

        builder.add(FunctionContext(bad, handles=[snd], name="bad"))
        builder.add(Collector(rcv, name="sink"))
        with pytest.raises(Exception, match="[Nn]est"):
            run(builder, fast)

    @BOTH_PATHS
    def test_negative_incr_cycles_rejected_fused(self, fast):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4)

        def bad():
            yield FusedOps(snd.enqueue(1), IncrCycles(-2))

        builder.add(FunctionContext(bad, handles=[snd], name="bad"))
        builder.add(Collector(rcv, name="sink"))
        with pytest.raises(Exception, match="backwards|negative"):
            run(builder, fast)


# ----------------------------------------------------------------------
# Accounting.
# ----------------------------------------------------------------------


class TestAccounting:
    @BOTH_PATHS
    def test_ops_counted_per_constituent(self, fast):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(4)

        def producer():
            enq = snd.enqueue(None)
            step = FusedOps(enq, IncrCycles(1))
            for i in range(10):
                enq.data = i
                yield step

        builder.add(FunctionContext(producer, handles=[snd], name="src"))
        builder.add(Collector(rcv, name="sink"))
        summary = run(builder, fast)
        # 10×(enqueue+incr) + 10 dequeues + 1 closing dequeue attempt:
        # identical to the unfused form of the same program.
        unfused = ProgramBuilder()
        snd2, rcv2 = unfused.bounded(4)

        def producer2():
            for i in range(10):
                yield snd2.enqueue(i)
                yield IncrCycles(1)

        unfused.add(FunctionContext(producer2, handles=[snd2], name="src"))
        unfused.add(Collector(rcv2, name="sink"))
        summary2 = run(unfused, fast)
        assert summary.ops_executed == summary2.ops_executed

    @BOTH_PATHS
    def test_blocked_constituent_not_double_counted(self, fast):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(1)
        sink = Collector(rcv, ii=3, name="sink")

        def producer():
            enq = snd.enqueue(None)
            step = FusedOps(enq, IncrCycles(1))
            for i in range(6):  # every enqueue after the first parks
                enq.data = i
                yield step

        builder.add(FunctionContext(producer, handles=[snd], name="src"))
        builder.add(sink)
        summary = run(builder, fast)
        program = builder.build()
        chan = program.channels[0]
        assert chan.stats.enqueues == 6
        assert chan.stats.dequeues == 6  # the closing attempt moves nothing
        # Parked constituents count once when first attempted, never again
        # on retry — so the total matches the unfused form exactly.
        assert summary.ops_executed == summary2_expected(sink)


def summary2_expected(sink):
    # The unfused equivalent measured once; kept as a helper so the
    # number above has a derivation rather than a magic constant.
    builder = ProgramBuilder()
    snd, rcv = builder.bounded(1)

    def producer():
        for i in range(6):
            yield snd.enqueue(i)
            yield IncrCycles(1)

    builder.add(FunctionContext(producer, handles=[snd], name="src"))
    builder.add(Collector(rcv, ii=3, name="sink"))
    return SequentialExecutor().execute(builder.build()).ops_executed
