"""Typed serve-layer errors, representable on the wire.

Admission failures are *control decisions*, not crashes: the server sheds
load with a typed :class:`AdmissionError` (HTTP 429) instead of queueing
unboundedly, and the client rebuilds the same exception type from the
wire form so callers can ``except TenantBudgetError`` on either side of
the socket.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.errors import DamError
from ..sam.spec import SpecError


class ServeError(DamError):
    """Base class for serve-layer failures."""

    #: HTTP status the server maps this error family to.
    http_status = 500

    def to_wire(self) -> dict[str, Any]:
        return {"type": type(self).__name__, "message": str(self)}


class AdmissionError(ServeError):
    """The run queue is full: the request was shed, not queued.

    ``depth`` is the number of requests already admitted (running plus
    queued) and ``limit`` the admission ceiling
    (``max_concurrent + queue_limit``).  Clients should back off and
    retry; the server's state is untouched.
    """

    http_status = 429

    def __init__(
        self,
        message: str = "run queue is full",
        *,
        depth: Optional[int] = None,
        limit: Optional[int] = None,
    ):
        if depth is not None and limit is not None:
            message = f"{message} ({depth}/{limit} requests in flight)"
        super().__init__(message)
        self.depth = depth
        self.limit = limit

    def to_wire(self) -> dict[str, Any]:
        wire = super().to_wire()
        wire.update(depth=self.depth, limit=self.limit)
        return wire


class TenantBudgetError(AdmissionError):
    """A per-tenant budget rejected the request: too many in-flight runs
    or the tenant's cumulative run-seconds budget is exhausted."""

    def __init__(
        self,
        tenant: str,
        reason: str,
        *,
        depth: Optional[int] = None,
        limit: Optional[int] = None,
    ):
        super().__init__(
            f"tenant {tenant!r} rejected: {reason}", depth=depth, limit=limit
        )
        self.tenant = tenant
        self.reason = reason

    def to_wire(self) -> dict[str, Any]:
        wire = super().to_wire()
        wire.update(tenant=self.tenant, reason=self.reason)
        return wire


def error_from_wire(wire: dict[str, Any]) -> Exception:
    """Rebuild the typed exception a server shipped as JSON.

    Unknown types degrade to a plain :class:`ServeError` carrying the
    message — the client never crashes on a newer server's error type.
    """
    kind = wire.get("type")
    message = wire.get("message", "server error")
    if kind == "TenantBudgetError":
        return TenantBudgetError(
            wire.get("tenant", "<unknown>"),
            wire.get("reason", message),
            depth=wire.get("depth"),
            limit=wire.get("limit"),
        )
    if kind == "AdmissionError":
        error = AdmissionError(message)
        error.depth = wire.get("depth")
        error.limit = wire.get("limit")
        return error
    if kind == "SpecError":
        return SpecError(message)
    return ServeError(f"{kind}: {message}" if kind else message)
