"""Standard streaming attention (Fig. 4a): the O(N)-memory pipeline.

The exp stream fans out to the row-sum reduction and to channel *C*, the
row buffer the divide unit replays once the sum arrives.  Peak throughput
(and deadlock freedom, in this blocking formulation) requires
``depth(C) >= N + alpha`` where alpha covers the pipeline slack between
the producer's initiation interval and the consumer's latency; every
other channel needs only constant depth.
"""

from __future__ import annotations

import numpy as np

from ..contexts import Broadcast
from ..core.program import Program, ProgramBuilder
from .blocks import (
    AttentionParams,
    Divide,
    ExpUnit,
    RowCollector,
    RowSum,
    ScoreProducer,
    WeightedVSum,
)

#: Constant slack on top of N for the row buffer (the paper measured
#: alpha = 22 for its hardware parameters; ours is smaller because the
#: pipeline between the exp fanout and the divide is shorter).
DEFAULT_ALPHA = 22


class StandardAttention:
    """A built Fig. 4a pipeline; run then read ``result()``."""

    def __init__(self, program: Program, sink: RowCollector, params: AttentionParams):
        self.program = program
        self.sink = sink
        self.params = params
        self.summary = None

    def run(self, executor: str = "sequential", *, config=None, obs=None):
        self.summary = self.program.run(executor=executor, config=config, obs=obs)
        return self.summary

    def result(self) -> np.ndarray:
        return self.sink.result()


def build_standard_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    buffer_depth: int | None = None,
    small_depth: int = 8,
    ii: int = 1,
    score_ii: int | None = None,
) -> StandardAttention:
    """Build the standard pipeline.

    ``buffer_depth`` sizes channel *C* (default ``N + DEFAULT_ALPHA``;
    undersize it to study the deadlock).  ``small_depth`` is the constant
    depth of every other channel.  ``score_ii`` is the MAC-limited QK
    unit's initiation interval (defaults to ``ii``; pass ``d`` for the
    one-MAC hardware model used by the Fig. 5/6 comparison).
    """
    n, d = q.shape
    params = AttentionParams(seq_len=n, head_dim=d, ii=ii)
    if buffer_depth is None:
        buffer_depth = n + DEFAULT_ALPHA

    builder = ProgramBuilder()
    s_scores, r_scores = builder.bounded(small_depth, name="scores")
    s_exp, r_exp = builder.bounded(small_depth, name="exp")
    s_esum, r_esum = builder.bounded(small_depth, name="e_sum")
    s_ebuf, r_ebuf = builder.bounded(buffer_depth, name="C_row_buffer")
    s_sums, r_sums = builder.bounded(small_depth, name="row_sums")
    s_w, r_w = builder.bounded(small_depth, name="weights")
    s_out, r_out = builder.bounded(small_depth, name="out_rows")

    builder.add(ScoreProducer(s_scores, q, k, params, ii=score_ii))
    builder.add(ExpUnit(r_scores, s_exp, params))
    builder.add(Broadcast(r_exp, [s_esum, s_ebuf], name="e_bcast"))
    builder.add(RowSum(r_esum, s_sums, params))
    builder.add(Divide(r_ebuf, r_sums, s_w, params))
    builder.add(WeightedVSum(r_w, s_out, v, params))
    sink = builder.add(RowCollector(r_out, params))
    return StandardAttention(builder.build(), sink, params)
