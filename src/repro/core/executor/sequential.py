"""Deterministic cooperative executor.

This executor runs a DAM program on a single OS thread by cooperatively
scheduling context generators.  It is *event-queue-free* in the paper's
sense: there is no ordered global event structure.  Instead it keeps a
ready queue of runnable contexts and, per channel, at most one blocked
sender and one blocked receiver; channel activity wakes the opposite
endpoint directly (the cooperative analog of the paper's pairwise
synchronization).

Because channel semantics are pure functions of simulated state
(:mod:`repro.core.channel`), the simulated results are identical to the
threaded executor's — only real execution order differs.  The sequential
executor is also the vehicle for the scheduling-policy study (Table I):
policies change the real interleaving and the switch counters, never the
simulated outcome.

Deadlock detection falls out naturally: if the ready queue empties while
unfinished contexts remain, the blocked set *is* the deadlock cycle and is
reported as a stall report naming each blocked context, the channel it is
parked on, and both endpoint clocks — the debugging story behind the
paper's undersized-channel observations.

Observability: attach a :class:`repro.obs.Observability` (``obs=``) to
record per-context trace buffers and fold run metrics; the legacy
``tracer=`` keyword still accepts a :class:`repro.core.trace.Tracer`.

Dispatch is a ``type(op) → bound handler`` table plus an *inline fast
path* (DESIGN.md §11): when tracing is off, no ``WaitUntil`` waiter is
registered, and no ``max_ops`` valve is set, the slice loop executes
enqueue/dequeue/IncrCycles — and :class:`~repro.core.ops.FusedOps`
batches of them — inline against the channels' flavor-specialized
methods, paying zero per-op tracing/waiter conditionals.  Every other
configuration (and every rare op) goes through the generic handlers,
which perform the identical semantic transitions with the bookkeeping
checks in place.
"""

from __future__ import annotations

import inspect as _inspect
import time as _wallclock
from typing import Any, Optional

from ...obs import Observability, fold_channel_metrics, fold_context_metrics
from ...obs.stall import StallReport, stall_for
from .. import checkpoint as _ckpt
from ..channel import _EMPTY, Channel
from ..context import Context
from ..errors import (
    ChannelClosed,
    DeadlockError,
    RunTimeoutError,
    SimulationError,
    unpack_exception,
)
from ..ops import (
    AdvanceTo,
    Dequeue,
    Enqueue,
    FusedOps,
    IncrCycles,
    Op,
    Peek,
    ViewTime,
    WaitUntil,
)
from ..program import Program
from ..time import TimeCell
from .base import Executor, RunSummary
from .registry import register_executor
from .policies import FifoPolicy, SchedulingPolicy, make_policy

_READY = 0
_BLOCKED = 1
_DONE = 2

#: When a deadline or fault plan forces bounded slices, this is the slice
#: length used where the policy does not set one: long enough that the
#: per-slice wall-clock check is noise, short enough that a deadline is
#: honoured within milliseconds.
_BOUNDED_TIMESLICE = 2048


class _DeadlineExpired(BaseException):
    """Internal control flow: the schedule loop hit ``deadline_s``.

    A ``BaseException`` so user ``except Exception`` clauses inside context
    bodies can never swallow it; converted to
    :class:`~repro.core.errors.RunTimeoutError` (with a partial summary
    attached) in :meth:`SequentialExecutor.execute`.
    """

#: Sentinel returned by :meth:`SequentialExecutor._fuse_fast` when the
#: batch parked mid-way (fused state saved on the context).
_PARKED = object()

#: Constituent kind codes in a compiled :class:`FusedOps` plan.
_K_DEQ = 0
_K_ENQ = 1
_K_INCR = 2
_K_OTHER = 3


def _compile_plan(subs):
    """Compile a fused batch into ``((kind, op, channel), ...)`` entries
    plus a reusable pre-sized results buffer.

    Resolving each constituent's class and channel binding once per
    *op object* (ops are pre-allocated and re-yielded by the hot
    generators) instead of once per *execution* keeps the inner loop of
    :meth:`SequentialExecutor._run_slice_fast` down to an unpack and an
    int compare before the open-coded transition.  The buffer is what
    the generator receives at the yield: Enqueue/IncrCycles slots stay
    ``None`` forever, Dequeue (and rare-op) slots are rewritten on every
    execution — which is why it can be reused without clearing, and why
    the delivered list is only valid until the batch's next execution.
    """
    entries = []
    for sub in subs:
        skind = sub.__class__
        if skind is Dequeue or skind is Enqueue:
            ch = (
                sub.receiver.channel
                if skind is Dequeue
                else sub.sender.channel
            )
            # The deques and stats objects are created once per channel
            # and only ever mutated in place (close_* uses .clear()), so
            # their identity can be latched here.  Shuttle proxies lack
            # one side's deque — they are code-2 (method path), so their
            # cached fields are never read.
            entries.append((
                _K_DEQ if skind is Dequeue else _K_ENQ,
                sub,
                ch,
                getattr(ch, "_data", None),
                getattr(ch, "_resps", None),
                ch.stats,
            ))
        elif skind is IncrCycles and sub.cycles >= 0:
            # The cycle count rides in the channel slot — constituents
            # are immutable once compiled (see FusedOps), so it can be
            # latched like the channel bindings above.
            entries.append((_K_INCR, sub, sub.cycles, None, None, None))
        else:
            # Rare constituents — including a (bogus) negative
            # IncrCycles, which the generic handler rejects with the
            # proper error.
            entries.append((_K_OTHER, sub, None, None, None, None))
    return tuple(entries), [None] * len(entries)


class _ContextState:
    """Executor-side bookkeeping for one context."""

    __slots__ = (
        "context",
        "gen",
        "status",
        "in_ready",
        "pending_value",
        "pending_exc",
        "retry_op",
        "blocked_detail",
        "buffer",
        "ops",
        "wall_seconds",
        "fused_ops",
        "fused_index",
        "fused_results",
        "fused_plan",
        "superblock",
        "sb_ready",
        "sb_cell",
        "sb_send",
    )

    def __init__(self, context: Context):
        self.context = context
        self.gen = context.run()
        self.status = _READY
        self.in_ready = False
        self.pending_value: Any = None
        self.pending_exc: BaseException | None = None
        # An op that blocked and must be re-attempted before resuming the
        # generator (its result is then delivered via pending_value).
        self.retry_op: Op | None = None
        self.blocked_detail: str = ""
        # Observability: per-context trace buffer and metric tallies.
        self.buffer: Any = None
        self.ops = 0
        self.wall_seconds = 0.0
        # Mid-fusion suspension: the constituent at ``fused_index``
        # blocked (``retry_op`` set) or had its result delivered by a
        # waker; ``fused_results`` holds the completed prefix.
        self.fused_ops: Any = None
        self.fused_index = 0
        self.fused_results: Any = None
        # The batch's compiled plan entries (fast path only), so the
        # resume runner can stay plan-based.
        self.fused_plan: Any = None
        # Superblock membership (DESIGN.md §15): the compiled cluster
        # driver, the local-ready-deque flag, and the scratch time cell
        # member turns run against (the real clock when it is a plain
        # TimeCell, a shadow cell published per turn otherwise).
        self.superblock: Any = None
        self.sb_ready = False
        self.sb_cell: Any = None
        self.sb_send: Any = None  # cached gen.send, bound at attach


@register_executor("sequential")
class SequentialExecutor(Executor):
    """Cooperative, single-threaded, deterministic executor.

    Parameters
    ----------
    policy:
        Ready-queue discipline: ``"fifo"`` (run-to-block, default) or
        ``"fair"`` (timesliced with wakeup boosting), or a
        :class:`~repro.core.executor.policies.SchedulingPolicy` instance.
    max_ops:
        Optional safety valve: abort with :class:`SimulationError` after
        this many operations (guards against runaway non-terminating
        programs in tests).
    tracer:
        Legacy: a :class:`repro.core.trace.Tracer` (now an alias of
        :class:`repro.obs.TraceCollector`); wrapped into ``obs``.
    obs:
        A :class:`repro.obs.Observability` collecting the run's trace
        and/or metrics.
    fast_path:
        When True (default) and the run is eligible (no tracing, no
        ``max_ops``, no registered ``WaitUntil`` waiter), slices run the
        inline fast loop.  Set False to force every op — including each
        :class:`FusedOps` constituent — through the generic handler
        table one at a time; the simulated results are identical by
        construction, which is what the equivalence tests assert.
    superblocks:
        Cluster compilation (DESIGN.md §15): ``"auto"`` (default)
        compiles the cold clusters observed traffic marks as live,
        ``"on"``/``True`` compiles every multi-member cluster,
        ``"off"``/``False``/``None`` disables.  Requires the fast path;
        simulated results are identical either way.
    """

    name = "sequential"

    def __init__(
        self,
        policy: str | SchedulingPolicy = "fifo",
        max_ops: Optional[int] = None,
        tracer=None,
        obs: Optional[Observability] = None,
        fast_path: bool = True,
        deadline_s: Optional[float] = None,
        faults=None,
        metrics_interval_s: Optional[float] = None,
        metrics_sink=None,
        superblocks: Any = "auto",
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
    ):
        self.policy = make_policy(policy)
        self.superblocks = superblocks
        self.max_ops = max_ops
        self.deadline_s = deadline_s
        self.faults = faults
        self.metrics_interval_s = metrics_interval_s
        self.metrics_sink = metrics_sink
        self.checkpoint_interval_s = checkpoint_interval_s
        self.checkpoint_path = checkpoint_path
        #: Live capture cadence (a CheckpointTimer) while a checkpointed
        #: run is executing; None otherwise.
        self._ckpt_timer: Any = None
        #: True while this run was restored from a checkpoint (suppresses
        #: superblock compilation, whose sb_* state is not capturable).
        self._resuming = False
        #: Context-fault triggers still pending, keyed by context name
        #: (populated per run from ``faults.context_faults``).
        self._fault_map: dict = {}
        self._deadline_at: Optional[float] = None
        self._bounded = False
        #: Subclass hook: process-executor workers set this so the
        #: schedule loop never takes the run-to-block FIFO branch — a
        #: worker must return from every slice to service its shuttles
        #: and observe the cross-process abort flag (a never-blocking
        #: context would otherwise spin one endless slice, deaf to both).
        self._always_bounded = False
        if obs is None and tracer is not None:
            obs = Observability.from_trace(tracer)
        self.obs = obs
        #: The active trace collector (None when tracing is off).
        self.tracer = obs.trace if obs is not None else None
        self.fast_path = fast_path
        self.context_switches = 0
        self.wakeups = 0
        self.preemptions = 0
        self.ops_executed = 0
        # type(op) -> bound handler; replaces the historical if-elif
        # dispatch chain.  FusedOps/tuple/list appear only so a *nested*
        # batch fails loudly — top-level batches are unrolled by the
        # slice loops before dispatch.
        self._handlers = {
            Enqueue: self._h_enqueue,
            Dequeue: self._h_dequeue,
            Peek: self._h_peek,
            IncrCycles: self._h_incr_cycles,
            AdvanceTo: self._h_advance_to,
            ViewTime: self._h_view_time,
            WaitUntil: self._h_wait_until,
            FusedOps: self._h_nested_fusion,
            tuple: self._h_nested_fusion,
            list: self._h_nested_fusion,
        }
        self._any_time_waiters = False
        self._fast = False
        self._fast_capable = False

    # ------------------------------------------------------------------

    def execute(self, program: Program) -> RunSummary:
        start = _wallclock.perf_counter()
        # Kept under a dedicated name: worker subclasses already use
        # ``_program`` for the full shipped program while calling
        # ``execute`` with an empty one (they claim work lazily).
        self._run_program = program
        self._ckpt_timer = None
        if self.checkpoint_path is not None:
            _ckpt.validate_checkpointable(program)
            _ckpt.clean_stale_temps(self.checkpoint_path)
            interval = self.checkpoint_interval_s
            self._ckpt_timer = _ckpt.CheckpointTimer(
                0.0 if interval is None else interval,
                start_epoch=getattr(program, "_resume_epoch", 0),
            )
        resume_records = self._take_resume_records(program)
        self._resuming = resume_records is not None
        states = {id(ctx): _ContextState(ctx) for ctx in program.contexts}
        # Waiters on another context's clock: target id -> [(threshold, state)].
        self._time_waiters: dict[int, list[tuple[Any, _ContextState]]] = {}
        # Fast-path flag: most programs never use WaitUntil, so the per-op
        # waiter check is skipped entirely until one registers.
        self._any_time_waiters = False
        self._states = states

        obs = self.obs
        trace = obs.trace if obs is not None else None
        collect_wall = obs is not None and obs.metrics is not None
        if trace is not None:
            for state in states.values():
                state.buffer = trace.buffer(state.context.name)

        # Inline fast path eligibility is computed once; it only drops
        # (and later recovers) around registered WaitUntil waiters, so
        # the fast loop itself carries no tracing/waiter/max_ops checks.
        self._fast_capable = (
            self.fast_path and trace is None and self.max_ops is None
        )
        self._fast = self._fast_capable

        # Deadlines and context faults both need the loop to come up for
        # air: force bounded slices (run-to-block would otherwise let one
        # busy context starve the wall-clock check and the fault trigger).
        self._fault_map = (
            dict(self.faults.context_faults)
            if self.faults is not None and self.faults.context_faults
            else {}
        )
        self._deadline_at = (
            start + self.deadline_s if self.deadline_s is not None else None
        )
        self._bounded = (
            self._always_bounded
            or self._deadline_at is not None
            or bool(self._fault_map)
            # Checkpoint capture happens between bounded slices: the
            # run-to-block FIFO branch would let one busy context starve
            # the quiescent-cut opportunity for the whole run.
            or self._ckpt_timer is not None
        )
        if self._bounded and self.policy.timeslice is None:
            self.policy.timeslice = _BOUNDED_TIMESLICE

        if resume_records is not None:
            self._apply_resume_records(program, states, resume_records)

        self._compile_superblocks(program, states, collect_wall)

        policy = self.policy
        for ctx in program.contexts:
            policy.push(states[id(ctx)], woken=False)

        sampler = self._start_sampler(
            self.metrics_interval_s, self._sampler_probe(states), self.metrics_sink
        )
        try:
            self._schedule_loop(collect_wall)
            unfinished = [st for st in states.values() if st.status != _DONE]
            if unfinished:
                report = self._stall_report(unfinished)
                if obs is not None:
                    obs.stall_report = report
                raise DeadlockError(report.lines())
        except _DeadlineExpired:
            blocked = [st for st in states.values() if st.status == _BLOCKED]
            report = self._stall_report(blocked)
            if obs is not None:
                obs.stall_report = report
            raise RunTimeoutError(
                self.deadline_s,
                executor=self.name,
                summary=self._partial_summary(program, start),
                stall_report=report,
            ) from None
        finally:
            # On any abort (SimulationError, DeadlockError, max_ops), close
            # the generators of every context that did not run to completion
            # so their ``finally:`` blocks execute now, not at interpreter
            # shutdown (where GeneratorExit/ResourceWarning noise leaks into
            # test output).  Closing an exhausted generator is a no-op, so
            # the happy path pays one cheap call per context.
            self._close_generators(states)
            self._stop_sampler(sampler, obs)

        elapsed = self._makespan(program)
        summary = RunSummary(
            elapsed_cycles=elapsed,
            real_seconds=_wallclock.perf_counter() - start,
            context_times={
                ctx.name: ctx.finish_time for ctx in program.contexts
            },
            executor=self.name,
            policy=self.policy.name,
            context_switches=self.context_switches,
            wakeups=self.wakeups,
            preemptions=self.preemptions,
            ops_executed=self.ops_executed,
            metrics=self._fold_metrics(program, states),
        )
        self._attach_profile(summary, program, obs)
        return summary

    def _sampler_probe(self, states: dict[int, "_ContextState"]):
        """Build the read-only closure the live metrics sampler calls:
        context clocks, the op counter, and — when enabled — the metrics
        registry.  Reads only; it cannot perturb the simulated run."""
        obs = self.obs
        registry = obs.metrics if obs is not None else None

        def probe() -> dict:
            sample: dict = {
                "contexts": {
                    state.context.name: state.context.time.now()
                    for state in states.values()
                },
                "ops_executed": self.ops_executed,
            }
            if registry is not None:
                sample["metrics"] = registry.snapshot()
            return sample

        return probe

    def _compile_superblocks(
        self, program: Program, states: dict, collect_wall: bool
    ) -> int:
        """Attach cluster drivers (DESIGN.md §15) when this run can use
        them: the fast path must be available (superblock turns are the
        fast loop, across contexts) and no fault plan may target a
        context (fault triggers are checked at slice granularity by the
        generic scheduler).  ``"auto"`` additionally declines when
        per-context wall-clock metrics are being collected, since a
        whole superblock step would be attributed to its entry member;
        ``"on"`` forces compilation regardless.
        """
        from .superblock import compile_superblocks, normalize_mode

        mode = normalize_mode(self.superblocks)
        if mode == "off":
            return 0
        if not self._fast_capable or self._fault_map:
            return 0
        # Superblock sb_* scheduling state is not part of any context's
        # declared checkpoint attributes, so checkpointed (and resumed)
        # runs stay on the generic/fast per-context paths — results are
        # bit-identical either way by the §15 equivalence guarantee.
        if self._ckpt_timer is not None or self._resuming:
            return 0
        if mode == "auto" and collect_wall:
            return 0
        return compile_superblocks(self, program, states, mode)

    def _schedule_loop(self, collect_wall: bool) -> None:
        """Drain the ready queue; ask :meth:`_idle` for more work when it
        empties (subclass hook — the process executor's workers poll their
        cross-process shuttles there)."""
        policy = self.policy
        previous: _ContextState | None = None
        deadline_at = self._deadline_at
        ckpt_timer = self._ckpt_timer
        if (
            policy.__class__ is FifoPolicy
            and not collect_wall
            and not self._bounded
        ):
            # Run-to-block FIFO (the default): drive the raw deque
            # directly, skipping the per-slice __bool__/pop method calls
            # and the timeslice attribute load.
            queue = policy._queue
            run_slice = self._run_slice
            while True:
                while queue:
                    state = queue.popleft()
                    state.in_ready = False
                    if state.status != _READY:
                        continue
                    if previous is not None and state is not previous:
                        self.context_switches += 1
                    previous = state
                    run_slice(state, None)
                    if state.status == _READY:
                        self.preemptions += 1
                        policy.push(state, woken=False)
                if not self._idle():
                    return
        while True:
            while policy:
                state = policy.pop()
                if state.status != _READY:
                    continue
                if previous is not None and state is not previous:
                    self.context_switches += 1
                previous = state
                if collect_wall:
                    slice_start = _wallclock.perf_counter()
                    self._run_slice(state, policy.timeslice)
                    state.wall_seconds += _wallclock.perf_counter() - slice_start
                else:
                    self._run_slice(state, policy.timeslice)
                if deadline_at is not None and (
                    _wallclock.perf_counter() >= deadline_at
                ):
                    raise _DeadlineExpired
                if ckpt_timer is not None and ckpt_timer.due():
                    # Between slices every context's in-flight value has
                    # been written back to its state record and no op is
                    # mid-transition: a quiescent cut by construction.
                    self._capture_checkpoint()
                if state.status == _READY:
                    # Slice expired without blocking: preempted.
                    self.preemptions += 1
                    policy.push(state, woken=False)
            if not self._idle():
                return

    def _idle(self) -> bool:
        """Called when the ready queue empties; return True if new work may
        have arrived.  The purely local executor has no external event
        sources, so an empty queue is final (run complete or deadlocked)."""
        return False

    @staticmethod
    def _close_generators(states: dict[int, "_ContextState"]) -> None:
        for state in states.values():
            if state.status != _DONE:
                try:
                    state.gen.close()
                except Exception:  # noqa: BLE001 - cleanup must not mask the abort
                    pass

    # ------------------------------------------------------------------
    # Checkpoint capture and resume (DESIGN.md §17).
    # ------------------------------------------------------------------

    def _take_resume_records(self, program: Program):
        """Consume (one-shot) the resume records a checkpoint restore left
        on the program; subclasses that receive records another way (the
        process executor's forked workers) override this."""
        return program.__dict__.pop("_resume_records", None)

    def _context_record(self, state: _ContextState) -> dict:
        """Classify one context's suspension into a resume record."""
        ctx = state.context
        if state.status == _DONE:
            return _ckpt.record_done(ctx)
        if (
            state.retry_op is None
            and state.fused_ops is None
            and state.pending_exc is None
            and _inspect.getgeneratorstate(state.gen) == _inspect.GEN_CREATED
        ):
            # Truly unstarted.  The generator-state check is load-bearing:
            # a delivered Enqueue result is None, indistinguishable from
            # "never primed" by pending_value alone.
            return _ckpt.record_fresh(ctx)
        if state.fused_ops is not None:
            index = state.fused_index
            executed = state.retry_op is None
            return _ckpt.record_suspended(
                ctx,
                executed=executed,
                pending_value=state.pending_value if executed else None,
                pending_exc=state.pending_exc,
                fused_index=index,
                fused_prefix=list(state.fused_results[:index]),
                fused_len=len(state.fused_ops),
            )
        executed = state.retry_op is None
        return _ckpt.record_suspended(
            ctx,
            executed=executed,
            pending_value=state.pending_value if executed else None,
            pending_exc=state.pending_exc,
        )

    def _capture_checkpoint(self) -> None:
        """Snapshot the whole program at the current between-slices cut."""
        program = self._run_program
        states = self._states
        records = {
            slot: self._context_record(states[id(ctx)])
            for slot, ctx in enumerate(program.contexts)
        }
        obs = self.obs
        registry = obs.metrics if obs is not None else None
        checkpoint = _ckpt.Checkpoint.capture(
            program,
            self._ckpt_timer.epoch + 1,
            records,
            metrics=registry.dump_state() if registry is not None else None,
            executor=self.name,
        )
        checkpoint.save(self.checkpoint_path)
        self._ckpt_timer.mark()

    def _apply_resume_records(
        self, program: Program, states: dict, records: dict
    ) -> None:
        """Start each context from its checkpointed suspension.

        Contexts restored as ``fresh`` — and those parked on an
        *un-executed* simple op — need no machinery at all: the fresh
        generator re-derives the suspended yield from the restored
        attributes and the scheduler primes and (re-)attempts it
        naturally.  Executed suspensions prime the generator here,
        discard the re-derived first yield, and inject the recorded
        result; fused suspensions additionally rebuild the mid-batch
        bookkeeping that :meth:`_resume_pending` already knows how to
        finish (``fused_plan=None`` routes it through the generic
        :meth:`_run_fusion`).
        """
        for slot, ctx in enumerate(program.contexts):
            record = records.get(slot)
            if record is None:
                continue
            self._apply_one_resume_record(ctx, states[id(ctx)], record)

    def _apply_one_resume_record(self, ctx, state, record: dict) -> None:
        """Rebuild one context's scheduler bookkeeping from its record
        (shared with the process executor's lazy cluster activation)."""
        kind = record["kind"]
        if kind == "done":
            state.status = _DONE
            return
        if kind == "fresh":
            return
        executed = record["executed"]
        fused_index = record.get("fused_index")
        if fused_index is None and not executed:
            return  # plain re-derive + re-attempt
        try:
            first_op = state.gen.send(None)
        except BaseException as failure:  # noqa: BLE001 - contract breach
            raise SimulationError(
                ctx.name,
                RuntimeError(
                    "context did not re-derive its suspended yield on "
                    f"resume (resumable-state contract breach): {failure!r}"
                ),
            ) from failure
        packed = record.get("pending_exc")
        pending_exc = unpack_exception(packed) if packed is not None else None
        if fused_index is None:
            # Simple executed op: deliver the recorded outcome at the
            # (discarded) re-derived yield.
            state.pending_value = record["pending_value"]
            state.pending_exc = pending_exc
            return
        ops_seq = first_op.ops if first_op.__class__ is FusedOps else first_op
        if not isinstance(ops_seq, (tuple, list)):
            raise SimulationError(
                ctx.name,
                RuntimeError(
                    "resumed context yielded a non-fused op where the "
                    f"checkpoint recorded a fused batch: {first_op!r}"
                ),
            )
        results = list(record["fused_prefix"])
        results.extend([None] * (record["fused_len"] - len(results)))
        state.fused_ops = ops_seq
        state.fused_index = fused_index
        state.fused_results = results
        state.fused_plan = None  # forces the generic _run_fusion path
        if executed:
            state.pending_value = record["pending_value"]
            state.pending_exc = pending_exc
        else:
            state.retry_op = ops_seq[fused_index]

    # ------------------------------------------------------------------

    def _partial_summary(self, program: Program, start: float) -> RunSummary:
        """Best-effort summary for an aborted run: finish times where a
        context completed, current (lower-bound) clocks elsewhere."""
        return RunSummary(
            elapsed_cycles=self._makespan(program),
            real_seconds=_wallclock.perf_counter() - start,
            context_times={
                ctx.name: (
                    ctx.finish_time
                    if ctx.finish_time is not None
                    else ctx.time.now()
                )
                for ctx in program.contexts
            },
            executor=self.name,
            policy=self.policy.name,
            context_switches=self.context_switches,
            wakeups=self.wakeups,
            preemptions=self.preemptions,
            ops_executed=self.ops_executed,
        )

    def _stall_report(self, unfinished: list[_ContextState]) -> StallReport:
        """Diagnose the blocked set: who is parked, on which channel, and
        at what simulated time each endpoint sits."""
        stalls = []
        for state in unfinished:
            op = state.retry_op
            channel = peer = None
            if isinstance(op, Enqueue):
                channel = op.sender.channel
            elif isinstance(op, (Dequeue, Peek)):
                channel = op.receiver.channel
            elif isinstance(op, WaitUntil):
                peer = op.context
            stalls.append(
                stall_for(
                    state.context,
                    state.blocked_detail or "not started",
                    channel=channel,
                    peer=peer,
                )
            )
        return StallReport(stalls)

    def _fold_metrics(
        self, program: Program, states: dict[int, _ContextState]
    ) -> Optional[dict]:
        if self.obs is None or self.obs.metrics is None:
            return None
        registry = self.obs.metrics
        fold_channel_metrics(registry, program.channels)
        for state in states.values():
            ctx = state.context
            fold_context_metrics(
                registry,
                ctx.name,
                ops=state.ops,
                finish_time=ctx.finish_time,
                wall_seconds=state.wall_seconds,
            )
        registry.counter("executor_context_switches").inc(self.context_switches)
        registry.counter("executor_wakeups").inc(self.wakeups)
        registry.counter("executor_preemptions").inc(self.preemptions)
        registry.counter("executor_ops").inc(self.ops_executed)
        return registry.snapshot()

    # ------------------------------------------------------------------

    def _run_slice(self, state: _ContextState, timeslice: Optional[int]) -> None:
        """Run one context until it blocks, finishes, or exhausts its slice."""
        remaining = timeslice if timeslice is not None else -1

        # Fault injection (chaos testing): once the victim context's op
        # counter passes the trigger, abandon whatever it was parked on and
        # throw FaultInjected into its generator at the next resume.  The
        # trigger is evaluated at slice granularity — bounded slices are
        # forced whenever a fault plan is present, so it fires promptly.
        if self._fault_map:
            fault = self._fault_map.get(state.context.name)
            if fault is not None and state.ops >= fault.after_ops:
                del self._fault_map[state.context.name]
                state.retry_op = None
                state.fused_ops = None
                state.fused_results = None
                state.fused_plan = None
                state.pending_value = None
                state.pending_exc = fault.make()

        # Superblock member: hand the whole slice to the cluster driver
        # (which performs its own resume handling and budget accounting).
        # Falls through to the generic path whenever the fast path is
        # unavailable — e.g. while a WaitUntil waiter is registered.
        if state.superblock is not None and self._fast:
            state.superblock.drive(self, state, remaining)
            return

        # A context woken from a blocking op must first complete that op
        # (re-attempt it, or — if a waker delivered the result directly —
        # just resume) and, if the op was a FusedOps constituent, finish
        # the rest of the batch.
        if state.retry_op is not None or state.fused_ops is not None:
            if not self._resume_pending(state):
                return  # blocked again
            if state.status == _DONE:
                return

        if self._fast:
            self._run_slice_fast(state, remaining)
        else:
            self._run_slice_generic(state, remaining)

    def _resume_pending(self, state: _ContextState) -> bool:
        """Complete the op a woken context was parked on; return False if
        it (or a later constituent of its fused batch) blocks again."""
        op = state.retry_op
        if op is not None:
            state.retry_op = None
            if not self._dispatch(state, op):
                return False  # blocked again; fused state (if any) kept
        if state.fused_ops is None:
            return True
        # Mid-fusion: the constituent at fused_index just completed (via
        # the retry above, or its result was delivered by a waker into
        # pending_value).  Collect it and run the rest of the batch.
        ops_seq = state.fused_ops
        index = state.fused_index
        results = state.fused_results
        entries = state.fused_plan
        state.fused_ops = None
        state.fused_results = None
        state.fused_plan = None
        if state.pending_exc is not None:
            return True  # batch abandoned; exception thrown at the yield
        results[index] = state.pending_value
        if index + 1 == len(ops_seq):
            # Parked on the *last* constituent — the common case for the
            # canonical (enqueue..., tick, dequeue) kits: the batch is
            # already complete, deliver the results without re-entering
            # a fusion runner.
            state.pending_value = results
            return True
        state.pending_value = None
        if self._fast and entries is not None:
            clock = state.context.time
            plain = clock.__class__ is TimeCell and clock.on_advance is None
            outcome = self._fuse_fast(
                state, clock, plain, ops_seq, entries, index + 1, results
            )
            if outcome is _PARKED:
                return False
            if outcome.__class__ is list:
                state.pending_value = outcome
            else:
                state.pending_exc = outcome
            return True
        return self._run_fusion(state, ops_seq, index + 1, results)

    def _run_fusion(self, state, ops_seq, index: int, results: list) -> bool:
        """Execute fused constituents ``ops_seq[index:]`` through the
        generic handlers, writing each result into the pre-sized
        ``results`` list; return False (parking mid-batch) on a block."""
        total = len(ops_seq)
        max_ops = self.max_ops
        while index < total:
            sub = ops_seq[index]
            self.ops_executed += 1
            state.ops += 1
            if max_ops is not None and self.ops_executed > max_ops:
                raise SimulationError(
                    state.context.name,
                    RuntimeError(f"exceeded max_ops={max_ops}"),
                )
            if not self._dispatch(state, sub):
                state.fused_ops = ops_seq
                state.fused_index = index
                state.fused_results = results
                return False
            if state.pending_exc is not None:
                return True  # e.g. ChannelClosed: abandon the batch
            results[index] = state.pending_value
            state.pending_value = None
            index += 1
        state.pending_value = results
        return True

    def _run_slice_generic(
        self, state: _ContextState, remaining: int
    ) -> None:
        """Reference slice loop: every op through the handler table, with
        tracing, time-waiter, and max_ops bookkeeping in place."""
        gen_send = state.gen.send
        gen_throw = state.gen.throw
        ctx = state.context
        max_ops = self.max_ops
        while remaining != 0:
            remaining -= 1
            try:
                if state.pending_exc is not None:
                    exc = state.pending_exc
                    state.pending_exc = None
                    op = gen_throw(exc)
                else:
                    value = state.pending_value
                    state.pending_value = None
                    op = gen_send(value)
            except StopIteration:
                self._finish(state)
                return
            except ChannelClosed:
                # An uncaught ChannelClosed is graceful wind-down.
                self._finish(state)
                return
            except DeadlockError:
                raise
            except BaseException as failure:  # noqa: BLE001 - reported faithfully
                self._finish(state)
                raise SimulationError(ctx.name, failure) from failure

            kind = op.__class__
            if kind is FusedOps:
                if not self._run_fusion(
                    state, op.ops, 0, [None] * len(op.ops)
                ):
                    return  # blocked mid-batch
                continue
            if kind is tuple or kind is list:
                if not self._run_fusion(state, op, 0, [None] * len(op)):
                    return
                continue
            self.ops_executed += 1
            state.ops += 1
            if max_ops is not None and self.ops_executed > max_ops:
                raise SimulationError(
                    ctx.name,
                    RuntimeError(f"exceeded max_ops={max_ops}"),
                )
            if not self._dispatch(state, op):
                return  # blocked
            if state.status == _DONE:
                return

    def _run_slice_fast(self, state: _ContextState, remaining: int) -> None:
        """Inline fast loop (DESIGN.md §11).

        Eligible only when tracing is off, ``max_ops`` is unset, and no
        WaitUntil waiter is registered — which is what lets the hot ops
        (enqueue/dequeue/IncrCycles and FusedOps batches of them) run
        against the channels' flavor-specialized transitions with zero
        per-op bookkeeping conditionals.  This body is additionally
        specialized for the common clock shape — a plain
        :class:`TimeCell` with no ``on_advance`` hook (always, under the
        purely local executor): the common channel flavors — keyed by
        the channels' ``_enq_code`` / ``_deq_code`` mirrors — are
        open-coded, and the simulated time lives in the local ``now``
        for the whole slice, written back to ``clock._time`` wherever
        the world can observe it (generator resumes, method-path
        fallbacks, slice exits) and reloaded after any call that may
        advance it.  Process-executor workers carry ``SharedTimeCell``
        clocks and take :meth:`_run_slice_fast_shared`, the method-path
        twin whose flavors perform the identical transitions.  Results
        flow through locals; ``state.pending_*`` is written back only
        when the slice ends non-terminally.  Rare ops fall through to
        the generic handlers, which keep the invariant: a WaitUntil
        that registers a waiter blocks, ending the slice, so a fast
        slice never runs with a waiter present.
        """
        ctx = state.context
        clock = ctx.time
        if clock.__class__ is not TimeCell or clock.on_advance is not None:
            self._run_slice_fast_shared(state, remaining)
            return
        gen_send = state.gen.send
        gen_throw = state.gen.throw
        wake_sender = self._wake_send_deliver
        wake_receiver = self._wake_recv_deliver
        now = clock._time
        value = state.pending_value
        exc = state.pending_exc
        state.pending_value = None
        state.pending_exc = None
        executed = 0
        try:
            while remaining != 0:
                remaining -= 1
                clock._time = now  # visible to the context body
                try:
                    if exc is not None:
                        op = gen_throw(exc)
                        exc = None
                    else:
                        op = gen_send(value)
                        value = None
                except StopIteration:
                    self._finish(state)
                    return
                except ChannelClosed:
                    self._finish(state)
                    return
                except DeadlockError:
                    raise
                except BaseException as failure:  # noqa: BLE001
                    self._finish(state)
                    raise SimulationError(ctx.name, failure) from failure
                now = clock._time

                kind = op.__class__
                if kind is tuple or kind is list:
                    # Cold: ad-hoc batches are normalized so the hot
                    # branch below compiles and caches a plan per batch
                    # object (throwaway here, latched for FusedOps).
                    op = FusedOps(*op)
                    kind = FusedOps
                if kind is FusedOps:
                    # Mirrors _fuse_fast (the resume-path copy); kept
                    # inline here because this is the hottest loop in the
                    # simulator and a per-yield method call is measurable.
                    plan = op.plan
                    if plan is None:
                        plan = op.plan = _compile_plan(op.ops)
                    entries, buf = plan
                    index = 0
                    parked = False
                    for scode, sub, channel, data_q, resps, stats in (
                        entries
                    ):
                        if scode == 0:  # Dequeue
                            if channel._deq_code != 2:
                                if data_q:
                                    stamp, result = data_q.popleft()
                                    if stamp > now:
                                        now = stamp
                                    stats.dequeues += 1
                                    if channel._deq_code == 1:
                                        resps.append(
                                            now + channel.resp_latency
                                        )
                                else:
                                    result = _EMPTY
                            else:
                                clock._time = now
                                result = channel.fast_dequeue(clock)
                                now = clock._time
                            if result is not _EMPTY:
                                waiter = channel.waiting_sender
                                if waiter is not None:
                                    channel.waiting_sender = None
                                    wake_sender(channel, waiter)
                                buf[index] = result
                            elif channel.closed_for_receiver:
                                exc = ChannelClosed(channel.name)
                                break  # abandon the batch
                            else:
                                self._block(
                                    state, sub, channel._park_deq_msg
                                )
                                channel.waiting_receiver = state
                                parked = True
                                break
                        elif scode == 1:  # Enqueue
                            code = channel._enq_code
                            if code == 1:
                                delta = channel._delta
                                capacity = channel.capacity
                                if delta >= capacity:
                                    # Full window: drain responses
                                    # (each advances the sender clock —
                                    # the backpressure timeline).
                                    while delta >= capacity and resps:
                                        release = resps.popleft()
                                        if release > now:
                                            now = release
                                        delta -= 1
                                    channel._delta = delta
                                if delta < capacity:
                                    stats.enqueues += 1
                                    data_q.append(
                                        (now + channel.latency, sub.data)
                                    )
                                    channel._delta = delta + 1
                                    occ = len(data_q)
                                    if occ > stats.max_real_occupancy:
                                        stats.max_real_occupancy = occ
                                    ok = True
                                else:
                                    ok = False
                            elif code == 0:
                                stats.enqueues += 1
                                data_q.append(
                                    (now + channel.latency, sub.data)
                                )
                                occ = len(data_q)
                                if occ > stats.max_real_occupancy:
                                    stats.max_real_occupancy = occ
                                ok = True
                            else:
                                clock._time = now
                                ok = channel.try_enqueue(clock, sub.data)
                                now = clock._time
                            if not ok:
                                self._block(
                                    state, sub, channel._park_enq_msg
                                )
                                channel.waiting_sender = state
                                parked = True
                                break
                            waiter = channel.waiting_receiver
                            if waiter is not None:
                                channel.waiting_receiver = None
                                wake_receiver(channel, waiter)
                        elif scode == 2:
                            # IncrCycles: latched count rides in the
                            # channel slot.
                            if channel:
                                now += channel
                        else:
                            # Rare constituent: generic handler (raises
                            # on a nested batch).
                            clock._time = now
                            if not self._dispatch(state, sub):
                                now = clock._time
                                parked = True
                                break
                            now = clock._time
                            if state.pending_exc is not None:
                                exc = state.pending_exc
                                state.pending_exc = None
                                break
                            buf[index] = state.pending_value
                            state.pending_value = None
                        index += 1
                    else:
                        # Batch complete.  Deliver the plan's reused
                        # results buffer: dequeue (and rare-op) slots
                        # were just written, enqueue and IncrCycles
                        # slots are permanently None.
                        executed += index
                        value = buf
                        continue
                    if parked:
                        # The parked constituent counts (first attempt).
                        clock._time = now
                        executed += index + 1
                        state.fused_ops = op.ops
                        state.fused_index = index
                        state.fused_results = buf
                        state.fused_plan = entries
                        return
                    executed += index + 1
                    continue

                executed += 1
                if kind is Dequeue:
                    channel = op.receiver.channel
                    if channel._deq_code != 2:
                        data_q = channel._data
                        if data_q:
                            stamp, value = data_q.popleft()
                            if stamp > now:
                                now = stamp
                            channel.stats.dequeues += 1
                            if channel._deq_code == 1:
                                channel._resps.append(
                                    now + channel.resp_latency
                                )
                            waiter = channel.waiting_sender
                            if waiter is not None:
                                channel.waiting_sender = None
                                wake_sender(channel, waiter)
                            continue
                        value = None
                    else:
                        clock._time = now
                        result = channel.fast_dequeue(clock)
                        now = clock._time
                        if result is not _EMPTY:
                            value = result
                            waiter = channel.waiting_sender
                            if waiter is not None:
                                channel.waiting_sender = None
                                wake_sender(channel, waiter)
                            continue
                    if channel.closed_for_receiver:
                        exc = ChannelClosed(channel.name)
                        continue
                    clock._time = now
                    self._block(state, op, channel._park_deq_msg)
                    channel.waiting_receiver = state
                    return

                if kind is Enqueue:
                    channel = op.sender.channel
                    code = channel._enq_code
                    if code == 1:
                        delta = channel._delta
                        capacity = channel.capacity
                        if delta >= capacity:
                            resps = channel._resps
                            while delta >= capacity and resps:
                                release = resps.popleft()
                                if release > now:
                                    now = release
                                delta -= 1
                            channel._delta = delta
                        if delta < capacity:
                            stats = channel.stats
                            stats.enqueues += 1
                            data_q = channel._data
                            data_q.append((now + channel.latency, op.data))
                            channel._delta = delta + 1
                            occ = len(data_q)
                            if occ > stats.max_real_occupancy:
                                stats.max_real_occupancy = occ
                            ok = True
                        else:
                            ok = False
                    elif code == 0:
                        stats = channel.stats
                        stats.enqueues += 1
                        data_q = channel._data
                        data_q.append((now + channel.latency, op.data))
                        occ = len(data_q)
                        if occ > stats.max_real_occupancy:
                            stats.max_real_occupancy = occ
                        ok = True
                    else:
                        clock._time = now
                        ok = channel.try_enqueue(clock, op.data)
                        now = clock._time
                    if not ok:
                        clock._time = now
                        self._block(state, op, channel._park_enq_msg)
                        channel.waiting_sender = state
                        return
                    waiter = channel.waiting_receiver
                    if waiter is not None:
                        channel.waiting_receiver = None
                        wake_receiver(channel, waiter)
                    continue

                if kind is IncrCycles:
                    cycles = op.cycles
                    if cycles >= 0:
                        now += cycles
                    else:
                        clock._time = now
                        clock.incr(cycles)
                        now = clock._time
                    continue

                # Rare op: Peek/AdvanceTo/ViewTime/WaitUntil (or a junk
                # yield) through the generic handler table.
                clock._time = now
                if not self._dispatch(state, op):
                    return  # blocked
                now = clock._time
                value = state.pending_value
                state.pending_value = None
                if state.pending_exc is not None:
                    exc = state.pending_exc
                    state.pending_exc = None
            # Slice expired: hand the in-flight result back to state.
            clock._time = now
            state.pending_value = value
            state.pending_exc = exc
        finally:
            self.ops_executed += executed
            state.ops += executed

    def _run_slice_fast_shared(
        self, state: _ContextState, remaining: int
    ) -> None:
        """Method-path twin of :meth:`_run_slice_fast` for worker clocks
        (``SharedTimeCell`` / ``on_advance`` hooks): the same inline
        loop, handler fallbacks, and fused-batch plans, with every
        time-touching transition going through the channel flavor
        methods and ``clock.incr`` so shared time cells publish each
        advance.  Kept separate so the plain-clock body can hold the
        simulated time in a local.
        """
        gen_send = state.gen.send
        gen_throw = state.gen.throw
        ctx = state.context
        clock = ctx.time
        wake_sender = self._wake_send_deliver
        wake_receiver = self._wake_recv_deliver
        value = state.pending_value
        exc = state.pending_exc
        state.pending_value = None
        state.pending_exc = None
        executed = 0
        try:
            while remaining != 0:
                remaining -= 1
                try:
                    if exc is not None:
                        op = gen_throw(exc)
                        exc = None
                    else:
                        op = gen_send(value)
                        value = None
                except StopIteration:
                    self._finish(state)
                    return
                except ChannelClosed:
                    self._finish(state)
                    return
                except DeadlockError:
                    raise
                except BaseException as failure:  # noqa: BLE001
                    self._finish(state)
                    raise SimulationError(ctx.name, failure) from failure

                kind = op.__class__
                if kind is tuple or kind is list:
                    op = FusedOps(*op)
                    kind = FusedOps
                if kind is FusedOps:
                    plan = op.plan
                    if plan is None:
                        plan = op.plan = _compile_plan(op.ops)
                    entries, buf = plan
                    index = 0
                    parked = False
                    for scode, sub, channel, data_q, resps, stats in (
                        entries
                    ):
                        if scode == 0:  # Dequeue
                            result = channel.fast_dequeue(clock)
                            if result is not _EMPTY:
                                waiter = channel.waiting_sender
                                if waiter is not None:
                                    channel.waiting_sender = None
                                    wake_sender(channel, waiter)
                                buf[index] = result
                            elif channel.closed_for_receiver:
                                exc = ChannelClosed(channel.name)
                                break  # abandon the batch
                            else:
                                self._block(
                                    state, sub, channel._park_deq_msg
                                )
                                channel.waiting_receiver = state
                                parked = True
                                break
                        elif scode == 1:  # Enqueue
                            if channel.try_enqueue(clock, sub.data):
                                waiter = channel.waiting_receiver
                                if waiter is not None:
                                    channel.waiting_receiver = None
                                    wake_receiver(channel, waiter)
                            else:
                                self._block(
                                    state, sub, channel._park_enq_msg
                                )
                                channel.waiting_sender = state
                                parked = True
                                break
                        elif scode == 2:
                            # IncrCycles: latched count rides in the
                            # channel slot.
                            clock.incr(channel)
                        else:
                            if not self._dispatch(state, sub):
                                parked = True
                                break
                            if state.pending_exc is not None:
                                exc = state.pending_exc
                                state.pending_exc = None
                                break
                            buf[index] = state.pending_value
                            state.pending_value = None
                        index += 1
                    else:
                        executed += index
                        value = buf
                        continue
                    if parked:
                        executed += index + 1
                        state.fused_ops = op.ops
                        state.fused_index = index
                        state.fused_results = buf
                        state.fused_plan = entries
                        return
                    executed += index + 1
                    continue

                executed += 1
                if kind is Dequeue:
                    channel = op.receiver.channel
                    result = channel.fast_dequeue(clock)
                    if result is not _EMPTY:
                        value = result
                        waiter = channel.waiting_sender
                        if waiter is not None:
                            channel.waiting_sender = None
                            wake_sender(channel, waiter)
                        continue
                    if channel.closed_for_receiver:
                        exc = ChannelClosed(channel.name)
                        continue
                    self._block(state, op, channel._park_deq_msg)
                    channel.waiting_receiver = state
                    return

                if kind is Enqueue:
                    channel = op.sender.channel
                    if channel.try_enqueue(clock, op.data):
                        waiter = channel.waiting_receiver
                        if waiter is not None:
                            channel.waiting_receiver = None
                            wake_receiver(channel, waiter)
                        continue
                    self._block(state, op, channel._park_enq_msg)
                    channel.waiting_sender = state
                    return

                if kind is IncrCycles:
                    clock.incr(op.cycles)
                    continue

                if not self._dispatch(state, op):
                    return  # blocked
                value = state.pending_value
                state.pending_value = None
                if state.pending_exc is not None:
                    exc = state.pending_exc
                    state.pending_exc = None
            state.pending_value = value
            state.pending_exc = exc
        finally:
            self.ops_executed += executed
            state.ops += executed

    def _fuse_fast(
        self,
        state: _ContextState,
        clock,
        plain: bool,
        ops_seq,
        entries,
        index: int,
        results: list,
    ):
        """Plan-based fused-batch runner for the post-park resume path.
        Executes the compiled ``entries[index:]``, writing each
        constituent's result into the pre-sized ``results`` list, and
        returns the completed results list, an exception to throw at the
        yield (abandoning the batch), or :data:`_PARKED` after saving
        the fused state on ``state``.  Op accounting matches the generic
        path: every *attempted* constituent counts once, including the
        one that parked or raised (retries after a park do not
        re-count).
        """
        wake_sender = self._wake_send_deliver
        wake_receiver = self._wake_recv_deliver
        total = len(entries)
        start = index
        exc = None
        while index < total:
            scode, sub, channel, data_q, resps, stats = entries[index]
            if scode == 0:  # Dequeue
                if plain and channel._deq_code != 2:
                    if data_q:
                        stamp, result = data_q.popleft()
                        if stamp > clock._time:
                            clock._time = stamp
                        stats.dequeues += 1
                        if channel._deq_code == 1:
                            resps.append(
                                clock._time + channel.resp_latency
                            )
                    else:
                        result = _EMPTY
                else:
                    result = channel.fast_dequeue(clock)
                if result is not _EMPTY:
                    waiter = channel.waiting_sender
                    if waiter is not None:
                        channel.waiting_sender = None
                        wake_sender(channel, waiter)
                    results[index] = result
                elif channel.closed_for_receiver:
                    exc = ChannelClosed(channel.name)
                    break  # abandon the batch
                else:
                    self._block(state, sub, channel._park_deq_msg)
                    channel.waiting_receiver = state
                    state.fused_ops = ops_seq
                    state.fused_index = index
                    state.fused_results = results
                    state.fused_plan = entries
                    attempted = index - start + 1
                    self.ops_executed += attempted
                    state.ops += attempted
                    return _PARKED
            elif scode == 1:  # Enqueue
                code = channel._enq_code if plain else 2
                if code == 1:
                    delta = channel._delta
                    capacity = channel.capacity
                    if delta >= capacity:
                        stamp = clock._time
                        while delta >= capacity and resps:
                            release = resps.popleft()
                            if release > stamp:
                                stamp = release
                            delta -= 1
                        clock._time = stamp
                        channel._delta = delta
                    if delta < capacity:
                        stats.enqueues += 1
                        data_q.append(
                            (clock._time + channel.latency, sub.data)
                        )
                        channel._delta = delta + 1
                        occ = len(data_q)
                        if occ > stats.max_real_occupancy:
                            stats.max_real_occupancy = occ
                        ok = True
                    else:
                        ok = False
                elif code == 0:
                    stats.enqueues += 1
                    data_q.append((clock._time + channel.latency, sub.data))
                    occ = len(data_q)
                    if occ > stats.max_real_occupancy:
                        stats.max_real_occupancy = occ
                    ok = True
                else:
                    ok = channel.try_enqueue(clock, sub.data)
                if not ok:
                    self._block(state, sub, channel._park_enq_msg)
                    channel.waiting_sender = state
                    state.fused_ops = ops_seq
                    state.fused_index = index
                    state.fused_results = results
                    state.fused_plan = entries
                    attempted = index - start + 1
                    self.ops_executed += attempted
                    state.ops += attempted
                    return _PARKED
                waiter = channel.waiting_receiver
                if waiter is not None:
                    channel.waiting_receiver = None
                    wake_receiver(channel, waiter)
            elif scode == 2:
                # IncrCycles: latched count rides in the channel slot.
                if plain:
                    if channel:
                        clock._time += channel
                else:
                    clock.incr(channel)
            else:
                # Rare constituent: generic handler (raises on a nested
                # FusedOps/tuple/list).
                if not self._dispatch(state, sub):
                    state.fused_ops = ops_seq
                    state.fused_index = index
                    state.fused_results = results
                    state.fused_plan = entries
                    attempted = index - start + 1
                    self.ops_executed += attempted
                    state.ops += attempted
                    return _PARKED
                if state.pending_exc is not None:
                    exc = state.pending_exc
                    state.pending_exc = None
                    break
                results[index] = state.pending_value
                state.pending_value = None
            index += 1
        if exc is None:
            attempted = total - start
            self.ops_executed += attempted
            state.ops += attempted
            return results
        attempted = index - start + 1
        self.ops_executed += attempted
        state.ops += attempted
        return exc

    def _dispatch(self, state: _ContextState, op: Op) -> bool:
        """Attempt ``op`` via its handler; return False (and park the
        context) if it blocks."""
        handler = self._handlers.get(op.__class__)
        if handler is None:
            raise SimulationError(
                state.context.name,
                TypeError(f"context yielded a non-op value: {op!r}"),
            )
        return handler(state, op)

    # --- generic op handlers ------------------------------------------
    # Each performs the identical semantic transition the fast loop
    # inlines, plus the bookkeeping (tracing, time-waiter drain) that
    # the fast loop's eligibility rules make unnecessary there.

    def _h_enqueue(self, state: _ContextState, op) -> bool:
        clock = state.context.time
        channel = op.sender.channel
        if channel.try_enqueue(clock, op.data):
            state.pending_value = None
            waiter = channel.waiting_receiver
            if waiter is not None:
                channel.waiting_receiver = None
                self._wake(waiter)
            if self._any_time_waiters:
                self._drain_time_waiters(state.context)
            if state.buffer is not None:
                state.buffer.append(
                    "enqueue", channel.name, clock.now(), op.data
                )
            return True
        self._block(state, op, channel._park_enq_msg)
        channel.waiting_sender = state
        return False

    def _h_dequeue(self, state: _ContextState, op) -> bool:
        clock = state.context.time
        channel = op.receiver.channel
        result = channel.fast_dequeue(clock)
        if result is not _EMPTY:
            state.pending_value = result
            waiter = channel.waiting_sender
            if waiter is not None:
                channel.waiting_sender = None
                self._wake(waiter)
            if self._any_time_waiters:
                self._drain_time_waiters(state.context)
            if state.buffer is not None:
                state.buffer.append(
                    "dequeue", channel.name, clock.now(), result
                )
            return True
        if channel.closed_for_receiver:
            state.pending_exc = ChannelClosed(channel.name)
            return True
        self._block(state, op, channel._park_deq_msg)
        channel.waiting_receiver = state
        return False

    def _h_peek(self, state: _ContextState, op) -> bool:
        clock = state.context.time
        channel = op.receiver.channel
        if channel.can_dequeue():
            state.pending_value = channel.do_peek(clock)
            if self._any_time_waiters:
                self._drain_time_waiters(state.context)
            if state.buffer is not None:
                state.buffer.append(
                    "peek", channel.name, clock.now(), state.pending_value
                )
            return True
        if channel.closed_for_receiver:
            state.pending_exc = ChannelClosed(channel.name)
            return True
        self._block(state, op, f"peek on empty {channel.name}")
        channel.waiting_receiver = state
        return False

    def _h_incr_cycles(self, state: _ContextState, op) -> bool:
        clock = state.context.time
        clock.incr(op.cycles)
        state.pending_value = None
        if self._any_time_waiters:
            self._drain_time_waiters(state.context)
        if state.buffer is not None:
            state.buffer.append("advance", None, clock.now())
        return True

    def _h_advance_to(self, state: _ContextState, op) -> bool:
        clock = state.context.time
        clock.advance(op.time)
        state.pending_value = None
        if self._any_time_waiters:
            self._drain_time_waiters(state.context)
        if state.buffer is not None:
            state.buffer.append("advance", None, clock.now())
        return True

    def _h_view_time(self, state: _ContextState, op) -> bool:
        state.pending_value = op.context.time.now()
        return True

    def _h_wait_until(self, state: _ContextState, op) -> bool:
        target = op.context
        if target.time.now() >= op.time:
            state.pending_value = target.time.now()
            return True
        self._block(state, op, f"wait-until {op.time} on {target.name}")
        self._time_waiters.setdefault(id(target), []).append((op.time, state))
        self._any_time_waiters = True
        # A registered waiter must be drained on every clock advance, so
        # subsequent slices take the generic loop until it clears.
        self._fast = False
        return False

    def _h_nested_fusion(self, state: _ContextState, op) -> bool:
        raise SimulationError(
            state.context.name,
            TypeError(
                "FusedOps (or a tuple/list of ops) cannot be nested "
                f"inside another fused batch: {op!r}"
            ),
        )

    # ------------------------------------------------------------------

    # --- wake-with-delivery (fast path only) --------------------------
    # A simulated op's result is a pure function of simulated state, so
    # *who executes it* cannot change it: when a fast-path op unblocks a
    # parked counterpart, the waker completes the parked Dequeue/Enqueue
    # on the waiter's behalf (against the *waiter's* clock) and clears
    # ``retry_op`` — the woken slice then starts straight in the fast
    # loop with ``pending_value`` set, skipping the retry dispatch.
    # Generic-mode wake sites keep the plain wake + retry protocol, and
    # anything not open-codeable here (shuttle proxies, profiled or
    # void flavors, hooked clocks, a parked Peek) falls back to it too.

    def _wake_send_deliver(self, channel, waiter: "_ContextState") -> None:
        """A dequeue freed bounded capacity: complete the parked sender's
        Enqueue in place, then wake it."""
        op = waiter.retry_op
        if op is not None and op.__class__ is Enqueue:
            wclock = waiter.context.time
            if (
                wclock.__class__ is TimeCell
                and wclock.on_advance is None
                and channel._enq_code == 1
            ):
                delta = channel._delta
                capacity = channel.capacity
                if delta >= capacity:
                    resps = channel._resps
                    stamp = wclock._time
                    while delta >= capacity and resps:
                        release = resps.popleft()
                        if release > stamp:
                            stamp = release
                        delta -= 1
                    wclock._time = stamp
                    channel._delta = delta
                if delta < capacity:
                    stats = channel.stats
                    stats.enqueues += 1
                    data_q = channel._data
                    data_q.append((wclock._time + channel.latency, op.data))
                    channel._delta = delta + 1
                    occ = len(data_q)
                    if occ > stats.max_real_occupancy:
                        stats.max_real_occupancy = occ
                    waiter.retry_op = None
                    waiter.pending_value = None
        self._wake(waiter)

    def _wake_recv_deliver(self, channel, waiter: "_ContextState") -> None:
        """An enqueue filled an empty channel: complete the parked
        receiver's Dequeue in place, then wake it."""
        op = waiter.retry_op
        if (
            op is not None
            and op.__class__ is Dequeue
            and channel._deq_code != 2
        ):
            wclock = waiter.context.time
            if wclock.__class__ is TimeCell and wclock.on_advance is None:
                data_q = channel._data
                if data_q:
                    stamp, result = data_q.popleft()
                    if stamp > wclock._time:
                        wclock._time = stamp
                    channel.stats.dequeues += 1
                    if channel._deq_code == 1:
                        channel._resps.append(
                            wclock._time + channel.resp_latency
                        )
                    waiter.retry_op = None
                    waiter.pending_value = result
        self._wake(waiter)

    def _block(self, state: _ContextState, op: Op, detail: str) -> None:
        state.status = _BLOCKED
        state.retry_op = op
        state.blocked_detail = detail

    def _wake(self, state: _ContextState) -> None:
        if state.status != _BLOCKED:
            return
        state.status = _READY
        state.blocked_detail = ""
        self.wakeups += 1
        self.policy.push(state, woken=True)

    def _drain_time_waiters(self, target: Context) -> None:
        """Wake WaitUntil waiters whose threshold ``target`` has passed."""
        waiters = self._time_waiters.get(id(target))
        if not waiters:
            return
        now = target.time.now()
        still_waiting: list[tuple[Any, _ContextState]] = []
        for threshold, waiter in waiters:
            if now >= threshold:
                waiter.pending_value = now
                waiter.retry_op = None  # result already delivered
                self._wake(waiter)
            else:
                still_waiting.append((threshold, waiter))
        if still_waiting:
            self._time_waiters[id(target)] = still_waiting
        else:
            del self._time_waiters[id(target)]
            if not self._time_waiters:
                self._any_time_waiters = False
                self._fast = self._fast_capable

    def _finish(self, state: _ContextState) -> None:
        """Mark a context finished and propagate closure to its channels."""
        ctx = state.context
        state.status = _DONE
        ctx.finish_time = ctx.time.now()
        if state.buffer is not None:
            state.buffer.append("finish", None, ctx.finish_time)
        ctx.time.finish()
        for sender in ctx.senders:
            channel = sender.channel
            channel.close_sender()
            waiter = channel.waiting_receiver
            if waiter is not None:
                channel.waiting_receiver = None
                self._wake(waiter)
        for receiver in ctx.receivers:
            channel = receiver.channel
            channel.close_receiver()
            waiter = channel.waiting_sender
            if waiter is not None:
                channel.waiting_sender = None
                self._wake(waiter)
        self._drain_time_waiters(ctx)
