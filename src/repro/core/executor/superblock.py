"""Superblock compilation: whole-cluster straight-line drivers (DESIGN.md §15).

The inline fast path (§11) removed per-op dispatch *within* a context;
every channel hop still pays a round trip through the executor's ready
queue — pop, status check, slice prologue, park, push, repeat.  A *cold
cluster* (§12, :func:`~repro.core.executor.partition.plan_clusters`) is a
connected component whose channels are all internal while the cluster is
cold, which makes it exactly the unit that can be partially evaluated
*across* contexts: while the cluster runs, every channel endpoint it can
touch belongs to the cluster, so a park on an internal channel never
needs the global scheduler — the peer that will unblock it is a member,
and the superblock can hand control straight to it.

A :class:`Superblock` is that partial evaluation, as a local driver loop:

* **Peer-to-peer inlining** — member turns run a copy of the §11 plain
  fast loop against the channels' ``_enq_code``/``_deq_code`` flavor
  mirrors, and when a transition unblocks a parked member the driver
  completes the parked op in place (producer writing directly into the
  consumer's plan buffer / pending slot, exactly the §11
  wake-with-delivery transition) and appends the member to the
  superblock's *local* ready deque instead of the executor policy.
* **Vectorized clock leap** — each member's simulated time lives in a
  plain scratch :class:`~repro.core.time.TimeCell` for the whole turn;
  shared/hooked real clocks (worker ``SharedTimeCell``s, threaded
  ``on_advance`` hooks) are published once per turn boundary via
  ``advance()`` — one monotone leap covering the turn's whole op batch —
  instead of once per op.  Published values remain monotone lower
  bounds, so cross-worker SVA reads stay sound.
* **Bail-out** — the driver falls back to the generic scheduler at the
  first park it cannot serve locally, the first registered ``WaitUntil``
  waiter (``executor._fast`` drops, §11), the first non-inlinable flavor
  (rare ops and code-2 channels take the method/handler path against the
  scratch cell or the real clock), and at budget exhaustion — flushing
  its local ready deque back to the executor policy so nothing is lost.
  Because ``policy.push`` is idempotent (``in_ready``) and every pop
  re-checks ``status``, a member may sit in both queues at once; any
  pop of a READY state is a legal schedule, and channel transitions are
  pure functions of simulated state, so results are bit-identical to
  the un-superblocked run by the same argument as §11.

Selection is gated by ``RunConfig(superblocks=...)``: ``"on"``/``True``
compiles every multi-member cluster, ``"off"``/``False``/``None``
disables, and ``"auto"`` (the default) compiles clusters that
:func:`~repro.core.executor.partition.channel_weights` shows as live —
on a fresh program (no observed traffic anywhere) every cluster is
compiled, on a re-run only clusters whose channels actually carried
traffic are, so the observed-placement feedback loop (``pins`` from
``RunSummary.placement``) and superblock selection see the same reality.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..channel import _EMPTY
from ..errors import ChannelClosed, DeadlockError, SimulationError
from ..ops import Dequeue, Enqueue, FusedOps, IncrCycles
from ..time import TimeCell
from .partition import ClusterSpec, channel_weights, plan_clusters

_READY = 0
_BLOCKED = 1
_DONE = 2

_MODES = ("off", "on", "auto")


def normalize_mode(mode: Any) -> str:
    """Normalize a ``RunConfig(superblocks=...)`` value to off/on/auto."""
    if mode is None or mode is False or mode == "off":
        return "off"
    if mode is True or mode == "on":
        return "on"
    if mode == "auto":
        return "auto"
    raise ValueError(
        f"superblocks must be one of {_MODES} (or True/False/None), "
        f"got {mode!r}"
    )


def select_clusters(
    program, clusters: list[ClusterSpec], mode: str
) -> list[ClusterSpec]:
    """Pick the clusters worth compiling.

    Single-member clusters gain nothing (the §11 fast path already owns
    them).  Under ``"auto"``, once the program carries observed traffic
    (``channel_weights`` from live stats — which survive a previous run
    of the same program object), clusters whose channels never moved a
    value are skipped: compiling them buys nothing and the scratch cells
    are pure overhead.  A fresh program has no observations, so every
    multi-member cluster is compiled.
    """
    selected = [spec for spec in clusters if spec.size >= 2]
    if mode != "auto" or not selected:
        return selected
    weights = channel_weights(program)
    if not any(weights.values()):
        return selected
    channels = program.channels
    return [
        spec
        for spec in selected
        if any(
            weights.get(channels[index].name, 0) > 0
            for index in spec.channels
        )
    ]


def compile_superblocks(executor, program, states, mode: Any) -> int:
    """Plan clusters over ``program`` (trivial single-owner assignment:
    clusters are exactly its connected components) and attach a
    :class:`Superblock` to every selected one.  Returns the number of
    superblocks compiled."""
    mode = normalize_mode(mode)
    if mode == "off":
        return 0
    clusters = plan_clusters(
        program, {id(ctx): 0 for ctx in program.contexts}
    )
    contexts = program.contexts
    count = 0
    for spec in select_clusters(program, clusters, mode):
        members = [states[id(contexts[slot])] for slot in spec.contexts]
        attach(Superblock(spec.index), members)
        count += 1
    return count


def attach(superblock: "Superblock", members: list) -> "Superblock":
    """Bind member states to ``superblock``, giving each a plain scratch
    cell when its real clock is shared/hooked (the shadow path)."""
    for state in members:
        clock = state.context.time
        if clock.__class__ is TimeCell and clock.on_advance is None:
            cell = clock
        else:
            cell = TimeCell(clock._time)
        state.superblock = superblock
        state.sb_cell = cell
        state.sb_ready = False
        state.sb_send = state.gen.send
    superblock.members = members
    return superblock


class Superblock:
    """A compiled cold cluster: a local round-robin driver over member
    contexts with peer-to-peer wake-with-delivery."""

    __slots__ = ("index", "members", "ready")

    def __init__(self, index: int):
        self.index = index
        self.members: list = []
        self.ready: deque = deque()

    # ------------------------------------------------------------------

    def drive(self, ex, state, remaining: int) -> None:
        """Run the cluster from ``state`` until every member is parked on
        a non-local condition, the budget runs out, or the executor's
        fast path drops (a WaitUntil waiter registered).  On exit the
        local ready deque is flushed to the executor policy, so the
        global scheduler resumes exactly where the superblock latched.
        """
        ready = self.ready
        if not state.sb_ready:
            state.sb_ready = True
            ready.append(state)
        prev = state
        try:
            while ready:
                if not ex._fast:
                    return
                st = ready.popleft()
                st.sb_ready = False
                if st.status != _READY:
                    continue
                if st is not prev:
                    ex.context_switches += 1
                    prev = st
                remaining = self._turn(ex, st, remaining)
                if st.status == _READY and not st.sb_ready:
                    st.sb_ready = True
                    ready.append(st)
                if remaining == 0:
                    return
        finally:
            self._flush(ex)

    def _flush(self, ex) -> None:
        ready = self.ready
        push = ex.policy.push
        while ready:
            st = ready.popleft()
            st.sb_ready = False
            if st.status == _READY:
                push(st, woken=False)

    # ------------------------------------------------------------------

    def _turn(self, ex, st, remaining: int) -> int:
        """One member turn: the §11 plain fast loop against the member's
        scratch cell, with parks breaking back to the driver loop and
        local wake-with-delivery.  Returns the remaining op budget."""
        ctx = st.context
        real = ctx.time
        cell = st.sb_cell
        shadow = cell is not real

        # A member woken from a blocking op completes it first.  The
        # overwhelmingly common shape — parked on the *last* constituent
        # of a fused batch with the result already delivered by a local
        # waker — finalizes inline; everything else goes through the
        # executor's resume machinery (against the real clock — the rare
        # tail of a parked batch may publish per-op; exactness is what
        # matters there, not batching).
        if st.retry_op is not None or st.fused_ops is not None:
            fo = st.fused_ops
            if (
                fo is not None
                and st.retry_op is None
                and st.pending_exc is None
                and st.fused_index + 1 == len(fo)
            ):
                buf = st.fused_results
                buf[st.fused_index] = st.pending_value
                st.pending_value = buf
                st.fused_ops = None
                st.fused_results = None
                st.fused_plan = None
            else:
                if not ex._resume_pending(st):
                    return remaining  # parked again
                if st.status == _DONE:
                    return remaining

        if shadow:
            cell._time = real._time
        gen_send = st.sb_send
        lready = self.ready
        now = cell._time
        value = st.pending_value
        exc = st.pending_exc
        st.pending_value = None
        st.pending_exc = None
        executed = 0
        try:
            while remaining != 0:
                remaining -= 1
                cell._time = now  # visible to the context body
                if shadow:
                    real.advance(now)  # one leap per resume, not per op
                try:
                    if exc is not None:
                        op = st.gen.throw(exc)
                        exc = None
                    else:
                        op = gen_send(value)
                        value = None
                except StopIteration:
                    ex._finish(st)
                    return remaining
                except ChannelClosed:
                    ex._finish(st)
                    return remaining
                except DeadlockError:
                    raise
                except BaseException as failure:  # noqa: BLE001
                    ex._finish(st)
                    raise SimulationError(ctx.name, failure) from failure
                now = cell._time
                if shadow and real._time > now:
                    now = real._time

                kind = op.__class__
                if kind is tuple or kind is list:
                    op = FusedOps(*op)
                    kind = FusedOps
                if kind is FusedOps:
                    plan = op.plan
                    if plan is None:
                        from .sequential import _compile_plan

                        plan = op.plan = _compile_plan(op.ops)
                    entries, buf = plan
                    index = 0
                    parked = False
                    for scode, sub, channel, data_q, resps, stats in (
                        entries
                    ):
                        if scode == 0:  # Dequeue
                            if channel._deq_code != 2:
                                if data_q:
                                    stamp, result = data_q.popleft()
                                    if stamp > now:
                                        now = stamp
                                    stats.dequeues += 1
                                    if channel._deq_code == 1:
                                        resps.append(
                                            now + channel.resp_latency
                                        )
                                else:
                                    result = _EMPTY
                            else:
                                cell._time = now
                                result = channel.fast_dequeue(cell)
                                now = cell._time
                            if result is not _EMPTY:
                                waiter = channel.waiting_sender
                                if waiter is not None:
                                    channel.waiting_sender = None
                                    wop = waiter.retry_op
                                    if (
                                        wop is not None
                                        and wop.__class__ is Enqueue
                                        and channel._enq_code == 1
                                        and waiter.superblock is self
                                        and waiter.sb_cell
                                        is waiter.context.time
                                    ):
                                        # Peer-to-peer release: land the
                                        # parked sender's item in place.
                                        wcell = waiter.sb_cell
                                        delta = channel._delta
                                        capacity = channel.capacity
                                        if delta >= capacity:
                                            wnow = wcell._time
                                            while (
                                                delta >= capacity
                                                and resps
                                            ):
                                                release = resps.popleft()
                                                if release > wnow:
                                                    wnow = release
                                                delta -= 1
                                            wcell._time = wnow
                                            channel._delta = delta
                                        if delta < capacity:
                                            stats.enqueues += 1
                                            data_q.append((
                                                wcell._time
                                                + channel.latency,
                                                wop.data,
                                            ))
                                            channel._delta = delta + 1
                                            occ = len(data_q)
                                            if (
                                                occ
                                                > stats.max_real_occupancy
                                            ):
                                                stats.max_real_occupancy = occ
                                            waiter.retry_op = None
                                            waiter.pending_value = None
                                        if waiter.status == _BLOCKED:
                                            waiter.status = _READY
                                            waiter.blocked_detail = ""
                                            ex.wakeups += 1
                                            if not waiter.sb_ready:
                                                waiter.sb_ready = True
                                                lready.append(waiter)
                                    else:
                                        self._wake_send_local(
                                            ex, channel, waiter
                                        )
                                buf[index] = result
                            elif channel.closed_for_receiver:
                                exc = ChannelClosed(channel.name)
                                break  # abandon the batch
                            else:
                                ex._block(
                                    st, sub, channel._park_deq_msg
                                )
                                channel.waiting_receiver = st
                                parked = True
                                break
                        elif scode == 1:  # Enqueue
                            code = channel._enq_code
                            if code == 1:
                                delta = channel._delta
                                capacity = channel.capacity
                                if delta >= capacity:
                                    while delta >= capacity and resps:
                                        release = resps.popleft()
                                        if release > now:
                                            now = release
                                        delta -= 1
                                    channel._delta = delta
                                if delta < capacity:
                                    stats.enqueues += 1
                                    data_q.append(
                                        (now + channel.latency, sub.data)
                                    )
                                    channel._delta = delta + 1
                                    occ = len(data_q)
                                    if occ > stats.max_real_occupancy:
                                        stats.max_real_occupancy = occ
                                    ok = True
                                else:
                                    ok = False
                            elif code == 0:
                                stats.enqueues += 1
                                data_q.append(
                                    (now + channel.latency, sub.data)
                                )
                                occ = len(data_q)
                                if occ > stats.max_real_occupancy:
                                    stats.max_real_occupancy = occ
                                ok = True
                            else:
                                cell._time = now
                                ok = channel.try_enqueue(cell, sub.data)
                                now = cell._time
                            if not ok:
                                ex._block(
                                    st, sub, channel._park_enq_msg
                                )
                                channel.waiting_sender = st
                                parked = True
                                break
                            waiter = channel.waiting_receiver
                            if waiter is not None:
                                channel.waiting_receiver = None
                                wop = waiter.retry_op
                                if (
                                    code != 2
                                    and wop is not None
                                    and wop.__class__ is Dequeue
                                    and channel._deq_code != 2
                                    and waiter.superblock is self
                                    and waiter.sb_cell
                                    is waiter.context.time
                                ):
                                    # Peer-to-peer delivery: the item
                                    # just enqueued lands straight in
                                    # the parked receiver's result slot.
                                    wcell = waiter.sb_cell
                                    stamp, result = data_q.popleft()
                                    wnow = wcell._time
                                    if stamp > wnow:
                                        wcell._time = wnow = stamp
                                    stats.dequeues += 1
                                    if channel._deq_code == 1:
                                        resps.append(
                                            wnow + channel.resp_latency
                                        )
                                    waiter.retry_op = None
                                    waiter.pending_value = result
                                    if waiter.status == _BLOCKED:
                                        waiter.status = _READY
                                        waiter.blocked_detail = ""
                                        ex.wakeups += 1
                                        if not waiter.sb_ready:
                                            waiter.sb_ready = True
                                            lready.append(waiter)
                                else:
                                    self._wake_recv_local(
                                        ex, channel, waiter
                                    )
                        elif scode == 2:
                            # IncrCycles: latched count in the channel slot.
                            if channel:
                                now += channel
                        else:
                            # Rare constituent: generic handler against
                            # the real clock.
                            cell._time = now
                            if shadow:
                                real.advance(now)
                            dispatched = ex._dispatch(st, sub)
                            now = real._time if shadow else cell._time
                            if shadow:
                                cell._time = now
                            if not dispatched:
                                parked = True
                                break
                            if st.pending_exc is not None:
                                exc = st.pending_exc
                                st.pending_exc = None
                                break
                            buf[index] = st.pending_value
                            st.pending_value = None
                        index += 1
                    else:
                        executed += index
                        value = buf
                        continue
                    if parked:
                        cell._time = now
                        if shadow:
                            real.advance(now)
                        executed += index + 1
                        st.fused_ops = op.ops
                        st.fused_index = index
                        st.fused_results = buf
                        st.fused_plan = entries
                        return remaining
                    executed += index + 1
                    continue

                executed += 1
                if kind is Dequeue:
                    channel = op.receiver.channel
                    if channel._deq_code != 2:
                        data_q = channel._data
                        if data_q:
                            stamp, value = data_q.popleft()
                            if stamp > now:
                                now = stamp
                            channel.stats.dequeues += 1
                            if channel._deq_code == 1:
                                channel._resps.append(
                                    now + channel.resp_latency
                                )
                            waiter = channel.waiting_sender
                            if waiter is not None:
                                channel.waiting_sender = None
                                self._wake_send_local(ex, channel, waiter)
                            continue
                        value = None
                    else:
                        cell._time = now
                        result = channel.fast_dequeue(cell)
                        now = cell._time
                        if result is not _EMPTY:
                            value = result
                            waiter = channel.waiting_sender
                            if waiter is not None:
                                channel.waiting_sender = None
                                self._wake_send_local(ex, channel, waiter)
                            continue
                    if channel.closed_for_receiver:
                        exc = ChannelClosed(channel.name)
                        continue
                    cell._time = now
                    if shadow:
                        real.advance(now)
                    ex._block(st, op, channel._park_deq_msg)
                    channel.waiting_receiver = st
                    return remaining

                if kind is Enqueue:
                    channel = op.sender.channel
                    code = channel._enq_code
                    if code == 1:
                        delta = channel._delta
                        capacity = channel.capacity
                        if delta >= capacity:
                            resps = channel._resps
                            while delta >= capacity and resps:
                                release = resps.popleft()
                                if release > now:
                                    now = release
                                delta -= 1
                            channel._delta = delta
                        if delta < capacity:
                            stats = channel.stats
                            stats.enqueues += 1
                            data_q = channel._data
                            data_q.append((now + channel.latency, op.data))
                            channel._delta = delta + 1
                            occ = len(data_q)
                            if occ > stats.max_real_occupancy:
                                stats.max_real_occupancy = occ
                            ok = True
                        else:
                            ok = False
                    elif code == 0:
                        stats = channel.stats
                        stats.enqueues += 1
                        data_q = channel._data
                        data_q.append((now + channel.latency, op.data))
                        occ = len(data_q)
                        if occ > stats.max_real_occupancy:
                            stats.max_real_occupancy = occ
                        ok = True
                    else:
                        cell._time = now
                        ok = channel.try_enqueue(cell, op.data)
                        now = cell._time
                    if not ok:
                        cell._time = now
                        if shadow:
                            real.advance(now)
                        ex._block(st, op, channel._park_enq_msg)
                        channel.waiting_sender = st
                        return remaining
                    waiter = channel.waiting_receiver
                    if waiter is not None:
                        channel.waiting_receiver = None
                        wop = waiter.retry_op
                        if (
                            code != 2
                            and wop is not None
                            and wop.__class__ is Dequeue
                            and channel._deq_code != 2
                            and waiter.superblock is self
                            and waiter.sb_cell is waiter.context.time
                        ):
                            # Peer-to-peer delivery, as in the fused path.
                            wcell = waiter.sb_cell
                            stamp, result = channel._data.popleft()
                            wnow = wcell._time
                            if stamp > wnow:
                                wcell._time = wnow = stamp
                            channel.stats.dequeues += 1
                            if channel._deq_code == 1:
                                channel._resps.append(
                                    wnow + channel.resp_latency
                                )
                            waiter.retry_op = None
                            waiter.pending_value = result
                            if waiter.status == _BLOCKED:
                                waiter.status = _READY
                                waiter.blocked_detail = ""
                                ex.wakeups += 1
                                if not waiter.sb_ready:
                                    waiter.sb_ready = True
                                    lready.append(waiter)
                        else:
                            self._wake_recv_local(ex, channel, waiter)
                    continue

                if kind is IncrCycles:
                    cycles = op.cycles
                    if cycles >= 0:
                        now += cycles
                    else:
                        cell._time = now
                        cell.incr(cycles)
                        now = cell._time
                    continue

                # Rare op: generic handler against the real clock.
                cell._time = now
                if shadow:
                    real.advance(now)
                dispatched = ex._dispatch(st, op)
                now = real._time if shadow else cell._time
                if shadow:
                    cell._time = now
                if not dispatched:
                    return remaining  # blocked (or WaitUntil registered)
                value = st.pending_value
                st.pending_value = None
                if st.pending_exc is not None:
                    exc = st.pending_exc
                    st.pending_exc = None
            # Budget exhausted: hand the in-flight result back to state.
            cell._time = now
            if shadow:
                real.advance(now)
            st.pending_value = value
            st.pending_exc = exc
            return 0
        finally:
            ex.ops_executed += executed
            st.ops += executed

    # ------------------------------------------------------------------
    # Local wake-with-delivery: the §11 waker transitions, against the
    # waiter's scratch cell, landing the waiter on the *local* deque.
    # Any waiter on a cluster-internal channel is a member (connected
    # component); anything else — or a flavor the inline transition does
    # not cover — falls back to the executor's own wake path, which is
    # exact for every shape.

    def _wake_send_local(self, ex, channel, waiter) -> None:
        if waiter.superblock is not self:
            ex._wake_send_deliver(channel, waiter)
            return
        op = waiter.retry_op
        if (
            op is not None
            and op.__class__ is Enqueue
            and channel._enq_code == 1
        ):
            wreal = waiter.context.time
            wcell = waiter.sb_cell
            if wcell is not wreal:
                wcell._time = wreal._time
            delta = channel._delta
            capacity = channel.capacity
            if delta >= capacity:
                resps = channel._resps
                stamp = wcell._time
                while delta >= capacity and resps:
                    release = resps.popleft()
                    if release > stamp:
                        stamp = release
                    delta -= 1
                wcell._time = stamp
                channel._delta = delta
            if delta < capacity:
                stats = channel.stats
                stats.enqueues += 1
                data_q = channel._data
                data_q.append((wcell._time + channel.latency, op.data))
                channel._delta = delta + 1
                occ = len(data_q)
                if occ > stats.max_real_occupancy:
                    stats.max_real_occupancy = occ
                waiter.retry_op = None
                waiter.pending_value = None
                if wcell is not wreal:
                    # Publish immediately: the waiter's next turn re-syncs
                    # its cell from the real clock.
                    wreal.advance(wcell._time)
        self._wake_local(ex, waiter)

    def _wake_recv_local(self, ex, channel, waiter) -> None:
        if waiter.superblock is not self:
            ex._wake_recv_deliver(channel, waiter)
            return
        op = waiter.retry_op
        if (
            op is not None
            and op.__class__ is Dequeue
            and channel._deq_code != 2
        ):
            wreal = waiter.context.time
            wcell = waiter.sb_cell
            if wcell is not wreal:
                wcell._time = wreal._time
            data_q = channel._data
            if data_q:
                stamp, result = data_q.popleft()
                if stamp > wcell._time:
                    wcell._time = stamp
                channel.stats.dequeues += 1
                if channel._deq_code == 1:
                    channel._resps.append(
                        wcell._time + channel.resp_latency
                    )
                waiter.retry_op = None
                waiter.pending_value = result
                if wcell is not wreal:
                    wreal.advance(wcell._time)
        self._wake_local(ex, waiter)

    def _wake_local(self, ex, waiter) -> None:
        if waiter.status != _BLOCKED:
            return
        waiter.status = _READY
        waiter.blocked_detail = ""
        ex.wakeups += 1
        if not waiter.sb_ready:
            waiter.sb_ready = True
            self.ready.append(waiter)


def cold_cluster_count(program) -> int:
    """How many multi-member cold clusters ``program`` has — recorded in
    benchmark env blocks so baselines are self-describing."""
    clusters = plan_clusters(
        program, {id(ctx): 0 for ctx in program.contexts}
    )
    return sum(1 for spec in clusters if spec.size >= 2)


__all__ = [
    "Superblock",
    "attach",
    "cold_cluster_count",
    "compile_superblocks",
    "normalize_mode",
    "select_clusters",
]
