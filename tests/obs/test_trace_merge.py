"""Merged-order determinism of the executor-agnostic trace pipeline.

The pillar claim of :mod:`repro.obs`: because channel semantics are pure
functions of simulated state, every context records the same events at
the same simulated times under any executor, so the per-context buffers
merge into an identical total order for sequential and threaded runs.
"""

from repro import Observability, ProgramBuilder
from repro.bench import TreeConfig, fib, run_dam_forest
from repro.contexts import Collector, RampSource, UnaryFunction


def event_key(event):
    return (event.time, event.context, event.seq, event.kind, event.channel,
            event.payload)


def merged_keys(obs):
    return [event_key(event) for event in obs.trace.events]


def run_fib_pipeline(executor):
    """A three-stage pipeline whose middle stage does fib work."""
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(4, name="indices")
    s2, r2 = builder.bounded(4, name="fibs")
    builder.add(RampSource(s1, 8, name="src"))
    builder.add(UnaryFunction(r1, s2, fib, ii=2, name="fib_unit"))
    sink = builder.add(Collector(r2, name="sink"))
    obs = Observability(capture_payloads=True)
    summary = builder.build().run(executor=executor, obs=obs)
    return obs, summary, list(sink.values)


class TestFibPipelineMerge:
    def test_threaded_merged_order_matches_sequential(self):
        obs_seq, sum_seq, out_seq = run_fib_pipeline("sequential")
        obs_thr, sum_thr, out_thr = run_fib_pipeline("threaded")
        assert out_seq == out_thr == [fib(n) for n in range(8)]
        assert sum_seq.elapsed_cycles == sum_thr.elapsed_cycles
        assert merged_keys(obs_seq) == merged_keys(obs_thr)

    def test_sequential_runs_are_reproducible(self):
        first = merged_keys(run_fib_pipeline("sequential")[0])
        second = merged_keys(run_fib_pipeline("sequential")[0])
        assert first == second

    def test_merged_order_is_sorted_by_time(self):
        obs, _, _ = run_fib_pipeline("sequential")
        times = [event.time for event in obs.trace.events]
        assert times == sorted(times)

    def test_per_context_seq_is_dense(self):
        obs, _, _ = run_fib_pipeline("threaded")
        for name, buf in obs.trace.buffers().items():
            assert [event.seq for event in buf.events] == list(
                range(len(buf.events))
            ), name


class TestReductionTreeMerge:
    CONFIG = TreeConfig(trees=2, depth=2, reductions=4, fib_index=3)

    def test_threaded_merged_order_matches_sequential(self):
        obs_seq = Observability(capture_payloads=True)
        res_seq = run_dam_forest(self.CONFIG, executor="sequential", obs=obs_seq)
        obs_thr = Observability(capture_payloads=True)
        res_thr = run_dam_forest(self.CONFIG, executor="threaded", obs=obs_thr)
        assert res_seq["root_sums"] == res_thr["root_sums"]
        assert merged_keys(obs_seq) == merged_keys(obs_thr)

    def test_every_context_contributes_events(self):
        obs = Observability()
        run_dam_forest(self.CONFIG, executor="threaded", obs=obs)
        # 2 trees x (4 leaves + 3 nodes + 1 root) contexts, all traced.
        assert len(obs.trace.buffers()) == 16
        assert all(len(buf) > 0 for buf in obs.trace.buffers().values())

    def test_scheduling_policy_does_not_change_merged_order(self):
        baseline = None
        for policy in ["fifo", "fair"]:
            obs = Observability(capture_payloads=True)
            run_dam_forest(
                self.CONFIG, executor="sequential", policy=policy, obs=obs
            )
            keys = merged_keys(obs)
            if baseline is None:
                baseline = keys
            else:
                assert keys == baseline


class TestCompletionTimes:
    def test_completion_times_match_across_executors(self):
        """The calibration-facing query is executor-independent."""
        obs_seq, _, _ = run_fib_pipeline("sequential")
        obs_thr, _, _ = run_fib_pipeline("threaded")
        assert obs_seq.trace.completion_times("fibs") == (
            obs_thr.trace.completion_times("fibs")
        )
