"""Checkpoint/restore at quiescent rounds (DESIGN.md §17).

The claims under test:

* a run with checkpointing enabled is **bit-identical** to the same run
  without it (captures are pure observers);
* resuming from a mid-run checkpoint finishes bit-identical to the
  uninterrupted run — onto the *same* executor, a *different* executor,
  and a different worker count (elastic repartitioning);
* programs that keep opaque generator state are refused up front with
  :class:`NotCheckpointable`;
* corrupt or truncated files are skipped by ``latest_checkpoint`` and
  rejected loudly by ``load``.

The crash-then-resume paths (worker SIGKILL at a checkpoint round, the
retry ladder's ``resumed_from``) live in ``test_faults.py``.
"""

import multiprocessing
import os

import pytest

from repro import (
    ChannelClosed,
    FunctionContext,
    IncrCycles,
    NotCheckpointable,
    ProgramBuilder,
    RunConfig,
)
from repro.core import checkpoint as ckpt
from repro.core.errors import CheckpointError

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="fork start method unavailable"
)


# ----------------------------------------------------------------------
# Kernels under test (values differ per seed; structure is what counts).
# ----------------------------------------------------------------------


def _spmspm():
    from repro.sam import CsfTensor
    from repro.sam.graphs import build_spmspm
    from repro.sam.tensor import random_dense

    b = random_dense(6, 6, density=0.3, seed=23)
    ct = random_dense(6, 6, density=0.3, seed=24)
    return build_spmspm(
        CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(ct, "cc"), depth=4
    )


def _mmadd():
    from repro.sam import CsfTensor
    from repro.sam.graphs import build_mmadd
    from repro.sam.primitives import TimingParams
    from repro.sam.tensor import random_dense

    a = random_dense(6, 6, density=0.5, seed=21)
    b = random_dense(6, 6, density=0.5, seed=22)
    return build_mmadd(
        CsfTensor.from_dense(a, "cc"),
        CsfTensor.from_dense(b, "cc"),
        depth=3,
        timing=TimingParams(ii=2, stop_bubble=1),
    )


KERNELS = {"spmspm": _spmspm, "mmadd": _mmadd}


def _fingerprint(kernel, summary):
    """Everything a resumed run could plausibly get wrong: the final
    cycle count, the numeric result, per-channel traffic totals, and
    every context's finish time."""
    chans = tuple(
        sorted(
            (ch.name, ch.stats.enqueues, ch.stats.dequeues)
            for ch in kernel.program.channels
        )
    )
    times = tuple(
        sorted((c.name, float(c.time.now())) for c in kernel.program.contexts)
    )
    return (
        summary.elapsed_cycles,
        kernel.result_dense().tobytes(),
        chans,
        times,
    )


def _epochs(ckdir):
    return sorted(
        int(name[5:-4])
        for name in os.listdir(ckdir)
        if name.startswith("ckpt-") and name.endswith(".dam")
    )


def _capture(build, ckdir, **config):
    """Run ``build()`` with every-round checkpointing into ``ckdir``;
    returns (fingerprint, sorted epoch list)."""
    kernel = build()
    executor = config.pop("executor", "sequential")
    summary = kernel.run(
        executor=executor,
        config=RunConfig(
            timeslice=7,
            checkpoint_interval_s=0.0,
            checkpoint_path=str(ckdir),
            **config,
        ),
    )
    return _fingerprint(kernel, summary), _epochs(ckdir)


def _resume(build, path, executor="sequential", **config):
    kernel = build()
    restored = ckpt.load(str(path), kernel.program)
    restored.restore_into(kernel.program)
    summary = kernel.run(
        executor=executor, config=RunConfig(timeslice=7, **config)
    )
    return _fingerprint(kernel, summary)


# ----------------------------------------------------------------------
# Bit-identity: checkpointing on, and resume-from-middle.
# ----------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_checkpointing_is_a_pure_observer(self, name, tmp_path):
        build = KERNELS[name]
        reference = build()
        expected = _fingerprint(
            reference, reference.run(config=RunConfig(timeslice=7))
        )
        got, epochs = _capture(build, tmp_path)
        assert got == expected
        assert epochs and epochs == list(range(1, len(epochs) + 1))
        # Only finished checkpoint files remain — no temps, no parts.
        assert all(
            n.startswith("ckpt-") and n.endswith(".dam")
            for n in os.listdir(tmp_path)
        )

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_resume_from_first_middle_last_epoch(self, name, tmp_path):
        build = KERNELS[name]
        expected, epochs = _capture(build, tmp_path)
        for epoch in {epochs[0], epochs[len(epochs) // 2], epochs[-1]}:
            path = tmp_path / ckpt.checkpoint_filename(epoch)
            assert _resume(build, path) == expected

    def test_resume_onto_threaded(self, tmp_path):
        expected, epochs = _capture(_spmspm, tmp_path)
        path = tmp_path / ckpt.checkpoint_filename(epochs[len(epochs) // 2])
        got = _resume(_spmspm, path, executor="threaded", workers=2)
        assert got == expected

    def test_resumed_run_does_not_overwrite_its_source(self, tmp_path):
        expected, epochs = _capture(_spmspm, tmp_path)
        middle = epochs[len(epochs) // 2]
        resume_dir = tmp_path / "resumed"
        kernel = _spmspm()
        restored = ckpt.load(
            str(tmp_path / ckpt.checkpoint_filename(middle)), kernel.program
        )
        restored.restore_into(kernel.program)
        summary = kernel.run(
            config=RunConfig(
                timeslice=7,
                checkpoint_interval_s=0.0,
                checkpoint_path=str(resume_dir),
            )
        )
        assert _fingerprint(kernel, summary) == expected
        # Epoch numbering continues past the restored epoch.
        assert _epochs(resume_dir)[0] == middle + 1


@needs_fork
class TestElasticResume:
    """Checkpoints are executor- and worker-count-portable."""

    def test_process_capture_resumes_everywhere(self, tmp_path):
        reference = _spmspm()
        expected = _fingerprint(
            reference,
            reference.run(
                executor="process", config=RunConfig(workers=2, timeslice=7)
            ),
        )
        got, epochs = _capture(_spmspm, tmp_path, executor="process", workers=2)
        assert got == expected
        path = tmp_path / ckpt.checkpoint_filename(epochs[len(epochs) // 2])
        # Same worker count, more workers (elastic), and no workers at all.
        assert _resume(_spmspm, path, "process", workers=2) == expected
        assert _resume(_spmspm, path, "process", workers=3) == expected
        assert _resume(_spmspm, path, "sequential") == expected

    def test_sequential_capture_resumes_onto_process(self, tmp_path):
        expected, epochs = _capture(_spmspm, tmp_path)
        path = tmp_path / ckpt.checkpoint_filename(epochs[len(epochs) // 2])
        got = _resume(_spmspm, path, "process", workers=2)
        assert got == expected


# ----------------------------------------------------------------------
# Refusal, corruption, discovery hygiene.
# ----------------------------------------------------------------------


def _opaque_program():
    """A FunctionContext program that never opted into the
    resumable-state contract — its generator state is opaque."""
    builder = ProgramBuilder()
    snd, rcv = builder.bounded(4, name="ch")

    def producer():
        for value in range(20):
            yield snd.enqueue(value)
            yield IncrCycles(1)

    def consumer():
        while True:
            try:
                yield rcv.dequeue()
            except ChannelClosed:
                return
            yield IncrCycles(1)

    builder.add(FunctionContext(producer, handles=[snd], name="prod"))
    builder.add(FunctionContext(consumer, handles=[rcv], name="cons"))
    return builder.build()


class TestRefusal:
    def test_opaque_contexts_are_refused_before_the_run(self, tmp_path):
        program = _opaque_program()
        with pytest.raises(NotCheckpointable) as info:
            program.run(
                config=RunConfig(
                    checkpoint_interval_s=0.0, checkpoint_path=str(tmp_path)
                )
            )
        assert {"prod", "cons"} <= set(info.value.context_names)
        assert not os.listdir(tmp_path)  # refused before any capture

    @needs_fork
    def test_process_executor_refuses_too(self, tmp_path):
        program = _opaque_program()
        with pytest.raises(NotCheckpointable):
            program.run(
                "process",
                config=RunConfig(
                    workers=2,
                    checkpoint_interval_s=0.0,
                    checkpoint_path=str(tmp_path),
                ),
            )


class TestCorruption:
    def test_load_rejects_garbage_and_truncation(self, tmp_path):
        garbage = tmp_path / ckpt.checkpoint_filename(1)
        garbage.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            ckpt.load(str(garbage))

        _, epochs = _capture(_spmspm, tmp_path / "real")
        path = tmp_path / "real" / ckpt.checkpoint_filename(epochs[0])
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncate mid-payload
        with pytest.raises(CheckpointError):
            ckpt.load(str(path))

    def test_load_rejects_structural_mismatch(self, tmp_path):
        _, epochs = _capture(_spmspm, tmp_path)
        other = _mmadd()
        with pytest.raises(CheckpointError):
            ckpt.load(
                str(tmp_path / ckpt.checkpoint_filename(epochs[0])),
                other.program,
            )

    def test_latest_checkpoint_skips_damaged_files(self, tmp_path):
        kernel = _spmspm()
        _, epochs = _capture(_spmspm, tmp_path)
        assert len(epochs) >= 2
        # Damage the newest epoch: discovery must fall back, not raise.
        newest = tmp_path / ckpt.checkpoint_filename(epochs[-1])
        newest.write_bytes(b"crashed mid-write")
        found = ckpt.latest_checkpoint(str(tmp_path), kernel.program)
        assert found is not None
        assert found.epoch == epochs[-2]

    def test_latest_checkpoint_on_junk_dir_is_none(self, tmp_path):
        (tmp_path / ckpt.checkpoint_filename(3)).write_bytes(b"junk")
        assert ckpt.latest_checkpoint(str(tmp_path)) is None
        assert ckpt.latest_checkpoint(str(tmp_path / "missing")) is None


class TestTimer:
    def test_zero_interval_is_always_due(self):
        timer = ckpt.CheckpointTimer(0.0)
        assert timer.due() and timer.due()
        assert timer.mark() == 1
        assert timer.due()

    def test_epochs_continue_from_start(self):
        timer = ckpt.CheckpointTimer(0.0, start_epoch=7)
        assert timer.mark() == 8

    def test_long_interval_is_not_due_immediately(self):
        timer = ckpt.CheckpointTimer(3600.0)
        assert not timer.due()
