"""SAM stream tokens.

A SAM stream interleaves payload tokens (coordinates, references, or
values) with control tokens:

* ``Stop(k)`` — the end of a fiber, ``k`` counting how many nesting levels
  closed at once (``S0`` separates sibling fibers; ``S1`` additionally
  closes the parent; ...).
* ``DONE`` — the end of the stream.

Payloads are plain Python ints/floats (fast paths avoid wrapping);
``ABSENT`` marks a missing reference on one side of a union (the consumer
treats it as a zero-valued / empty fiber).

Example — the coordinate stream of a 2-level CSR matrix with rows
``{0: [1, 3], 2: [0]}``::

    crd_i  : 0 2 S0 D
    crd_j  : 1 3 S0 0 S1 D
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class Stop:
    """End-of-fiber control token; ``level`` counts closed nesting levels."""

    __slots__ = ("level",)

    def __init__(self, level: int):
        if level < 0:
            raise ValueError("stop level must be nonnegative")
        self.level = level

    def bumped(self, amount: int = 1) -> "Stop":
        """A copy with the level raised — the level-scanner pass-through rule."""
        return Stop(self.level + amount)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stop) and other.level == self.level

    def __hash__(self) -> int:
        return hash(("Stop", self.level))

    def __repr__(self) -> str:
        return f"S{self.level}"


class Done:
    """End-of-stream control token (singleton ``DONE``)."""

    __slots__ = ()
    _instance: "Done | None" = None

    def __new__(cls) -> "Done":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "D"


#: The singleton end-of-stream token.
DONE = Done()


class _Absent:
    """Missing-side marker emitted by union primitives."""

    __slots__ = ()
    _instance: "_Absent | None" = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "N"


#: Reference placeholder for the empty side of a union.
ABSENT = _Absent()


class _RepeatSignal:
    """The ``R`` token produced by RepeatSigGen, consumed by Repeat."""

    __slots__ = ()
    _instance: "_RepeatSignal | None" = None

    def __new__(cls) -> "_RepeatSignal":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "R"


#: The repeat-signal payload token.
REPEAT = _RepeatSignal()


def is_control(token: Any) -> bool:
    """True for Stop/Done tokens (False for payloads and ABSENT)."""
    return isinstance(token, (Stop, Done))


def stream_values(stream: Iterable[Any]) -> Iterator[Any]:
    """Yield only the payload tokens of a stream (drops control tokens)."""
    for token in stream:
        if not is_control(token):
            yield token


def clean_stream(stream: Iterable[Any]) -> list[Any]:
    """Render a stream as a compact list (repr-friendly, for tests/docs)."""
    return [repr(t) if is_control(t) else t for t in stream]
