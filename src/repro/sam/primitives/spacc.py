"""SpaccV1: the level-1 sparse accumulator.

Accumulates (coordinate, value) pairs across the ``S0``-separated
subfibers of an outer group, merging duplicate coordinates by addition; at
each outer boundary (``Stop(k >= 1)``) it emits the merged fiber in
coordinate-sorted order followed by ``Stop(k - 1)``.

This is the accumulator behind Gustavson-style products: for
``O(i, :) = sum_j P(i, j) * V(j, :)``, the scaled rows of ``V`` arrive as
consecutive subfibers and the spacc merges them into one output row per
``i``.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class SpaccV1(SamContext):
    """Merge subfibers: (crd, val) streams in, one merged fiber out."""

    def __init__(
        self,
        in_crd: Receiver,
        in_val: Receiver,
        out_crd: Sender,
        out_val: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.in_val = in_val
        self.out_crd = out_crd
        self.out_val = out_val
        self.register(in_crd, in_val, out_crd, out_val)

    def run(self):
        accumulator: dict[int, float] = {}
        deq_crd = self.in_crd.dequeue()
        deq_val = self.in_val.dequeue()
        enq_crd = self.out_crd.enqueue(None)
        enq_val = self.out_val.enqueue(None)
        tick = self.tick()
        step = FusedOps(tick, deq_crd)
        skip_control = FusedOps(self.tick_control(), deq_crd)
        emit = FusedOps(enq_crd, enq_val, tick)
        boundary_flush = FusedOps(
            enq_crd, enq_val, self.tick_control(), deq_crd
        )
        crd = yield deq_crd
        while True:
            if crd is DONE:
                val = yield deq_val
                assert val is DONE, f"{self.name}: crd done before val done"
                enq_crd.data = enq_val.data = DONE
                yield (enq_crd, enq_val)
                return
            if crd.__class__ is Stop:
                val = yield deq_val
                assert crd == val, (
                    f"{self.name}: misaligned stops {crd!r} vs {val!r}"
                )
                if crd.level == 0:
                    # Subfiber boundary: keep accumulating across it.
                    crd = (yield skip_control)[1]
                    continue
                # Outer boundary: flush the merged fiber.
                for coord in sorted(accumulator):
                    enq_crd.data = coord
                    enq_val.data = accumulator[coord]
                    yield emit
                accumulator.clear()
                enq_crd.data = enq_val.data = Stop(crd.level - 1)
                crd = (yield boundary_flush)[3]
            else:
                val = yield deq_val
                assert not isinstance(val, (Stop, type(DONE))), (
                    f"{self.name}: crd payload paired with control {val!r}"
                )
                accumulator[crd] = accumulator.get(crd, 0.0) + val
                crd = (yield step)[1]
