"""ALU primitives: elementwise compute on value streams."""

from __future__ import annotations

import math
from typing import Callable

from ...core.channel import Receiver, Sender
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class BinaryAlu(SamContext):
    """Combine two aligned value streams elementwise.

    The streams must share control structure (the joiner guarantees this
    for its two ref outputs); stops are checked for alignment and passed
    through.
    """

    def __init__(
        self,
        in_val1: Receiver,
        in_val2: Receiver,
        out_val: Sender,
        fn: Callable[[float, float], float],
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val1 = in_val1
        self.in_val2 = in_val2
        self.out_val = out_val
        self.fn = fn
        self.register(in_val1, in_val2, out_val)

    def run(self):
        fn = self.fn
        while True:
            a = yield self.in_val1.dequeue()
            b = yield self.in_val2.dequeue()
            if a is DONE or b is DONE:
                assert a is DONE and b is DONE, (
                    f"{self.name}: value streams ended at different points"
                )
                yield self.out_val.enqueue(DONE)
                return
            if isinstance(a, Stop) or isinstance(b, Stop):
                assert a == b, f"{self.name}: misaligned tokens {a!r} vs {b!r}"
                yield self.out_val.enqueue(a)
                yield self.tick_control()
            else:
                yield self.out_val.enqueue(fn(a, b))
                yield self.tick()


def mul(a: float, b: float) -> float:
    return a * b


def add(a: float, b: float) -> float:
    return a + b


class UnaryAlu(SamContext):
    """Apply ``fn`` to each payload; control tokens pass through.

    Used for the nonlinear units of the sparse-attention graphs (exp,
    scaling) — the "new blocks for ... non-linear operations" of
    Section VIII-A1.
    """

    def __init__(
        self,
        in_val: Receiver,
        out_val: Sender,
        fn: Callable[[float], float],
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.out_val = out_val
        self.fn = fn
        self.register(in_val, out_val)

    def run(self):
        fn = self.fn
        while True:
            token = yield self.in_val.dequeue()
            if token is DONE:
                yield self.out_val.enqueue(DONE)
                return
            if isinstance(token, Stop):
                yield self.out_val.enqueue(token)
                yield self.tick_control()
            else:
                yield self.out_val.enqueue(fn(token))
                yield self.tick()


def exp(value: float) -> float:
    return math.exp(value)
