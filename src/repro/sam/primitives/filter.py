"""Value filtering: the compression companion of CrdDrop.

``ValDrop`` removes exact-zero payloads from a value stream, passing
control tokens through.  Paired with
:class:`~repro.sam.primitives.crd.CrdDrop` on the matching coordinate
stream, it compresses away the zero results that reductions over empty
intersections produce.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class ValDrop(SamContext):
    """Forward non-zero payloads and all control tokens."""

    def __init__(
        self,
        in_val: Receiver,
        out_val: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.out_val = out_val
        self.register(in_val, out_val)

    def run(self):
        while True:
            token = yield self.in_val.dequeue()
            if token is DONE:
                yield self.out_val.enqueue(DONE)
                return
            if isinstance(token, Stop):
                yield self.out_val.enqueue(token)
                yield self.tick_control()
            elif token != 0.0:
                yield self.out_val.enqueue(token)
                yield self.tick()
            else:
                yield self.tick()
