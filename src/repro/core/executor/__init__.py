"""Execution runtimes for DAM programs.

Two executors share identical simulated semantics:

* :class:`SequentialExecutor` — deterministic cooperative scheduler,
  single-threaded, with pluggable scheduling policies (Table I study).
* :class:`ThreadedExecutor` — one OS thread per context, SVA/SVP-style
  pairwise synchronization (the paper's runtime).
"""

from .base import Executor, RunSummary
from .policies import FairPolicy, FifoPolicy, SchedulingPolicy, make_policy
from .sequential import SequentialExecutor
from .threaded import ThreadedExecutor

__all__ = [
    "Executor",
    "RunSummary",
    "SchedulingPolicy",
    "FifoPolicy",
    "FairPolicy",
    "make_policy",
    "SequentialExecutor",
    "ThreadedExecutor",
]
